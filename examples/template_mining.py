"""Template mining on a realistic hospital: all three algorithms.

Reproduces the Section 5.3.3 workflow through the public API: mine the
first accesses of the training days with the one-way, two-way, and
bridged algorithms (one :meth:`repro.api.AuditService.mine` call each),
verify they find the same template set, and inspect what was found —
including the templates the paper highlights (appointments with doctors,
same department, same collaborative group).

Run:  python examples/template_mining.py
"""

from repro.api import AuditConfig, AuditService, CareWebStudy, MineRequest
from repro.ehr import SimulationConfig


def main() -> None:
    study = CareWebStudy.prepare(SimulationConfig.small(seed=7))
    db = study.mining_db()
    graph = study.mining_graph()
    print(
        f"mining input: {len(db.table('Log'))} first accesses from days "
        f"{study.train_days}; {len(graph.edges)} directed schema edges"
    )

    service = AuditService.open(
        db, templates=(), config=AuditConfig(eager_warm=False)
    )
    results = {}
    for algorithm in ("one-way", "two-way", "bridge"):
        result = service.mine(
            MineRequest(
                algorithm=algorithm,
                support_fraction=0.01,
                max_length=4,
                max_tables=3,
                bridge_length=2,
            ),
            graph=graph,
        )
        results[result.algorithm] = result
        stats = result.support_stats
        print(
            f"\n{result.algorithm}: {len(result.templates)} templates, "
            f"{stats['queries_run']} support queries "
            f"({stats['skipped']} skipped, {stats['cache_hits']} cache hits), "
            f"{stats['query_time']:.1f}s query time"
        )
        for length, views in sorted(result.templates_by_length().items()):
            print(f"  length {length}: {len(views)} templates")

    sigs = [r.signatures() for r in results.values()]
    assert all(s == sigs[0] for s in sigs), "algorithms must agree"
    print("\nall algorithms produced the same template set  [OK]")

    # ------------------------------------------------------------------
    # show the paper's flagship templates among the mined set
    # ------------------------------------------------------------------
    one_way = results["one-way"]
    print("\nshortest templates (the paper's length-2 'w/Dr.' family):")
    for mined in one_way.templates_by_length().get(2, ()):
        tables = sorted(mined.template.tables_referenced() - {"Log"})
        print(f"  support {mined.support:4d}  via {tables[0]}")

    groupish = [
        m
        for m in one_way.templates
        if "Groups" in m.template.tables_referenced()
    ]
    deptish = [
        m
        for m in one_way.templates
        if "Users" in m.template.tables_referenced() and m.length == 4
    ]
    print(f"\ncollaborative-group templates mined: {len(groupish)}")
    if groupish:
        print(groupish[0].template.to_sql())
    print(f"\nsame-department templates mined: {len(deptish)}")
    if deptish:
        print(deptish[0].template.to_sql())


if __name__ == "__main__":
    main()
