"""Extensions tour: online auditing + decorated-template mining.

Two capabilities beyond the paper's retrospective study:

1. **Streaming auditing** — :meth:`repro.api.AuditService.ingest`
   explains accesses the moment they happen and alerts on unexplainable
   ones (the deployment form of misuse detection).
2. **Decorated-template mining** — the paper's §5.3.4 future work: learn
   a ``Group_Depth = d`` restriction that recovers the precision the
   undecorated length-4 group templates lose in Figure 14.

Run:  python examples/streaming_and_decorations.py
"""

import datetime as dt

from repro.api import (
    AuditService,
    CareWebStudy,
    DecorationMiner,
    all_event_user_templates,
    event_group_template,
    group_depth_attr,
    group_templates,
    repeat_access_template,
)
from repro.ehr import EPOCH, SimulationConfig, build_careweb_graph


def main() -> None:
    study = CareWebStudy.prepare(SimulationConfig.small(seed=5))
    db = study.db
    print(study.sim.summary())

    # ------------------------------------------------------------------
    # 1. streaming: watch tomorrow's accesses arrive
    # ------------------------------------------------------------------
    graph = build_careweb_graph(db)
    templates = all_event_user_templates(graph)
    templates.append(repeat_access_template(graph))
    templates.extend(group_templates(graph, depth=1))
    service = AuditService.open(db, templates=templates)
    service.on_alert(
        lambda a: print(f"  !! ALERT {a.lid}: {a.user} -> {a.patient}")
    )

    tomorrow = EPOCH + dt.timedelta(days=8)
    appt = db.table("Appointments").rows()[0]
    patient, doctor = appt[0], appt[1]
    print("\nstreaming three accesses:")
    ok = service.ingest(doctor, patient, tomorrow)
    print(f"  {ok.lid}: {doctor} -> {patient}: {ok.headline()[:70]}")
    service.ingest("u0000", "p99999x", tomorrow)  # unknown patient -> alert
    again = service.ingest(doctor, patient, tomorrow + dt.timedelta(hours=2))
    print(f"  {again.lid}: repeat explained: {not again.suspicious}")
    alert_rate = service.stats()["ingest"]["alert_rate"]
    print(f"alert rate: {alert_rate:.0%} of streamed accesses")

    # ------------------------------------------------------------------
    # 2. decoration mining: precision back for group templates
    # ------------------------------------------------------------------
    combined, real, fake = study.combined_db()
    cgraph = build_careweb_graph(combined)
    base = event_group_template(cgraph, "Appointments", "Doctor", depth=None)
    miner = DecorationMiner(
        combined, real, fake, test_lids=study.test_first_lids()
    )
    result = miner.mine(base, group_depth_attr(base), min_recall_ratio=0.85)
    print(
        f"\nundecorated group template: precision "
        f"{result.base_precision:.2f} over {result.base_real} real accesses"
    )
    print("per-depth decorations:")
    for cand in result.candidates:
        marker = "  <== recommended" if cand is result.recommended else ""
        print(
            f"  Group_Depth = {cand.value}: precision {cand.precision:.2f}, "
            f"keeps {cand.recall_vs(result.base_real):.0%} of coverage{marker}"
        )
    rec = result.recommended
    print("\nrecommended decorated template:")
    print(rec.template.to_sql())


if __name__ == "__main__":
    main()
