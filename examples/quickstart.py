"""Quickstart: the paper's Figure 1 / Example 2.2 scenario, end to end.

Builds the toy hospital database from the paper (Alice, Bob, Dr. Dave,
Dr. Mike, Nurse Nick), declares the explanation graph, mines explanation
templates, and explains each access in natural language — all through
the public :class:`repro.api.AuditService` facade.

Run:  python examples/quickstart.py
"""

from repro.api import (
    AuditConfig,
    AuditService,
    ColumnType,
    Database,
    ExplanationTemplate,
    MineRequest,
    SchemaAttr,
    SchemaGraph,
    TableSchema,
)


def build_database() -> Database:
    """The paper's Figure 3 database, plus Nurse Nick's group membership."""
    db = Database("paper-example")
    log = db.create_table(
        TableSchema.build(
            "Log",
            [("Lid", ColumnType.INT), ("Date", ColumnType.INT), "User", "Patient"],
            primary_key=["Lid"],
        )
    )
    appointments = db.create_table(
        TableSchema.build(
            "Appointments", ["Patient", "Doctor", ("Date", ColumnType.INT)]
        )
    )
    doctor_info = db.create_table(
        TableSchema.build("Doctor_Info", ["Doctor", "Department"])
    )
    # Figure 3 data
    appointments.insert_many([("Alice", "Dave", 1), ("Bob", "Mike", 2)])
    doctor_info.insert_many([("Mike", "Pediatrics"), ("Dave", "Pediatrics")])
    log.insert_many(
        [
            (1, 1, "Dave", "Alice"),   # explained by the appointment
            (2, 2, "Dave", "Bob"),     # explained via the shared department
            (3, 3, "Dave", "Alice"),   # repeat access
            (4, 4, "Eve", "Alice"),    # unexplainable: candidate misuse
        ]
    )
    return db


def build_graph(db: Database) -> SchemaGraph:
    """Declare the joinable relationships (paper Section 3.1)."""
    graph = SchemaGraph(db)  # Log.Patient => Log.User by default
    graph.add_relationship(
        SchemaAttr("Log", "Patient"), SchemaAttr("Appointments", "Patient")
    )
    graph.add_relationship(
        SchemaAttr("Appointments", "Doctor"), SchemaAttr("Log", "User")
    )
    graph.add_relationship(
        SchemaAttr("Appointments", "Doctor"), SchemaAttr("Doctor_Info", "Doctor")
    )
    graph.add_relationship(
        SchemaAttr("Doctor_Info", "Doctor"), SchemaAttr("Log", "User")
    )
    graph.allow_self_join("Doctor_Info", "Department")
    return graph


def main() -> None:
    db = build_database()
    graph = build_graph(db)

    # ------------------------------------------------------------------
    # 1. mine frequent explanation templates (Algorithm 1)
    # ------------------------------------------------------------------
    miner_service = AuditService.open(
        db, templates=(), config=AuditConfig(eager_warm=False)
    )
    result = miner_service.mine(
        MineRequest(
            algorithm="one-way", support_fraction=0.25, max_length=4, max_tables=3
        ),
        graph=graph,
    )
    print(f"mined {len(result.templates)} templates "
          f"(threshold {result.threshold:.1f} of {len(db.table('Log'))} accesses)\n")
    for mined in result.templates:
        print(f"-- length {mined.length}, support {mined.support}")
        print(mined.sql)
        print()

    # ------------------------------------------------------------------
    # 2. attach human descriptions and explain each access
    # ------------------------------------------------------------------
    described = []
    for mined in result.templates:
        t = mined.template
        if t.length == 2:
            description = (
                "[L.Patient] had an appointment with [L.User] on "
                "[Appointments_1.Date]."
            )
        elif t.length == 4:
            description = (
                "[L.Patient] had an appointment with [Appointments_1.Doctor], "
                "and [L.User] and [Appointments_1.Doctor] work together in "
                "the [Doctor_Info_2.Department] department."
            )
        else:
            description = None
        described.append(
            ExplanationTemplate(
                path=t.path, decorations=t.decorations, description=description
            )
        )

    with AuditService.open(db, templates=described) as service:
        for lid in sorted(db.table("Log").distinct_values("Lid")):
            result = service.explain(lid)
            print(f"access L{lid}:")
            if not result.explained:
                print("    NO explanation found -> report to compliance office")
                continue
            for view in result.explanations:
                print(f"    [len {view.path_length}] {view.text}")
        print(f"\noverall coverage: {service.coverage():.0%} "
              f"(unexplained: {sorted(service.unexplained_lids())})")


if __name__ == "__main__":
    main()
