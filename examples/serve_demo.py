"""Serving over HTTP, end to end: ``repro-audit serve`` + the typed client.

Simulates a tiny hospital week, spawns the real CLI server as a
subprocess on an ephemeral port, then drives every major ``/v1/``
endpoint through :class:`repro.client.AuditClient` — health, explain
(single and NDJSON batch), the compliance report, cursor-paginated
unexplained walking, streaming ingest, template listing, and the
metrics counters — and finally shuts the server down with SIGINT and
checks the exit is clean.

This is also the CI server-smoke step:  Run:  python examples/serve_demo.py
"""

import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.api import NotFoundError, save_database
from repro.client import AuditClient
from repro.ehr import SimulationConfig, simulate

SRC = Path(__file__).resolve().parent.parent / "src"


def spawn_server(db_dir: str) -> tuple[subprocess.Popen, int]:
    """Start ``repro-audit serve`` on an ephemeral port; returns the
    process and the port parsed from its ``listening on`` line."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--db", db_dir, "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": str(SRC), "PYTHONUNBUFFERED": "1"},
    )
    assert process.stdout is not None
    line = process.stdout.readline().strip()
    if "listening on" not in line:
        process.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    port = int(line.rsplit(":", 1)[1])
    print(f"server up: {line}")
    return process, port


def main() -> None:
    # ------------------------------------------------------------------
    # 1. a synthetic hospital, saved as a CSV database directory
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        db_dir = str(Path(tmp) / "hospital")
        result = simulate(SimulationConfig.tiny(seed=7))
        save_database(result.db, db_dir)
        print(result.summary())

        process, port = spawn_server(db_dir)
        try:
            drive(port)
        finally:
            process.send_signal(signal.SIGINT)
            output, _ = process.communicate(timeout=30)
            print(output.strip())
            if process.returncode != 0:
                raise SystemExit(
                    f"server exited with {process.returncode}, not 0"
                )
        print("clean shutdown confirmed")


def drive(port: int) -> None:
    """Every major endpoint, through the typed client."""
    with AuditClient("127.0.0.1", port) as client:
        # -------------------------------------------------------- health
        assert client.healthz()["status"] == "ok"

        # ------------------------------------------------- the audit view
        report = client.report()
        print(report.summary())
        coverage = client.coverage()
        assert abs(coverage - report.coverage) < 1e-12

        # ------------------------------------- explain: single and batch
        some_lids = [view.lid for view in report.queue[:3]]
        if some_lids:
            single = client.explain(some_lids[0])
            print(
                f"explain({single.lid}): "
                f"{'explained' if single.explained else 'SUSPICIOUS'}"
            )
            streamed = list(client.explain_batch(some_lids))
            assert [r.lid for r in streamed] == some_lids
            print(f"explain/batch streamed {len(streamed)} NDJSON results")

        # --------------------------- the unexplained queue, cursor-walked
        walked = list(client.unexplained(page_size=5))
        assert [v.lid for v in walked] == [v.lid for v in report.queue]
        print(
            f"cursor-walked {len(walked)} unexplained accesses "
            f"in pages of 5"
        )

        # ------------------------------------------------ patient report
        patient = report.queue[0].patient if report.queue else None
        if patient is not None:
            print(client.render_patient_report(patient, limit=3))

        # ------------------------------------------------ streaming ingest
        ingested = client.ingest("u9999", "p9999")
        print(
            f"ingested lid={ingested.lid}: "
            f"{'explained' if ingested.explained else 'alerted'}"
        )

        # -------------------------------------------- templates and stats
        templates = client.templates()
        print(f"{len(templates)} registered templates")
        stats = client.stats()
        print(f"service stats: {stats['log_rows']} log rows")

        # ----------------------------------------------- typed wire errors
        try:
            client._request("GET", "/v1/nope")
        except NotFoundError as exc:
            print(f"typed 404 works: {exc.code}")
        else:
            raise AssertionError("unknown route did not raise NotFoundError")

        metrics = client.metrics()
        print(
            f"server metrics: {metrics['requests_total']} requests, "
            f"p50 latency {metrics['latency_seconds']['p50'] * 1e3:.2f} ms"
        )


if __name__ == "__main__":
    main()
