"""Multi-worker serving, end to end: ``repro-audit serve --workers 2``.

Simulates a tiny hospital week, spawns the real CLI server as a
subprocess with two SO_REUSEPORT workers on an ephemeral port, then
drives the fleet through :class:`repro.client.AuditClient`: reads
(explain, NDJSON batch, report, cursor-paginated unexplained walking)
all answer from whichever worker accepts the connection; ``/v1/metrics``
aggregates counters across the whole fleet; mutating endpoints answer a
typed 501 (independent per-worker replicas must not diverge).  Finally
SIGINT drains both workers and the exit must be clean.

This is also the CI multi-worker smoke step:  Run:  python examples/fleet_demo.py
"""

import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.api import UnsupportedOperationError, save_database
from repro.client import AuditClient
from repro.ehr import SimulationConfig, simulate

SRC = Path(__file__).resolve().parent.parent / "src"

WORKERS = 2


def spawn_fleet(db_dir: str) -> tuple[subprocess.Popen, int]:
    """Start ``repro-audit serve --workers 2`` on an ephemeral port."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--db",
            db_dir,
            "--port",
            "0",
            "--workers",
            str(WORKERS),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": str(SRC), "PYTHONUNBUFFERED": "1"},
    )
    assert process.stdout is not None
    line = process.stdout.readline().strip()
    if "listening on" not in line:
        process.kill()
        raise RuntimeError(f"fleet failed to start: {line!r}")
    port = int(line.rsplit(":", 1)[1])
    fleet_line = process.stdout.readline().strip()
    print(f"fleet up: {line}")
    print(f"          {fleet_line}")
    assert f"{WORKERS} worker(s)" in fleet_line, fleet_line
    return process, port


def drive(port: int) -> None:
    """Reads across the fleet, aggregated metrics, typed 501 writes."""
    with AuditClient("127.0.0.1", port) as client:
        assert client.healthz()["status"] == "ok"

        report = client.report()
        print(report.summary())
        assert abs(client.coverage() - report.coverage) < 1e-12

        some_lids = [view.lid for view in report.queue[:3]]
        if some_lids:
            single = client.explain(some_lids[0])
            print(
                f"explain({single.lid}): "
                f"{'explained' if single.explained else 'SUSPICIOUS'}"
            )
            streamed = list(client.explain_batch(some_lids))
            assert [r.lid for r in streamed] == some_lids
            print(f"explain/batch streamed {len(streamed)} NDJSON results")

        # cursor walks are stateless, so pages may land on either worker
        walked = list(client.unexplained(page_size=5))
        assert [v.lid for v in walked] == [v.lid for v in report.queue]
        print(f"cursor-walked {len(walked)} unexplained accesses")

        # a fleet of independent replicas serves read-only
        try:
            client.ingest("u9999", "p9999")
        except UnsupportedOperationError as exc:
            print(f"typed 501 on ingest works: {exc.code}")
        else:
            raise AssertionError("fleet accepted a write")

        metrics = client.metrics()
        assert metrics["scope"] == "fleet", metrics.get("scope")
        assert metrics["workers"] == WORKERS
        print(
            f"fleet metrics: {metrics['workers']} workers, "
            f"{metrics['requests_total']} requests total"
        )


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-fleet-") as tmp:
        db_dir = str(Path(tmp) / "hospital")
        result = simulate(SimulationConfig.tiny(seed=7))
        save_database(result.db, db_dir)
        print(result.summary())

        process, port = spawn_fleet(db_dir)
        try:
            drive(port)
        finally:
            process.send_signal(signal.SIGINT)
            output, _ = process.communicate(timeout=60)
            print(output.strip())
            if process.returncode != 0:
                raise SystemExit(
                    f"fleet exited with {process.returncode}, not 0"
                )
        assert "shutdown complete" in output
        print("clean fleet shutdown confirmed")


if __name__ == "__main__":
    main()
