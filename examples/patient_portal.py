"""User-centric auditing: a patient views *why* each access happened.

Simulates a CareWeb-like hospital week, infers collaborative groups from
the access log (paper Section 4), and renders the access report the
paper's introduction motivates: "if Alice clicks on a log record, she
should be presented with a short snippet of text" — all through the
public :class:`repro.api.AuditService` facade.

Run:  python examples/patient_portal.py
"""

from repro.api import AuditConfig, AuditService, standard_templates
from repro.ehr import SimulationConfig, simulate


def main() -> None:
    # ------------------------------------------------------------------
    # 1. a week of hospital activity
    # ------------------------------------------------------------------
    sim = simulate(SimulationConfig.small(seed=42))
    db = sim.db
    print(sim.summary(), "\n")

    # ------------------------------------------------------------------
    # 2. open the audit service and infer collaborative groups
    # ------------------------------------------------------------------
    service = AuditService.open(
        db, templates=(), config=AuditConfig(eager_warm=False)
    )
    groups = service.build_groups()
    print(
        f"inferred {groups.groups_per_depth[1]} depth-1 collaborative "
        f"groups from {groups.users} users "
        f"(density {groups.density:.4f})\n"
    )

    # ------------------------------------------------------------------
    # 3. register the standard template set (Appt/Visit/... w/user,
    #    repeat access, care-team accesses) now that Groups exists
    # ------------------------------------------------------------------
    service.add_templates(standard_templates(db))

    # ------------------------------------------------------------------
    # 4. the patient logs in and reads their report
    # ------------------------------------------------------------------
    # pick a patient with a busy chart
    log = db.table("Log")
    counts: dict[str, int] = {}
    for row in log.rows():
        counts[row[3]] = counts.get(row[3], 0) + 1
    patient = max(counts, key=lambda p: counts[p])

    print(service.render_patient_report(patient, limit=12))

    report = service.patient_report(patient)
    suspicious = [e for e in report.entries if e.suspicious]
    print(
        f"\n{len(suspicious)} of {counts[patient]} accesses to {patient} "
        "could not be explained; the portal offers a one-click report to "
        "the compliance office for each."
    )


if __name__ == "__main__":
    main()
