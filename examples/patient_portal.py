"""User-centric auditing: a patient views *why* each access happened.

Simulates a CareWeb-like hospital week, infers collaborative groups from
the access log (paper Section 4), and renders the access report the
paper's introduction motivates: "if Alice clicks on a log record, she
should be presented with a short snippet of text."

Run:  python examples/patient_portal.py
"""

from repro import ExplanationEngine
from repro.audit import (
    PatientPortal,
    all_event_user_templates,
    group_templates,
    repeat_access_template,
    with_careweb_description,
)
from repro.ehr import SimulationConfig, build_careweb_graph, simulate
from repro.groups import build_groups_table, hierarchy_from_log


def main() -> None:
    # ------------------------------------------------------------------
    # 1. a week of hospital activity
    # ------------------------------------------------------------------
    sim = simulate(SimulationConfig.small(seed=42))
    db = sim.db
    print(sim.summary(), "\n")

    # ------------------------------------------------------------------
    # 2. infer collaborative groups from the log and store them
    # ------------------------------------------------------------------
    hierarchy, access = hierarchy_from_log(db)
    build_groups_table(db, hierarchy)
    print(
        f"inferred {len(hierarchy.groups_at(1))} depth-1 collaborative "
        f"groups from {access.shape[1]} users "
        f"(density {access.density():.4f})\n"
    )

    # ------------------------------------------------------------------
    # 3. assemble the explanation templates the portal uses
    # ------------------------------------------------------------------
    graph = build_careweb_graph(db)
    templates = all_event_user_templates(graph)       # Appt/Visit/... w/user
    templates.append(repeat_access_template(graph))   # prior access
    templates.extend(group_templates(graph, depth=1)) # care-team accesses
    templates = [with_careweb_description(t) for t in templates]
    engine = ExplanationEngine(db, templates)

    # ------------------------------------------------------------------
    # 4. the patient logs in and reads their report
    # ------------------------------------------------------------------
    # pick a patient with a busy chart
    log = db.table("Log")
    counts: dict[str, int] = {}
    for row in log.rows():
        counts[row[3]] = counts.get(row[3], 0) + 1
    patient = max(counts, key=lambda p: counts[p])

    portal = PatientPortal(engine)
    print(portal.render(patient, limit=12))

    suspicious = [e for e in portal.access_report(patient) if e.suspicious]
    print(
        f"\n{len(suspicious)} of {counts[patient]} accesses to {patient} "
        "could not be explained; the portal offers a one-click report to "
        "the compliance office for each."
    )


if __name__ == "__main__":
    main()
