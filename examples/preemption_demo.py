"""Preemptable, resumable full-log scans surviving a server restart.

Simulates a tiny hospital, spawns the real CLI server as a subprocess,
and starts walking the full-log audit scan slice by slice over
``/v1/scan``.  Mid-walk the server process is **killed** (SIGKILL — no
graceful anything), a brand-new server process is started over the same
database directory, and the walk resumes on the fresh replica from
nothing but the last opaque cursor.  The assembled report must be
byte-for-byte the artifact a one-shot ``/v1/report`` returns.

This is also the CI preemption-smoke step:  Run:  python examples/preemption_demo.py
"""

import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.api import assemble_report, save_database
from repro.client import AuditClient
from repro.ehr import SimulationConfig, simulate

SRC = Path(__file__).resolve().parent.parent / "src"

PAGE_ROWS = 6


def spawn_server(db_dir: str) -> tuple[subprocess.Popen, int]:
    """Start ``repro-audit serve`` on an ephemeral port; returns the
    process and the port parsed from its ``listening on`` line."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--db", db_dir, "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": str(SRC), "PYTHONUNBUFFERED": "1"},
    )
    assert process.stdout is not None
    line = process.stdout.readline().strip()
    if "listening on" not in line:
        process.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    port = int(line.rsplit(":", 1)[1])
    print(f"server up: {line}")
    return process, port


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-preempt-") as tmp:
        db_dir = str(Path(tmp) / "hospital")
        result = simulate(SimulationConfig.tiny(seed=7))
        save_database(result.db, db_dir)
        print(result.summary())

        # ---------------------------------------------- first replica
        process, port = spawn_server(db_dir)
        pages = []
        try:
            with AuditClient("127.0.0.1", port) as client:
                expected = client.report().to_dict()
                page, cursor = client.scan_page(page_rows=PAGE_ROWS)
                pages.append(page)
                assert cursor is not None, "tiny sim must need >1 slice"
                page, cursor = client.scan_page(cursor, page_rows=PAGE_ROWS)
                pages.append(page)
                assert cursor is not None
                print(
                    f"walked {len(pages)} slices "
                    f"({pages[-1].state.seen} rows classified); "
                    f"suspending with an opaque cursor"
                )
        finally:
            process.kill()  # no graceful shutdown: the auditor's server died
            process.wait(timeout=30)
        print("first server killed mid-walk")

        # ------------------------------ fresh replica over the same log
        process, port = spawn_server(db_dir)
        try:
            with AuditClient("127.0.0.1", port) as client:
                for page in client.scan_pages(page_rows=PAGE_ROWS, cursor=cursor):
                    pages.append(page)
                print(
                    f"resumed on the fresh replica: {len(pages)} slices "
                    f"total, {pages[-1].state.seen} rows"
                )
                assembled = assemble_report(pages)
                assert assembled.to_dict() == expected, (
                    "sliced scan diverged from the one-shot report"
                )
                print(
                    f"assembled report identical to one-shot: "
                    f"{assembled.summary()}"
                )
        finally:
            process.send_signal(signal.SIGINT)
            output, _ = process.communicate(timeout=30)
            print(output.strip())
            if process.returncode != 0:
                raise SystemExit(
                    f"server exited with {process.returncode}, not 0"
                )
        print("preemption demo passed: kill + resume-from-cursor works")


if __name__ == "__main__":
    main()
