"""Misuse detection: shrink a week of accesses to a reviewable queue.

The paper's secondary application (Section 1): hospitals cannot manually
review millions of weekly accesses, but explanations "reduce the set of
accesses that must be examined to those that are unexplained."  This
example simulates a week with scripted snooping incidents, explains what
it can through the :class:`repro.api.AuditService` facade, and checks the
review queue against the hidden ground truth.

Run:  python examples/misuse_detection.py
"""

from repro.api import AuditConfig, AuditService, standard_templates
from repro.ehr import SimulationConfig, simulate


def main() -> None:
    sim = simulate(SimulationConfig.small(seed=1234))
    db = sim.db
    print(sim.summary())

    service = AuditService.open(
        db, templates=(), config=AuditConfig(eager_warm=False)
    )
    service.build_groups()
    service.add_templates(standard_templates(db))

    report = service.report()
    print("\n" + report.summary())
    print(
        f"manual review workload reduced {report.total} -> "
        f"{report.unexplained_count} accesses "
        f"({report.unexplained_count / report.total:.1%} of the log)"
    )

    # ------------------------------------------------------------------
    # check the queue against the simulator's hidden ground truth
    # ------------------------------------------------------------------
    snoops = sim.lids_tagged("snoop")
    queue_lids = {entry.lid for entry in report.queue}
    caught = snoops & queue_lids
    print(
        f"\nscripted snooping incidents: {len(snoops)}; "
        f"surfaced in the queue: {len(caught)}"
    )
    for entry in report.queue:
        tag = sim.reasons.get(entry.lid, "?")
        marker = " <-- scripted snoop" if entry.lid in snoops else ""
        if entry.lid in snoops or tag == "noise":
            print(
                f"  {entry.lid}  {entry.date}  {entry.user} -> "
                f"{entry.patient}  [ground truth: {tag}]{marker}"
            )

    print("\nusers ranked by unexplained accesses:")
    for user, count in report.user_risk[:5]:
        print(f"  {user}: {count}")


if __name__ == "__main__":
    main()
