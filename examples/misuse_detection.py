"""Misuse detection: shrink a week of accesses to a reviewable queue.

The paper's secondary application (Section 1): hospitals cannot manually
review millions of weekly accesses, but explanations "reduce the set of
accesses that must be examined to those that are unexplained."  This
example simulates a week with scripted snooping incidents, explains what
it can, and checks the review queue against the hidden ground truth.

Run:  python examples/misuse_detection.py
"""

from repro import ExplanationEngine
from repro.audit import (
    ComplianceAuditor,
    all_event_user_templates,
    group_templates,
    repeat_access_template,
)
from repro.ehr import SimulationConfig, build_careweb_graph, simulate
from repro.groups import build_groups_table, hierarchy_from_log


def main() -> None:
    sim = simulate(SimulationConfig.small(seed=1234))
    db = sim.db
    print(sim.summary())

    hierarchy, _ = hierarchy_from_log(db)
    build_groups_table(db, hierarchy)
    graph = build_careweb_graph(db)

    templates = all_event_user_templates(graph)
    templates.append(repeat_access_template(graph))
    templates.extend(group_templates(graph, depth=1))
    engine = ExplanationEngine(db, templates)
    auditor = ComplianceAuditor(engine)

    print("\n" + auditor.summary())
    total = len(engine.all_lids())
    queue = auditor.queue()
    print(
        f"manual review workload reduced {total} -> {len(queue)} accesses "
        f"({len(queue) / total:.1%} of the log)"
    )

    # ------------------------------------------------------------------
    # check the queue against the simulator's hidden ground truth
    # ------------------------------------------------------------------
    snoops = sim.lids_tagged("snoop")
    queue_lids = {entry.lid for entry in queue}
    caught = snoops & queue_lids
    print(
        f"\nscripted snooping incidents: {len(snoops)}; "
        f"surfaced in the queue: {len(caught)}"
    )
    for entry in queue:
        tag = sim.reasons.get(entry.lid, "?")
        marker = " <-- scripted snoop" if entry.lid in snoops else ""
        if entry.lid in snoops or tag == "noise":
            print(
                f"  {entry.lid}  {entry.date}  {entry.user} -> "
                f"{entry.patient}  [ground truth: {tag}]{marker}"
            )

    print("\nusers ranked by unexplained accesses:")
    for user, count in auditor.user_risk_ranking()[:5]:
        print(f"  {user}: {count}")


if __name__ == "__main__":
    main()
