"""Collaborative-group discovery: recovering care teams from access logs.

Reproduces the paper's Section 4 / Figures 10-11 finding: clustering the
user-similarity graph W = AᵀA recovers real collaborative groups that
*span department codes* (the Cancer Center group mixes Hem/Onc
physicians, oncology nursing, radiology, pathology, pharmacy...), and the
simulator's hidden care-team structure lets us score how well.

Run:  python examples/group_discovery.py
"""

from collections import Counter

from repro.api import (
    access_matrix_from_log,
    build_hierarchy,
    lids_on_days,
    modularity,
    restrict_log,
    similarity_graph,
)
from repro.ehr import SimulationConfig, simulate


def main() -> None:
    sim = simulate(SimulationConfig.small(seed=99))
    db = sim.db
    print(sim.summary())

    # groups are trained on the first six days, like the paper
    train = restrict_log(db, lids_on_days(db, range(1, 7)))
    access = access_matrix_from_log(train)
    adjacency = similarity_graph(access)
    print(
        f"\naccess matrix: {access.shape[0]} patients x {access.shape[1]} "
        f"users, density {access.density():.4f}"
    )

    hierarchy = build_hierarchy(adjacency, max_depth=8)
    level1 = hierarchy.levels[1]
    print(
        f"hierarchy: {hierarchy.max_depth} levels; depth-1 has "
        f"{len(hierarchy.groups_at(1))} groups, modularity "
        f"{modularity(adjacency, level1):.3f}"
    )

    # ------------------------------------------------------------------
    # Figures 10-11: department composition of the largest groups
    # ------------------------------------------------------------------
    print("\ndepartment composition of the two largest depth-1 groups:")
    groups = sorted(
        hierarchy.groups_at(1).items(), key=lambda kv: -len(kv[1])
    )
    for gid, members in groups[:2]:
        departments = Counter(
            sim.hospital.department_of(u) for u in members
        )
        print(f"  group {gid} ({len(members)} members):")
        for dept, count in departments.most_common(6):
            print(f"      {count:2d}  {dept}")

    # ------------------------------------------------------------------
    # score recovered groups against the hidden care-team ground truth
    # ------------------------------------------------------------------
    pairs_same_team = pairs_same_group = pairs_both = 0
    users = sorted(level1)
    team_of = {
        uid: frozenset(sim.hospital.users[uid].team_ids) for uid in users
    }
    for i, u in enumerate(users):
        for v in users[i + 1:]:
            same_team = bool(team_of[u] & team_of[v])
            same_group = level1[u] == level1[v]
            pairs_same_team += same_team
            pairs_same_group += same_group
            pairs_both += same_team and same_group
    precision = pairs_both / pairs_same_group if pairs_same_group else 0.0
    recall = pairs_both / pairs_same_team if pairs_same_team else 0.0
    print(
        f"\npair-level recovery of hidden care teams: "
        f"precision {precision:.2f}, recall {recall:.2f}"
    )
    print(
        "(department codes alone cannot do this: doctors and nurses of the "
        "same team carry different codes)"
    )


if __name__ == "__main__":
    main()
