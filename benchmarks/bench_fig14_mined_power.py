"""Figure 14: predictive power of MINED templates by length.

Paper (mined on days 1-6 first accesses, tested on day-7 first accesses
with the fake log): length-2 templates have the best precision (~1.0)
with recall ~0.34 (0.42 normalized); length-3 raises recall to ~0.51;
length-4 (group templates) reaches ~0.73 (0.89 normalized) while
precision drops; "All" barely differs from length-4 because long
templates subsume the short ones' accesses.
"""

import pytest

from benchlib import is_smoke

# Paper-scale reproduction: the full benchmark hospital is the point, so
# under REPRO_BENCH_SMOKE=1 (the CI smoke runs) this module skips itself.
pytestmark = pytest.mark.skipif(
    is_smoke(), reason="paper-scale reproduction; skipped in smoke mode"
)

from repro.core import MiningConfig, OneWayMiner
from repro.evalx import mined_predictive_power

CONFIG = MiningConfig(support_fraction=0.01, max_length=4, max_tables=3)

PAPER_NOTES = (
    "paper: len2 P~1.0/R~0.34, len3 R~0.51, len4 R~0.73 with P drop, "
    "All ~= len4"
)


def bench_fig14_mined_power(benchmark, study, report):
    def run():
        mined = OneWayMiner(
            study.mining_db(), study.mining_graph(), CONFIG
        ).mine()
        return mined, mined_predictive_power(study, mining_result=mined)

    mined, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"  mined {len(mined.templates)} templates from "
        f"{len(study.mining_db().table('Log'))} training first accesses"
    ]
    lines.append(
        f"  {'length':<12} {'#tmpl':>6} {'precision':>9} {'recall':>9} "
        f"{'recall_n':>9}"
    )
    for row in rows:
        s = row.scores
        lines.append(
            f"  {row.label:<12} {row.n_templates:6d} {s.precision:9.3f} "
            f"{s.recall:9.3f} {s.normalized_recall:9.3f}"
        )
    lines.append(f"  {PAPER_NOTES}")
    report.section("Figure 14 — mined templates' predictive power", lines)
    report.json(
        "fig14_mined_power",
        {
            "config": {
                "support_fraction": CONFIG.support_fraction,
                "max_length": CONFIG.max_length,
                "max_tables": CONFIG.max_tables,
            },
            "mined_templates": len(mined.templates),
            "rows": {
                row.label: {
                    "n_templates": row.n_templates,
                    "precision": row.scores.precision,
                    "recall": row.scores.recall,
                    "normalized_recall": row.scores.normalized_recall,
                }
                for row in rows
            },
        },
    )

    by_label = {row.label: row for row in rows}
    len2, len4, all_row = by_label["2"], by_label["4"], by_label["All"]
    assert len2.scores.precision > 0.9, "short templates are precise"
    assert len4.scores.recall > len2.scores.recall, "groups raise recall"
    assert len4.scores.precision < len2.scores.precision, "precision drops"
    # All ~= the longest length: longer templates subsume shorter ones
    assert abs(all_row.scores.recall - max(r.scores.recall for r in rows[:-1])) < 0.15
    if "3" in by_label:
        assert (
            len2.scores.recall
            <= by_label["3"].scores.recall
            <= len4.scores.recall + 0.05
        )
