"""Ablation: the three Section 3.2.1 mining optimizations.

Paper: "Without the optimizations described in Section 3.2.1, the run
time increases by many hours", and crucially the optimizations never
change the mined output (skipped paths are deferred, not discarded).

This benchmark mines the same input with each optimization toggled off
and reports run time, query counts, and output identity — including an
optimizer-estimation-error sensitivity check (the paper's constant *c*
exists exactly to absorb that error).
"""

import pytest

from benchlib import is_smoke

# Paper-scale reproduction: the full benchmark hospital is the point, so
# under REPRO_BENCH_SMOKE=1 (the CI smoke runs) this module skips itself.
pytestmark = pytest.mark.skipif(
    is_smoke(), reason="paper-scale reproduction; skipped in smoke mode"
)

from repro.core import MiningConfig, OneWayMiner, SupportConfig

BASE = dict(support_fraction=0.01, max_length=4, max_tables=3)

VARIANTS = {
    "all-on": SupportConfig(),
    "no-cache": SupportConfig(use_cache=False),
    "no-skip": SupportConfig(use_skip=False),
    "no-distinct": SupportConfig(distinct_reduction=False),
    "all-off": SupportConfig(
        use_cache=False, use_skip=False, distinct_reduction=False
    ),
    "estimate-x20": SupportConfig(estimator_error_factor=20.0),
    "estimate-/20": SupportConfig(estimator_error_factor=0.05),
}


def bench_ablation_optimizations(benchmark, mining_study, report):
    db = mining_study.mining_db()
    graph = mining_study.mining_graph()

    def run_all():
        out = {}
        for name, support_cfg in VARIANTS.items():
            config = MiningConfig(support=support_cfg, **BASE)
            out[name] = OneWayMiner(db, graph, config).mine()
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    baseline = results["all-on"]
    lines = [
        f"  {'variant':<14} {'time(s)':>8} {'queries':>8} {'skipped':>8} "
        f"{'hits':>6} {'templates':>10} {'same output':>12}"
    ]
    for name, result in results.items():
        stats = result.support_stats
        same = result.signatures() == baseline.signatures()
        lines.append(
            f"  {name:<14} {stats['query_time']:8.2f} "
            f"{stats['queries_run']:8d} {stats['skipped']:8d} "
            f"{stats['cache_hits']:6d} {len(result.templates):10d} "
            f"{str(same):>12}"
        )
    lines.append(
        "  paper: optimizations change run time 'by many hours', never the "
        "output; c absorbs optimizer estimation error"
    )
    report.section(
        "Ablation — Section 3.2.1 optimizations (one-way, T=3, M=4)", lines
    )
    report.json(
        "ablation_optimizations",
        {
            "config": BASE,
            "variants": {
                name: {
                    "support_stats": result.support_stats,
                    "templates": len(result.templates),
                    "same_output": result.signatures() == baseline.signatures(),
                }
                for name, result in results.items()
            },
        },
    )

    # Output invariance: the paper's core claim about the optimizations.
    for name, result in results.items():
        assert result.signatures() == baseline.signatures(), name
    # The skip optimization must actually skip, and only when enabled.
    assert baseline.support_stats["skipped"] > 0
    assert results["no-skip"].support_stats["skipped"] == 0
    # Disabling skipping must increase the number of executed queries.
    assert (
        results["no-skip"].support_stats["queries_run"]
        > baseline.support_stats["queries_run"]
    )
