"""Wire-API serving throughput: explain requests/sec through the stack.

The whole v1 serving path — asyncio HTTP parsing, route dispatch, the
worker-pool hop, the facade's RWLock'd ``explain``, envelope
serialization, keep-alive framing, and the typed client's parse — is
exercised as one pipeline: an in-process :class:`~repro.server.
AuditServer` over a synthetic hospital, hammered by a few persistent
:class:`~repro.client.AuditClient` connections issuing single-access
explains (the latency-sensitive serving operation; bulk audits take the
NDJSON batch route instead).

The floor: **>= 500 explain requests/sec single-process on the CI smoke
dataset** (``REPRO_BENCH_SMOKE=1``) — the paper pitches near-real-time
auditing, and a serving tier that cannot sustain hundreds of point
explains per second on a small log would be the bottleneck in front of
an engine that explains thousands per second in-process.  On the full
dataset the rate is recorded (and gated against the committed baseline
by ``compare_bench.py``) but no absolute floor is asserted.

Every response is verified against the in-process facade during the
measured run, so throughput cannot be bought with wrong answers.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time

from repro.api import AuditConfig, AuditService
from repro.client import AuditClient
from repro.ehr import SimulationConfig, simulate
from repro.server import AuditServer

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Required serving rate on the CI smoke dataset (asserted smoke-only).
MIN_SMOKE_RPS = 500.0
#: Persistent client connections (single server process regardless).
CLIENTS = 4
#: Measured requests in total, spread over the clients.
TOTAL_REQUESTS = 2_000 if _SMOKE else 6_000
#: Per-client warmup requests (plan caches, engine caches, TCP).
WARMUP = 25


def _world():
    config = (
        SimulationConfig.tiny(seed=7) if _SMOKE else SimulationConfig.small(seed=7)
    )
    db = simulate(config).db
    service = AuditService.open(db, config=AuditConfig())
    lids = sorted(service.engine.all_lids(), key=str)
    return service, lids


def bench_server_throughput(report):
    """>= 500 explain req/s through HTTP on the smoke dataset, answers
    byte-equal to the in-process facade."""
    service, lids = _world()
    per_client = TOTAL_REQUESTS // CLIENTS
    errors: list[BaseException] = []
    latencies: list[list[float]] = [[] for _ in range(CLIENTS)]

    with AuditServer(service, port=0, max_workers=CLIENTS) as server:
        # spot-check correctness through the full stack before timing
        probe = AuditClient(server.host, server.port)
        for lid in lids[:5]:
            assert (
                probe.explain(lid).to_dict() == service.explain(lid).to_dict()
            )

        barrier = threading.Barrier(CLIENTS + 1)

        def worker(index: int) -> None:
            client = AuditClient(server.host, server.port)
            try:
                for lid in lids[:WARMUP]:
                    client.explain(lid)
                barrier.wait()
                # stride so clients don't march over the same lid together
                for i in range(per_client):
                    lid = lids[(index + i * CLIENTS) % len(lids)]
                    started = time.perf_counter()
                    result = client.explain(lid)
                    latencies[index].append(time.perf_counter() - started)
                    if result.lid != lid:
                        raise AssertionError(
                            f"served lid {result.lid!r} for {lid!r}"
                        )
            except BaseException as exc:  # surface worker failures
                errors.append(exc)
                with contextlib.suppress(Exception):
                    barrier.abort()
            finally:
                client.close()

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started

        if errors:
            raise errors[0]
        server_metrics = probe.metrics()
        probe.close()

    total = per_client * CLIENTS
    rps = total / elapsed
    flat = sorted(t for per in latencies for t in per)
    p50 = flat[len(flat) // 2]
    p99 = flat[min(len(flat) - 1, (len(flat) * 99) // 100)]

    report.section(
        "Wire-API serving throughput — explain over HTTP",
        [
            f"  dataset                {'smoke' if _SMOKE else 'full'} "
            f"({len(lids)} accesses)",
            f"  clients (keep-alive)   {CLIENTS}",
            f"  requests               {total}",
            f"  elapsed                {elapsed:8.2f} s",
            f"  throughput             {rps:8.0f} req/s "
            + (f"(floor {MIN_SMOKE_RPS:.0f})" if _SMOKE else "(no floor)"),
            f"  client-side latency    p50 {p50 * 1e3:6.2f} ms   "
            f"p99 {p99 * 1e3:6.2f} ms",
            f"  server in-flight gauge {server_metrics['in_flight']}",
        ],
    )
    report.json(
        "server_throughput",
        {
            "config": {
                "smoke": _SMOKE,
                "accesses": len(lids),
                "clients": CLIENTS,
                "requests": total,
                "warmup_per_client": WARMUP,
                "min_smoke_rps": MIN_SMOKE_RPS,
            },
            "timings": {
                "elapsed_seconds": elapsed,
                "client_latency_p50_seconds": p50,
                "client_latency_p99_seconds": p99,
            },
            "server_metrics": server_metrics,
            "requests_per_second": rps,
        },
        throughput={"explain_requests_per_second": rps},
    )

    if _SMOKE:
        assert rps >= MIN_SMOKE_RPS, (
            f"served only {rps:.0f} explain req/s on the smoke dataset "
            f"(floor {MIN_SMOKE_RPS:.0f})"
        )
