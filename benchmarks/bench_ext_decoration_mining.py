"""Extension: decorated-template mining (the paper's §5.3.4 future work).

Figure 14 shows length-4 group templates dragging precision down because
they match groups at every hierarchy depth; the paper proposes mining
*decorated* templates "that restrict the groups that can be used to
better control precision."  This benchmark runs that step: for each
hand-built group template, score every ``Group_Depth = d`` decoration on
the day-7 test split and pick the recommended refinement.

Expected shape (the Figure 12 trade-off, now discovered automatically):
the undecorated template has the best recall and the worst precision;
the recommended decoration recovers most of the precision of deep groups
while keeping the recall floor.
"""

import pytest

from benchlib import is_smoke

# Paper-scale reproduction: the full benchmark hospital is the point, so
# under REPRO_BENCH_SMOKE=1 (the CI smoke runs) this module skips itself.
pytestmark = pytest.mark.skipif(
    is_smoke(), reason="paper-scale reproduction; skipped in smoke mode"
)

from repro.core import DecorationMiner, group_depth_attr
from repro.audit import group_templates
from repro.ehr import build_careweb_graph


def bench_ext_decoration_mining(benchmark, study, report):
    combined, real, fake = study.combined_db()
    graph = build_careweb_graph(combined)
    bases = group_templates(graph, depth=None)  # undecorated: all depths
    miner = DecorationMiner(
        combined, real, fake, test_lids=study.test_first_lids()
    )

    def run():
        return miner.refine_all(bases, group_depth_attr, min_recall_ratio=0.85)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"  {'template':<34} {'base P':>7} {'base R#':>8} "
        f"{'rec. depth':>10} {'rec. P':>7} {'rec. R#':>8}"
    ]
    for result in results:
        rec = result.recommended
        lines.append(
            f"  {result.base.display_name():<34} "
            f"{result.base_precision:7.3f} {result.base_real:8d} "
            f"{str(rec.value) if rec else '-':>10} "
            f"{rec.precision if rec else 0:7.3f} "
            f"{rec.explained_real if rec else 0:8d}"
        )
    lines.append(
        "  paper (§5.3.4): depth restriction is the proposed fix for the "
        "length-4 precision drop of Figure 14"
    )
    report.section(
        "Extension — mined Group_Depth decorations (day-7 test split)", lines
    )
    report.json(
        "ext_decoration_mining",
        {
            "config": {"min_recall_ratio": 0.85},
            "templates": {
                result.base.display_name(): {
                    "base_precision": result.base_precision,
                    "base_real": result.base_real,
                    "recommended_depth": (
                        result.recommended.value if result.recommended else None
                    ),
                    "recommended_precision": (
                        result.recommended.precision if result.recommended else None
                    ),
                }
                for result in results
            },
        },
    )

    assert results, "every group template must be refinable"
    for result in results:
        assert result.recommended is not None
        rec = result.recommended
        # the mined decoration must improve precision over the base...
        assert rec.precision >= result.base_precision
        # ...while keeping the contracted recall floor
        assert rec.recall_vs(result.base_real) >= 0.85 - 1e-9
