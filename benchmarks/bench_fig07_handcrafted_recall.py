"""Figure 7: hand-crafted explanations' recall for ALL accesses.

Paper: connecting events to the *specific accessing user* (Appt w/Dr.,
Visit w/Dr., Doc. w/Dr.) drops recall versus Figure 6, because events
only reference the primary doctor; repeat access still explains a
majority; combined they reach ~90%.
"""

import pytest

from benchlib import is_smoke

# Paper-scale reproduction: the full benchmark hospital is the point, so
# under REPRO_BENCH_SMOKE=1 (the CI smoke runs) this module skips itself.
pytestmark = pytest.mark.skipif(
    is_smoke(), reason="paper-scale reproduction; skipped in smoke mode"
)

from repro.evalx import event_frequency, handcrafted_recall

PAPER = {
    "Appt w/Dr.": 0.35,
    "Visit w/Dr.": 0.04,
    "Doc. w/Dr.": 0.38,
    "Repeat Access": 0.75,
    "All w/Dr.": 0.90,
}


def bench_fig07_handcrafted_recall(benchmark, study, report):
    recalls = benchmark.pedantic(
        lambda: handcrafted_recall(study.db), rounds=1, iterations=1
    )
    lines = report.fmt_bars(recalls)
    lines.append(f"  paper (approx): {PAPER}")
    report.section("Figure 7 — hand-crafted recall, all accesses", lines)
    report.json(
        "fig07_handcrafted_recall",
        {"config": {"selection": "all accesses"}, "measured": recalls, "paper": PAPER},
    )

    events = event_frequency(study.db)
    # each w/Dr. bar must be below its Figure 6 event-frequency bar
    assert recalls["Appt w/Dr."] < events["Appt"]
    assert recalls["Visit w/Dr."] < events["Visit"]
    assert recalls["Doc. w/Dr."] < events["Document"]
    assert recalls["Repeat Access"] > 0.5
    assert recalls["All w/Dr."] > 0.6
