"""Figure 9: hand-crafted explanations' recall for FIRST accesses.

Paper: the w/Dr. templates explain only ~11% of first accesses even
though ~75% of those patients have events — because appointments, visits
and documents reference only the primary doctor, not the nurses and
consult staff who also (legitimately) open the chart.  This gap is the
motivation for collaborative groups (Section 4 / Figure 12).
"""

import pytest

from benchlib import is_smoke

# Paper-scale reproduction: the full benchmark hospital is the point, so
# under REPRO_BENCH_SMOKE=1 (the CI smoke runs) this module skips itself.
pytestmark = pytest.mark.skipif(
    is_smoke(), reason="paper-scale reproduction; skipped in smoke mode"
)

from repro.evalx import event_frequency, handcrafted_recall

PAPER = {"Appt w/Dr.": 0.06, "Visit w/Dr.": 0.01, "Doc. w/Dr.": 0.065, "All w/Dr.": 0.11}


def bench_fig09_handcrafted_first(benchmark, study, report):
    recalls = benchmark.pedantic(
        lambda: handcrafted_recall(
            study.db, lids=study.first_lids(), include_repeat=False
        ),
        rounds=1,
        iterations=1,
    )
    lines = report.fmt_bars(recalls)
    lines.append(f"  paper (approx): {PAPER}")
    report.section("Figure 9 — hand-crafted recall, first accesses", lines)
    report.json(
        "fig09_handcrafted_first",
        {"config": {"selection": "first accesses"}, "measured": recalls, "paper": PAPER},
    )

    events = event_frequency(
        study.db, lids=study.first_lids(), include_repeat=False
    )
    # the paper's central observation: a large gap between having an event
    # (Fig 8) and the event naming the accessor (Fig 9)
    assert recalls["All w/Dr."] < 0.35
    assert recalls["All w/Dr."] < events["All"] / 2.5
