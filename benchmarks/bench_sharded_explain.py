"""Sharded scatter-gather vs single-shard whole-log explanation.

The explanation workload partitions perfectly by patient (every template
is anchored on the accessed patient, and log self-joins equate the
``Patient`` attribute), so N process-backed shards should explain the
log close to N times faster than one core can — this benchmark measures
exactly that:

* **single** — ``open_service`` with ``shards=1`` (the plain
  :class:`~repro.api.AuditService`): one engine, one
  ``explain_all`` semijoin pass over the whole log;
* **sharded** — ``shards = cpu_count`` (capped), ``executor_kind=
  "process"``: each shard runs its own semijoin pass concurrently in a
  dedicated worker process; the partitions union in the parent.

Shard construction (partitioning, worker start-up, payload shipping) is
deliberately *outside* the measured region — it is a once-per-deployment
cost, while ``explain_all`` is the recurring audit pass.

Both paths must produce the identical explained/unexplained partition.
On hosts with >= 4 cores the sharded pass must win by >= 2x
(``MIN_SPEEDUP``); on smaller hosts (including 1-core CI containers)
the differential still runs but the speedup floor is not asserted —
there is nothing to parallelize onto.

Set ``REPRO_BENCH_SMOKE=1`` for a CI-sized run (same assertions,
smaller workload).
"""

from __future__ import annotations

import os
import time

from repro.api import AuditConfig, open_service
from repro.audit import all_event_user_templates, repeat_access_template
from repro.ehr import SimulationConfig, build_careweb_graph, simulate

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Required advantage of the sharded scatter-gather pass on >= 4 cores.
MIN_SPEEDUP = 2.0
#: Cores needed before the speedup floor is asserted.
MIN_CORES = 4
#: Shard-count cap (beyond the core count, extra shards only add IPC).
MAX_SHARDS = 8


def _world():
    """(db factory, templates) — a fresh identical world per service so
    neither path warms the other's caches."""
    if _SMOKE:
        # Larger than the other smoke worlds on purpose: the measured
        # region must dwarf the constant scatter-gather overhead (~a few
        # ms of IPC) for the speedup floor to be meaningful on 4 cores.
        config = SimulationConfig.small(seed=7).scaled(
            daily_encounter_rate=0.12,
            n_teams=12,
            patients_per_team=(80, 130),
        )
    else:
        config = SimulationConfig.benchmark()

    def fresh_db():
        return simulate(config).db

    db = fresh_db()
    graph = build_careweb_graph(db)
    templates = all_event_user_templates(graph)
    templates.append(repeat_access_template(graph))
    return fresh_db, templates


def bench_sharded_explain_speedup(report):
    """Process-sharded explain_all must beat single-shard >= 2x on >= 4
    cores, with an identical explained/unexplained partition always."""
    cores = os.cpu_count() or 1
    shards = max(2, min(cores, MAX_SHARDS))
    fresh_db, templates = _world()

    # --- single-shard baseline (cold caches, measured region = pass) ---
    single = open_service(
        fresh_db(),
        templates=templates,
        config=AuditConfig(eager_warm=False),
    )
    started = time.perf_counter()
    single_partition = single.explain_all()
    single_seconds = time.perf_counter() - started

    # --- sharded scatter-gather (workers up, caches cold) --------------
    sharded_config = AuditConfig(
        eager_warm=False, shards=shards, executor_kind="process"
    )
    with open_service(
        fresh_db(), templates=templates, config=sharded_config
    ) as sharded:
        started = time.perf_counter()
        sharded_partition = sharded.explain_all()
        sharded_seconds = time.perf_counter() - started
        per_shard_rows = [
            s["log_rows"] for s in sharded.stats()["per_shard"]
        ]

    total = len(single_partition)
    speedup = single_seconds / sharded_seconds
    asserted = cores >= MIN_CORES
    report.section(
        "Sharded explanation — scatter-gather vs single shard",
        [
            f"  accesses                  {total}",
            f"  templates                 {len(templates)}",
            f"  cores                     {cores}",
            f"  shards (process-backed)   {shards} "
            f"(rows/shard: {min(per_shard_rows)}..{max(per_shard_rows)})",
            f"  single-shard explain_all  {single_seconds:8.2f} s",
            f"  sharded explain_all       {sharded_seconds:8.2f} s",
            f"  speedup                   {speedup:8.2f}x "
            + (
                f"(floor {MIN_SPEEDUP}x)"
                if asserted
                else f"(floor not asserted: {cores} < {MIN_CORES} cores)"
            ),
        ],
    )
    report.json(
        "sharded_explain",
        {
            "config": {
                "smoke": _SMOKE,
                "accesses": total,
                "templates": len(templates),
                "cores": cores,
                "shards": shards,
                "executor_kind": "process",
                "per_shard_rows": per_shard_rows,
                "speedup_asserted": asserted,
            },
            "timings": {
                "single_seconds": single_seconds,
                "sharded_seconds": sharded_seconds,
            },
            "explained": len(single_partition.explained),
            "unexplained": len(single_partition.unexplained),
            "coverage": single_partition.coverage,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
        },
        throughput={
            "sharded_accesses_per_second": total / sharded_seconds,
        },
    )

    # differential: the partition must not depend on the execution layout
    assert sharded_partition.explained == single_partition.explained
    assert sharded_partition.unexplained == single_partition.unexplained
    assert (
        sharded_partition.explained | sharded_partition.unexplained
        == single_partition.explained | single_partition.unexplained
    )
    if asserted:
        assert speedup >= MIN_SPEEDUP, (
            f"sharded path only {speedup:.2f}x faster on {cores} cores "
            f"(need {MIN_SPEEDUP}x)"
        )
