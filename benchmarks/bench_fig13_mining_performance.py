"""Figure 13: cumulative mining run time by explanation length.

Paper (days 1-6 first accesses, data sets A+B+groups, T=3, s=1%, M=5,
all Section 3.2.1 optimizations): Bridge-2 is the most efficient because
it pushes the start/end constraints down; one-way beats two-way because
two-way considers more initial edges; every algorithm returns the same
template set.

Substrate note (recorded in EXPERIMENTS.md): on our in-memory hash-join
engine at the paper's T=3 the optimizer-skip optimization makes partial-
path support queries nearly free, which flattens the inter-algorithm
differences — so this benchmark measures the regime the paper's numbers
come from: the candidate frontier large relative to the explanation set
(T=4) with the skip optimization disabled.  The skip ablation itself is
measured in bench_ablation_optimizations.
"""

import pytest

from benchlib import is_smoke

# Paper-scale reproduction: the full benchmark hospital is the point, so
# under REPRO_BENCH_SMOKE=1 (the CI smoke runs) this module skips itself.
pytestmark = pytest.mark.skipif(
    is_smoke(), reason="paper-scale reproduction; skipped in smoke mode"
)

from repro.core import MiningConfig, SupportConfig
from repro.evalx import mining_performance

CONFIG = MiningConfig(
    support_fraction=0.01,
    max_length=5,
    max_tables=4,
    support=SupportConfig(use_skip=False),
)


def bench_fig13_mining_performance(benchmark, mining_study, report):
    results = benchmark.pedantic(
        lambda: mining_performance(mining_study, config=CONFIG),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"  mining input: {len(mining_study.mining_db().table('Log'))} "
        f"first accesses, {len(mining_study.mining_graph().edges)} edges; "
        f"T=4, s=1%, M=5, skip-optimization off (see module docstring)"
    ]
    lines.append(
        f"  {'algorithm':<10} " + " ".join(f"len{k:>8}" for k in range(1, 6))
        + f" {'queries':>9}"
    )
    for name, result in results.items():
        series = result.cumulative_time_by_length()
        cells = " ".join(f"{series.get(k, 0.0):10.2f}" for k in range(1, 6))
        lines.append(
            f"  {name:<10} {cells} {result.support_stats['queries_run']:9d}"
        )
    lines.append(
        "  paper: Bridge-2 fastest; one-way < two-way; same template sets"
    )
    report.section(
        "Figure 13 — cumulative mining run time by length (seconds)", lines
    )
    report.json(
        "fig13_mining_performance",
        {
            "config": {
                "support_fraction": CONFIG.support_fraction,
                "max_length": CONFIG.max_length,
                "max_tables": CONFIG.max_tables,
                "use_skip": CONFIG.support.use_skip,
            },
            "algorithms": {
                name: {
                    "cumulative_seconds_by_length": result.cumulative_time_by_length(),
                    "templates": len(result.templates),
                    "support_stats": result.support_stats,
                }
                for name, result in results.items()
            },
        },
    )

    sigs = [r.signatures() for r in results.values()]
    assert all(s == sigs[0] for s in sigs), "all algorithms must agree"

    total = {
        name: result.cumulative_time_by_length()[5]
        for name, result in results.items()
    }
    queries = {
        name: result.support_stats["queries_run"]
        for name, result in results.items()
    }
    # the paper's headline ordering, measured on wall-clock time
    assert total["one-way"] < total["two-way"]
    assert total["bridge-2"] < total["two-way"]
    assert total["bridge-2"] <= min(total["bridge-3"], total["bridge-4"])
    # and its mechanism, measured robustly on support-query counts
    assert queries["bridge-2"] < queries["one-way"] < queries["two-way"]
