"""Multi-worker serving throughput: does ``--workers 2`` scale?

The fleet path (:class:`~repro.server.FleetSupervisor`: one port, N
worker processes with SO_REUSEPORT sibling sockets, one service replica
each) exists to lift the single-process serving ceiling — the asyncio
server runs its facade calls on a thread pool, so a CPU-bound explain
workload is GIL-serialized inside one process no matter how many client
connections arrive.  This benchmark hammers a 1-worker and a 2-worker
fleet with the same multi-process client load and records both rates.

**Scaling is asserted only where it can exist**: on runners with >= 2
CPUs the 2-worker fleet must serve >= 1.8x the single-worker rate.  On a
1-core machine the two legs still run and their absolute rates are
recorded (and gated same-CPU-count by ``compare_bench.py``), but no
scaling metric is emitted and nothing is asserted — a 1-core box cannot
demonstrate parallel speedup, and faking the number would poison the
committed baseline.

Every measured response is a real ``/v1/explain`` through the full wire
stack; a correctness probe pins the fleet's answers to the in-process
facade before any timing starts.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import time

from repro.api import AuditConfig, open_service
from repro.client import AuditClient
from repro.ehr import SimulationConfig, simulate
from repro.server import FleetSupervisor

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Worker counts under test (the scaling pair).
WORKER_COUNTS = (1, 2)
#: Client processes hammering the fleet (enough to keep 2 workers fed).
CLIENT_PROCS = 4
#: Measured requests in total, spread over the client processes.
TOTAL_REQUESTS = 600 if _SMOKE else 4_000
#: Per-client warmup requests (TCP, plan caches, engine caches).
WARMUP = 10
#: Required 2-worker advantage — asserted on >= 2 CPU machines only.
MIN_SCALING = 1.8


def _make_service():
    config = (
        SimulationConfig.tiny(seed=7) if _SMOKE else SimulationConfig.small(seed=7)
    )
    db = simulate(config).db
    return open_service(db, config=AuditConfig())


def _client_main(host, port, lids, index, per_client, barrier, queue):
    """One load-generator process: keep-alive explains, strided lids."""
    client = AuditClient(host, port, timeout=60)
    try:
        for lid in lids[:WARMUP]:
            client.explain(lid)
        barrier.wait()
        for i in range(per_client):
            lid = lids[(index + i * CLIENT_PROCS) % len(lids)]
            result = client.explain(lid)
            if result.lid != lid:
                raise AssertionError(f"served lid {result.lid!r} for {lid!r}")
        queue.put(("ok", index))
    except BaseException as exc:  # surface failures in the parent
        queue.put(("error", repr(exc)))
        with contextlib.suppress(Exception):
            barrier.abort()
    finally:
        client.close()


def _measure_fleet(workers: int, lids, reference) -> float:
    """Requests/sec through a ``workers``-strong fleet."""
    context = multiprocessing.get_context("fork")
    per_client = TOTAL_REQUESTS // CLIENT_PROCS
    with FleetSupervisor(_make_service, workers=workers) as supervisor:
        # correctness probe before any timing: fleet == facade
        probe = AuditClient(supervisor.host, supervisor.port)
        for lid in lids[:5]:
            assert (
                probe.explain(lid).to_dict() == reference.explain(lid).to_dict()
            )
        probe.close()

        barrier = context.Barrier(CLIENT_PROCS + 1)
        queue = context.Queue()
        clients = [
            context.Process(
                target=_client_main,
                args=(
                    supervisor.host,
                    supervisor.port,
                    lids,
                    index,
                    per_client,
                    barrier,
                    queue,
                ),
                daemon=True,
            )
            for index in range(CLIENT_PROCS)
        ]
        for process in clients:
            process.start()
        barrier.wait()
        started = time.perf_counter()
        outcomes = [queue.get(timeout=600) for _ in clients]
        elapsed = time.perf_counter() - started
        for process in clients:
            process.join(timeout=30)
        errors = [detail for status, detail in outcomes if status == "error"]
        if errors:
            raise AssertionError(f"client process failed: {errors[0]}")
    return (per_client * CLIENT_PROCS) / elapsed


def bench_multiworker_throughput(report):
    """2-worker fleet >= 1.8x the 1-worker rate — on >= 2 CPUs."""
    cpus = os.cpu_count() or 1
    reference = _make_service()
    lids = sorted(reference.engine.all_lids(), key=str)

    rates = {
        workers: _measure_fleet(workers, lids, reference)
        for workers in WORKER_COUNTS
    }
    reference.close()
    scaling = rates[2] / rates[1]
    multicore = cpus >= 2

    report.section(
        "Multi-worker serving — SO_REUSEPORT fleet scaling",
        [
            f"  dataset                {'smoke' if _SMOKE else 'full'} "
            f"({len(lids)} accesses)",
            f"  cpus                   {cpus}",
            f"  client processes       {CLIENT_PROCS}",
            f"  requests per leg       {(TOTAL_REQUESTS // CLIENT_PROCS) * CLIENT_PROCS}",
            f"  1 worker               {rates[1]:8.0f} req/s",
            f"  2 workers              {rates[2]:8.0f} req/s",
            (
                f"  scaling                {scaling:8.2f}x (floor {MIN_SCALING}x)"
                if multicore
                else f"  scaling                {scaling:8.2f}x "
                "(1-core machine: recorded, not gated, not asserted)"
            ),
        ],
    )
    throughput = {
        "fleet_1worker_requests_per_second": rates[1],
        "fleet_2worker_requests_per_second": rates[2],
    }
    if multicore:
        # A same-run ratio is machine-portable, so the gate compares it
        # everywhere — only emit it where parallel speedup can exist.
        throughput["multiworker_scaling_speedup"] = scaling
    report.json(
        "multiworker_throughput",
        {
            "config": {
                "smoke": _SMOKE,
                "accesses": len(lids),
                "cpus": cpus,
                "worker_counts": list(WORKER_COUNTS),
                "client_processes": CLIENT_PROCS,
                "requests_per_leg": (TOTAL_REQUESTS // CLIENT_PROCS)
                * CLIENT_PROCS,
                "warmup_per_client": WARMUP,
                "min_scaling": MIN_SCALING,
            },
            "requests_per_second": {
                str(workers): rates[workers] for workers in WORKER_COUNTS
            },
            "scaling": scaling,
            "scaling_gated": multicore,
        },
        throughput=throughput,
    )

    if multicore:
        assert scaling >= MIN_SCALING, (
            f"2-worker fleet only {scaling:.2f}x the 1-worker rate on a "
            f"{cpus}-cpu machine (need {MIN_SCALING}x)"
        )
