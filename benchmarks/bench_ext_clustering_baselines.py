"""Extension: clustering-algorithm choice (the paper's black box, opened).

Section 4.1 presents modularity clustering as "one possible approach ...
we treat these algorithms as a black box."  This benchmark swaps the box:
weighted-modularity (Louvain-style) vs. threshold connected components
vs. department codes, scored on (i) modularity of the partition and
(ii) pair-level recovery of the simulator's hidden care teams.

Expected shape: modularity clustering wins on team recovery; raw
components over-merge (shared consult staff connect everything);
department codes have high precision but collapse recall because doctors
and nurses of one team carry different codes.
"""

import pytest

from benchlib import is_smoke

# Paper-scale reproduction: the full benchmark hospital is the point, so
# under REPRO_BENCH_SMOKE=1 (the CI smoke runs) this module skips itself.
pytestmark = pytest.mark.skipif(
    is_smoke(), reason="paper-scale reproduction; skipped in smoke mode"
)

from repro.evalx import lids_on_days, restrict_log
from repro.groups import (
    access_matrix_from_log,
    cluster_graph,
    department_grouping,
    modularity,
    pair_scores,
    similarity_graph,
    threshold_components,
)


def bench_ext_clustering_baselines(benchmark, study, report):
    train = restrict_log(study.db, lids_on_days(study.db, study.train_days))
    access = access_matrix_from_log(train)
    adjacency = similarity_graph(access)
    truth = {
        uid: frozenset(user.team_ids)
        for uid, user in study.sim.hospital.users.items()
        if uid in adjacency
    }
    dept_of = {
        uid: study.sim.hospital.department_of(uid) for uid in adjacency
    }

    def run():
        return {
            "modularity (ours)": cluster_graph(adjacency),
            "components t=0": threshold_components(adjacency),
            "components t=0.02": threshold_components(adjacency, 0.02),
            "department codes": department_grouping(dept_of),
        }

    partitions = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"  {'method':<20} {'groups':>7} {'Q':>7} {'pair P':>7} {'pair R':>7}"
    ]
    scores = {}
    for name, partition in partitions.items():
        q = modularity(adjacency, partition)
        precision, recall = pair_scores(partition, truth)
        scores[name] = (q, precision, recall)
        lines.append(
            f"  {name:<20} {len(set(partition.values())):7d} {q:7.3f} "
            f"{precision:7.3f} {recall:7.3f}"
        )
    lines.append(
        "  paper: clustering is a black box; groups must beat department "
        "codes (Fig 12) — here quantified on hidden care teams"
    )
    report.section("Extension — clustering algorithm comparison", lines)
    report.json(
        "ext_clustering_baselines",
        {
            "config": {"train_days": list(study.train_days)},
            "methods": {
                name: {
                    "groups": len(set(partition.values())),
                    "modularity": scores[name][0],
                    "pair_precision": scores[name][1],
                    "pair_recall": scores[name][2],
                }
                for name, partition in partitions.items()
            },
        },
    )

    q_ours, p_ours, r_ours = scores["modularity (ours)"]
    for name, (q, _p, _r) in scores.items():
        if name.startswith("components"):
            assert q_ours >= q - 1e-9, "modularity optimizer must win on Q"
    _qd, p_dept, r_dept = scores["department codes"]
    assert r_ours > r_dept, "groups must beat department codes on recall"
    f1_ours = 2 * p_ours * r_ours / max(1e-9, p_ours + r_ours)
    f1_dept = 2 * p_dept * r_dept / max(1e-9, p_dept + r_dept)
    assert f1_ours > f1_dept
