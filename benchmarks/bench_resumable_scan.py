"""Resumable sliced scans vs the monolithic whole-log audit.

Preemption must be close to free: walking ``report()`` as a sequence of
bounded :meth:`~repro.api.AuditService.scan` slices runs one batch
semijoin per template per slice instead of one per template total, so
the sliced walk *cannot* beat the monolithic call — the question this
benchmark gates is how much it gives up.

Two floors are asserted on every run:

* **throughput** — the sliced walk's total wall time stays within 20%
  of the monolithic ``report()`` on the same cold-engine footing
  (``resumable_vs_monolithic_ratio >= 0.8``, also gated against the
  committed baseline by ``compare_bench.py``);
* **preemption** — with a wall-clock quantum set, every slice's latency
  stays bounded (quantum + one chunk's evaluation + dispatch overhead),
  which is the whole point: a full-log audit never holds a reader slot
  longer than one slice.

Both runs assemble the identical artifact — verified against the
one-shot report during the measured run, so the ratio cannot be bought
with wrong answers.
"""

from __future__ import annotations

import os
import time

from repro.api import AuditConfig, AuditService, assemble_report
from repro.ehr import SimulationConfig, simulate
from repro.server import dump_json

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Sliced-vs-monolithic wall-time ratio floor (the "within 20%" gate).
MIN_RATIO = 0.8
#: Rows per slice in the throughput comparison.  Page size is a
#: deployment knob that scales with the log (a slice is a unit of
#: work, not a fixed row count), so both datasets walk at the same
#: granularity — a handful of slices: each batch-semijoin call has a
#: fixed setup cost, and hundreds of needless slices would measure
#: that constant, not the scan.
PAGE_ROWS = 512 if _SMOKE else 1024
#: Wall-clock budget per slice in the preemption-latency run.
QUANTUM_SECONDS = 0.05
#: Timed repetitions per path; the fastest is kept.  Engine caches are
#: cold every rep (fresh service), so the minimum filters scheduler
#: noise, not work.
REPS = 3
#: Slack on top of the quantum for one chunk's evaluation overrun plus
#: scheduling noise on a loaded CI box.
SLICE_OVERRUN_ALLOWANCE = 0.45


def _db():
    config = (
        SimulationConfig.tiny(seed=7) if _SMOKE else SimulationConfig.small(seed=7)
    )
    return simulate(config).db


def _fresh_service(db) -> AuditService:
    """A cold service: ``eager_warm=False`` so neither path gets the
    whole-log evaluation for free at open time — the measured call does
    the actual work in both cases."""
    return AuditService.open(db, config=AuditConfig(eager_warm=False))


def bench_resumable_scan(report):
    """Sliced scan >= 80% of monolithic throughput; per-slice latency
    bounded by the quantum."""
    db = _db()

    # Warm-up: table-level caches (projection indexes, distinct
    # projections) live on the shared tables, so whichever path runs
    # first would otherwise pay to warm them for the other.  One
    # untimed pass of each puts both on identical steady-state footing;
    # engine-level caches stay cold per rep (fresh service each time).
    service = _fresh_service(db)
    one_shot = service.report()
    total_rows = one_shot.total
    service.close()
    service = _fresh_service(db)
    for _ in service.scan_pages(page_rows=PAGE_ROWS):
        pass
    service.close()

    # ------------------------------------------------------ monolithic
    monolithic_seconds = float("inf")
    for _ in range(REPS):
        service = _fresh_service(db)
        started = time.perf_counter()
        one_shot = service.report()
        monolithic_seconds = min(monolithic_seconds, time.perf_counter() - started)
        service.close()

    # ------------------------------------------------------ sliced walk
    sliced_seconds = float("inf")
    pages = []
    slice_seconds: list[float] = []
    for _ in range(REPS):
        service = _fresh_service(db)
        rep_pages = []
        rep_slice_seconds: list[float] = []
        started = time.perf_counter()
        walk = service.scan_pages(page_rows=PAGE_ROWS)
        while True:
            slice_started = time.perf_counter()
            try:
                page = next(walk)
            except StopIteration:
                break
            rep_slice_seconds.append(time.perf_counter() - slice_started)
            rep_pages.append(page)
        rep_seconds = time.perf_counter() - started
        service.close()
        if rep_seconds < sliced_seconds:
            sliced_seconds = rep_seconds
            pages = rep_pages
            slice_seconds = rep_slice_seconds

    # identical artifact, or the comparison is meaningless
    assert dump_json(assemble_report(pages).to_dict()) == dump_json(
        one_shot.to_dict()
    ), "sliced scan diverged from the monolithic report"

    ratio = monolithic_seconds / sliced_seconds if sliced_seconds else 1.0
    rows_per_second = total_rows / sliced_seconds if sliced_seconds else 0.0

    # ------------------------------------------- quantum-bounded slices
    service = _fresh_service(db)
    quantum_slice_seconds: list[float] = []
    quantum_pages = 0
    walk = service.scan_pages(page_rows=10_000, quantum_seconds=QUANTUM_SECONDS)
    while True:
        slice_started = time.perf_counter()
        try:
            next(walk)
        except StopIteration:
            break
        quantum_slice_seconds.append(time.perf_counter() - slice_started)
        quantum_pages += 1
    service.close()

    max_quantum_slice = max(quantum_slice_seconds)
    slice_bound = QUANTUM_SECONDS + SLICE_OVERRUN_ALLOWANCE

    report.section(
        "Resumable sliced scan vs monolithic report",
        [
            f"  dataset                 {'smoke' if _SMOKE else 'full'} "
            f"({total_rows} accesses)",
            f"  monolithic report       {monolithic_seconds:8.3f} s",
            f"  sliced walk             {sliced_seconds:8.3f} s "
            f"({len(pages)} slices of <= {PAGE_ROWS} rows)",
            f"  ratio (mono/sliced)     {ratio:8.3f}  (floor {MIN_RATIO})",
            f"  sliced throughput       {rows_per_second:8.0f} rows/s",
            f"  max slice latency       {max(slice_seconds) * 1e3:8.1f} ms "
            f"(row-bounded walk)",
            f"  quantum walk            {quantum_pages} slices at "
            f"{QUANTUM_SECONDS * 1e3:.0f} ms budget, "
            f"max {max_quantum_slice * 1e3:.1f} ms "
            f"(bound {slice_bound * 1e3:.0f} ms)",
        ],
    )
    report.json(
        "resumable_scan",
        {
            "config": {
                "smoke": _SMOKE,
                "accesses": total_rows,
                "page_rows": PAGE_ROWS,
                "quantum_seconds": QUANTUM_SECONDS,
                "min_ratio": MIN_RATIO,
                "slice_bound_seconds": slice_bound,
            },
            "timings": {
                "monolithic_seconds": monolithic_seconds,
                "sliced_seconds": sliced_seconds,
                "slices": len(pages),
                "max_slice_seconds": max(slice_seconds),
                "quantum_slices": quantum_pages,
                "max_quantum_slice_seconds": max_quantum_slice,
            },
            "rows_per_second": rows_per_second,
        },
        throughput={
            "resumable_vs_monolithic_ratio": ratio,
            "scan_rows_per_second": rows_per_second,
        },
    )

    assert ratio >= MIN_RATIO, (
        f"sliced scan ran at {ratio:.2f}x the monolithic path "
        f"(floor {MIN_RATIO}: within 20%)"
    )
    assert max_quantum_slice <= slice_bound, (
        f"a quantum-bounded slice took {max_quantum_slice * 1e3:.1f} ms, "
        f"past the {slice_bound * 1e3:.0f} ms bound "
        f"({QUANTUM_SECONDS * 1e3:.0f} ms quantum + overrun allowance)"
    )
