"""Shared fixtures and reporting for the paper-reproduction benchmarks.

Every benchmark regenerates one table/figure of the paper's evaluation and
appends a formatted block to a session report, printed in the terminal
summary and persisted to ``benchmarks/latest_results.txt`` — so
``pytest benchmarks/ --benchmark-only`` leaves a readable artifact even
with output capturing on.

Each benchmark additionally emits a machine-readable
``benchmarks/BENCH_<name>.json`` via :meth:`PaperReport.json`.  Every
record shares one schema (``benchlib.make_record``): a versioned
envelope with machine metadata (git SHA, CPU count, Python version), a
smoke-mode flag, and an optional ``throughput`` mapping of gated
higher-is-better metrics — what ``compare_bench.py`` diffs against the
committed ``benchmarks/baselines/`` to fail CI on regressions.  The
fresh artifacts are gitignored; the baselines are committed.
"""

from __future__ import annotations

import contextlib
import os

import pytest

from benchlib import make_record, write_record

from repro.ehr import SimulationConfig
from repro.evalx import CareWebStudy

_BENCH_DIR = os.path.dirname(__file__)
_RESULTS_PATH = os.path.join(_BENCH_DIR, "latest_results.txt")
_REPORT_SECTIONS: list[str] = []


class PaperReport:
    """Collects formatted result blocks for the terminal summary."""

    def section(self, title: str, lines) -> None:
        block = [f"== {title} =="]
        block.extend(str(line) for line in lines)
        _REPORT_SECTIONS.append("\n".join(block))

    def json(
        self,
        name: str,
        payload: dict,
        throughput: dict[str, float] | None = None,
    ) -> str:
        """Write ``BENCH_<name>.json`` in the shared schema.

        ``payload`` carries the benchmark's config, timings, and headline
        numbers (non-JSON values are stringified); ``throughput`` lists
        the gated higher-is-better metrics the CI regression gate
        compares (None values are dropped, e.g. a pytest-benchmark mean
        under ``--benchmark-disable``).  Returns the path written.
        """
        path = os.path.join(_BENCH_DIR, f"BENCH_{name}.json")
        return write_record(path, make_record(name, payload, throughput))

    @staticmethod
    def fmt_bars(values: dict, width: int = 40) -> list[str]:
        """Render a {label: fraction} dict as ASCII bars (paper bar charts)."""
        out = []
        for label, value in values.items():
            bar = "#" * max(0, int(round(value * width)))
            out.append(f"  {label:<16} {value:6.3f}  |{bar}")
        return out

    @staticmethod
    def fmt_pr_rows(rows) -> list[str]:
        """Render DepthRow/LengthRow sequences as a P/R/Rn table."""
        out = [f"  {'label':<12} {'precision':>9} {'recall':>9} {'recall_n':>9}"]
        for row in rows:
            s = row.scores
            out.append(
                f"  {row.label:<12} {s.precision:9.3f} {s.recall:9.3f} "
                f"{s.normalized_recall:9.3f}"
            )
        return out


@pytest.fixture(scope="session")
def report() -> PaperReport:
    return PaperReport()


@pytest.fixture(scope="session")
def study() -> CareWebStudy:
    """The main benchmark-scale study (Figs 6-12, 14, Table 1)."""
    return CareWebStudy.prepare(SimulationConfig.benchmark())


@pytest.fixture(scope="session")
def mining_study() -> CareWebStudy:
    """A smaller hospital for the mining-performance sweeps (Fig 13 and
    the ablations), where five full mining runs must stay affordable."""
    config = SimulationConfig.small(seed=7).scaled(
        n_teams=6,
        patients_per_team=(60, 110),
        nurses_per_team=(3, 5),
        students_per_team=(0, 1),
    )
    return CareWebStudy.prepare(config)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORT_SECTIONS:
        return
    terminalreporter.write_sep("=", "paper reproduction results")
    text = "\n\n".join(_REPORT_SECTIONS)
    terminalreporter.write_line(text)
    with contextlib.suppress(OSError):
        with open(_RESULTS_PATH, "w") as fh:
            fh.write(text + "\n")
        terminalreporter.write_line(f"\n(saved to {_RESULTS_PATH})")
