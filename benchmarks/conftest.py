"""Shared fixtures and reporting for the paper-reproduction benchmarks.

Every benchmark regenerates one table/figure of the paper's evaluation and
appends a formatted block to a session report, printed in the terminal
summary and persisted to ``benchmarks/latest_results.txt`` — so
``pytest benchmarks/ --benchmark-only`` leaves a readable artifact even
with output capturing on.

Each benchmark additionally emits a machine-readable
``benchmarks/BENCH_<name>.json`` (config, timings, speedups, headline
numbers) via :meth:`PaperReport.json`, so the performance trajectory can
be tracked across PRs by diffing/collecting the JSON artifacts.  Both
artifact kinds are gitignored.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.ehr import SimulationConfig
from repro.evalx import CareWebStudy

_BENCH_DIR = os.path.dirname(__file__)
_RESULTS_PATH = os.path.join(_BENCH_DIR, "latest_results.txt")
_REPORT_SECTIONS: list[str] = []


class PaperReport:
    """Collects formatted result blocks for the terminal summary."""

    def section(self, title: str, lines) -> None:
        block = [f"== {title} =="]
        block.extend(str(line) for line in lines)
        _REPORT_SECTIONS.append("\n".join(block))

    def json(self, name: str, payload: dict) -> str:
        """Write ``BENCH_<name>.json`` (machine-readable result record).

        ``payload`` should carry the benchmark's config, timings, and
        headline numbers; non-JSON values (datetimes, dataclasses) are
        stringified.  Returns the path written.
        """
        path = os.path.join(_BENCH_DIR, f"BENCH_{name}.json")
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
        return path

    @staticmethod
    def fmt_bars(values: dict, width: int = 40) -> list[str]:
        """Render a {label: fraction} dict as ASCII bars (paper bar charts)."""
        out = []
        for label, value in values.items():
            bar = "#" * max(0, int(round(value * width)))
            out.append(f"  {label:<16} {value:6.3f}  |{bar}")
        return out

    @staticmethod
    def fmt_pr_rows(rows) -> list[str]:
        """Render DepthRow/LengthRow sequences as a P/R/Rn table."""
        out = [f"  {'label':<12} {'precision':>9} {'recall':>9} {'recall_n':>9}"]
        for row in rows:
            s = row.scores
            out.append(
                f"  {row.label:<12} {s.precision:9.3f} {s.recall:9.3f} "
                f"{s.normalized_recall:9.3f}"
            )
        return out


@pytest.fixture(scope="session")
def report() -> PaperReport:
    return PaperReport()


@pytest.fixture(scope="session")
def study() -> CareWebStudy:
    """The main benchmark-scale study (Figs 6-12, 14, Table 1)."""
    return CareWebStudy.prepare(SimulationConfig.benchmark())


@pytest.fixture(scope="session")
def mining_study() -> CareWebStudy:
    """A smaller hospital for the mining-performance sweeps (Fig 13 and
    the ablations), where five full mining runs must stay affordable."""
    config = SimulationConfig.small(seed=7).scaled(
        n_teams=6,
        patients_per_team=(60, 110),
        nurses_per_team=(3, 5),
        students_per_team=(0, 1),
    )
    return CareWebStudy.prepare(config)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORT_SECTIONS:
        return
    terminalreporter.write_sep("=", "paper reproduction results")
    text = "\n\n".join(_REPORT_SECTIONS)
    terminalreporter.write_line(text)
    try:
        with open(_RESULTS_PATH, "w") as fh:
            fh.write(text + "\n")
        terminalreporter.write_line(f"\n(saved to {_RESULTS_PATH})")
    except OSError:
        pass
