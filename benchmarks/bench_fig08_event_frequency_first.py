"""Figure 8: frequency of events for FIRST accesses.

Paper: ~75% of first accesses belong to patients with some event in the
(incomplete) extract — the headroom available to any explanation method;
the remaining ~25% lack data entirely.
"""

import pytest

from benchlib import is_smoke

# Paper-scale reproduction: the full benchmark hospital is the point, so
# under REPRO_BENCH_SMOKE=1 (the CI smoke runs) this module skips itself.
pytestmark = pytest.mark.skipif(
    is_smoke(), reason="paper-scale reproduction; skipped in smoke mode"
)

from repro.evalx import event_frequency

PAPER = {"Appt": 0.62, "Visit": 0.04, "Document": 0.57, "All": 0.75}


def bench_fig08_event_frequency_first(benchmark, study, report):
    freqs = benchmark.pedantic(
        lambda: event_frequency(
            study.db, lids=study.first_lids(), include_repeat=False
        ),
        rounds=1,
        iterations=1,
    )
    lines = report.fmt_bars(freqs)
    lines.append(f"  paper (approx): {PAPER}")
    report.section("Figure 8 — event frequency, first accesses", lines)
    report.json(
        "fig08_event_frequency_first",
        {"config": {"selection": "first accesses"}, "measured": freqs, "paper": PAPER},
    )

    all_freqs = event_frequency(study.db, include_repeat=False)
    assert 0.6 < freqs["All"] < 0.92, "a sizable extract gap must remain"
    assert freqs["All"] <= all_freqs["All"], "firsts are harder than all"
