"""The SQLite pushdown backend vs the in-memory engine on explain_all.

The SQLite backend exists to lift the memory backend's RAM cap, not to
beat it: every explanation template compiles to one parameterized SQL
statement and SQLite evaluates it with its own planner, against the same
differential guarantees (the whole-log partition must be identical — the
measured runs verify it, so the ratio cannot be bought with wrong
answers).

Two gated metrics:

* ``sqlite_explain_accesses_per_second`` — absolute whole-log audit
  throughput through the SQL path (machine-dependent; the committed
  baseline gates regressions on comparable hardware);
* ``sqlite_vs_memory_ratio`` — SQLite's throughput as a fraction of the
  in-memory engine's on the same data (portable across machines; a
  compiler/pushdown regression drags it down even when the box is
  faster).  A conservative floor is asserted inline.
"""

from __future__ import annotations

import os
import time

from repro.api import AuditConfig, AuditService, open_sql_database
from repro.ehr import SimulationConfig, simulate

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: SQLite must stay within this factor of the in-memory engine.  The
#: columnar engine's vectorized joins are expected to win; the floor
#: exists to catch pathological compilations (cartesian fallbacks,
#: lost index pushdown), not to demand parity.
MIN_RATIO = 0.02
#: Timed repetitions per backend; the fastest is kept (engine caches are
#: cold every rep — fresh service each time).
REPS = 3


def _db():
    config = (
        SimulationConfig.tiny(seed=7) if _SMOKE else SimulationConfig.small(seed=7)
    )
    return simulate(config).db


def _cold_service(db, backend: str) -> AuditService:
    """eager_warm=False: the measured explain_all does the actual work."""
    return AuditService.open(db, config=AuditConfig(backend=backend, eager_warm=False))


def bench_sqlite_explain(report):
    """Whole-log audit through SQL pushdown: identical partition, gated
    throughput, gated memory-relative ratio."""
    db = _db()

    # Convert once, up front and timed: ingest cost is part of the
    # backend's story (it is the price of lifting the RAM cap), but it
    # is a one-time cost, so it is reported rather than folded into the
    # per-audit throughput.
    started = time.perf_counter()
    sql_db = open_sql_database(db, None)
    ingest_seconds = time.perf_counter() - started
    total_rows = sql_db.total_rows()

    memory_seconds = float("inf")
    memory_partition = None
    for _ in range(REPS):
        service = _cold_service(db, "memory")
        started = time.perf_counter()
        memory_partition = service.explain_all()
        memory_seconds = min(memory_seconds, time.perf_counter() - started)
        service.close()

    sqlite_seconds = float("inf")
    sqlite_partition = None
    for _ in range(REPS):
        service = _cold_service(sql_db, "sqlite")
        started = time.perf_counter()
        sqlite_partition = service.explain_all()
        sqlite_seconds = min(sqlite_seconds, time.perf_counter() - started)
        service.close()
    sql_db.close()

    # identical whole-log partition, or the comparison is meaningless
    assert sqlite_partition.explained == memory_partition.explained
    assert sqlite_partition.unexplained == memory_partition.unexplained

    accesses = len(memory_partition.explained) + len(memory_partition.unexplained)
    sqlite_rate = accesses / sqlite_seconds if sqlite_seconds else 0.0
    ratio = memory_seconds / sqlite_seconds if sqlite_seconds else 1.0

    report.section(
        "SQLite pushdown vs in-memory engine (explain_all)",
        [
            f"  dataset                 {'smoke' if _SMOKE else 'full'} "
            f"({accesses} accesses, {total_rows} rows total)",
            f"  one-time SQL ingest     {ingest_seconds:8.3f} s",
            f"  memory explain_all      {memory_seconds:8.3f} s",
            f"  sqlite explain_all      {sqlite_seconds:8.3f} s "
            f"({sqlite_rate:.0f} accesses/s)",
            f"  ratio (memory/sqlite)   {ratio:8.3f}  (floor {MIN_RATIO})",
        ],
    )
    report.json(
        "sqlite_explain",
        {
            "config": {
                "smoke": _SMOKE,
                "accesses": accesses,
                "total_rows": total_rows,
                "reps": REPS,
                "min_ratio": MIN_RATIO,
            },
            "timings": {
                "ingest_seconds": ingest_seconds,
                "memory_seconds": memory_seconds,
                "sqlite_seconds": sqlite_seconds,
            },
        },
        throughput={
            "sqlite_explain_accesses_per_second": sqlite_rate,
            "sqlite_vs_memory_ratio": ratio,
        },
    )

    assert ratio >= MIN_RATIO, (
        f"SQLite ran at {ratio:.3f}x the in-memory engine "
        f"(floor {MIN_RATIO}) — a pathological compilation?"
    )
