"""repro-lint over the repository's own tree: rule cost and cache win.

The nine rules (including the flow-sensitive RL006-RL009, which build a
project call graph and run dataflow fixpoints) must stay cheap enough to
run on every commit, and the incremental result cache must actually pay:
a warm run answers from content hashes without parsing a single file.

Two gated metrics:

* ``lint_files_per_second`` — cold full-tree throughput, all rules
  (machine-dependent; gated against the committed baseline on
  comparable hardware);
* ``lint_cache_warm_speedup`` — cold time over warm-cache time on the
  same tree (same-run ratio, portable across machines; a cache-keying
  regression that forces re-analysis drags it toward 1).  A
  conservative floor is asserted inline.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from repro.analysis import run_lint

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Timed repetitions; the fastest is kept.
REPS = 1 if _SMOKE else 3
#: A warm hit skips parsing and every rule — anything under this factor
#: means the cache is being missed or the key is thrashing.
MIN_WARM_SPEEDUP = 2.0


def bench_lint_tree(report):
    """Cold full-tree lint vs warm cache hit, identical verdicts."""
    cold_seconds = float("inf")
    cold = None
    for _ in range(REPS):
        started = time.perf_counter()
        cold = run_lint(ROOT)
        cold_seconds = min(cold_seconds, time.perf_counter() - started)
    # the acceptance bar rides along: the real tree lints clean
    assert cold.diagnostics == ()

    cache_dir = tempfile.mkdtemp(prefix="repro-lint-bench-")
    warm = None
    try:
        run_lint(ROOT, cache_dir=cache_dir)  # populate
        warm_seconds = float("inf")
        for _ in range(REPS):
            started = time.perf_counter()
            warm = run_lint(ROOT, cache_dir=cache_dir)
            warm_seconds = min(warm_seconds, time.perf_counter() - started)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    # identical verdict cold vs cached, or the speedup is meaningless
    assert warm == cold

    files = cold.files_scanned
    rate = files / cold_seconds if cold_seconds else 0.0
    speedup = cold_seconds / warm_seconds if warm_seconds else 1.0

    report.section(
        "repro-lint full tree: cold rules vs warm result cache",
        [
            f"  files scanned           {files:8d}  "
            f"(rules: {', '.join(cold.rules)})",
            f"  cold lint               {cold_seconds:8.3f} s "
            f"({rate:.0f} files/s)",
            f"  warm cache hit          {warm_seconds:8.3f} s",
            f"  speedup (cold/warm)     {speedup:8.1f}x  "
            f"(floor {MIN_WARM_SPEEDUP}x)",
        ],
    )
    report.json(
        "lint_tree",
        {
            "config": {
                "smoke": _SMOKE,
                "files": files,
                "rules": list(cold.rules),
                "reps": REPS,
                "min_warm_speedup": MIN_WARM_SPEEDUP,
            },
            "timings": {
                "cold_seconds": cold_seconds,
                "warm_seconds": warm_seconds,
            },
        },
        throughput={
            "lint_files_per_second": rate,
            "lint_cache_warm_speedup": speedup,
        },
    )

    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm cache hit ran at only {speedup:.1f}x the cold lint "
        f"(floor {MIN_WARM_SPEEDUP}x) — is the cache being missed?"
    )
