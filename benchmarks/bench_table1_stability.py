"""Table 1: stability of mined explanation templates across time periods.

Paper: mining days 1-6, day 1, day 3 and day 7 separately yields similar,
small template counts per length (11-12 at length 2, ~241 at length 3,
~25 at length 4), with a sizable common core across every period —
evidence that templates capture *generic* reasons for access.
"""

import pytest

from benchlib import is_smoke

# Paper-scale reproduction: the full benchmark hospital is the point, so
# under REPRO_BENCH_SMOKE=1 (the CI smoke runs) this module skips itself.
pytestmark = pytest.mark.skipif(
    is_smoke(), reason="paper-scale reproduction; skipped in smoke mode"
)

from repro.core import MiningConfig
from repro.evalx import template_stability

CONFIG = MiningConfig(support_fraction=0.01, max_length=4, max_tables=3)

PAPER = {
    2: {"Days 1-6": 11, "Day 1": 11, "Day 3": 11, "Day 7": 12, "common": 11},
    3: {"Days 1-6": 241, "Day 1": 257, "Day 3": 231, "Day 7": 268, "common": 217},
    4: {"Days 1-6": 25, "Day 1": 25, "Day 3": 25, "Day 7": 27, "common": 25},
}


def bench_table1_stability(benchmark, study, report):
    stability = benchmark.pedantic(
        lambda: template_stability(study, config=CONFIG), rounds=1, iterations=1
    )
    header = (
        f"  {'Length':<8}"
        + "".join(f"{p:>10}" for p in stability.periods)
        + f"{'Common':>10}"
    )
    lines = [header]
    for length in stability.lengths():
        cells = "".join(
            f"{stability.counts.get((p, length), 0):10d}"
            for p in stability.periods
        )
        lines.append(
            f"  {length:<8}{cells}{stability.common.get(length, 0):10d}"
        )
    lines.append(f"  paper: {PAPER}")
    report.section("Table 1 — number of explanation templates mined", lines)
    report.json(
        "table1_stability",
        {
            "config": {
                "support_fraction": CONFIG.support_fraction,
                "max_length": CONFIG.max_length,
                "max_tables": CONFIG.max_tables,
            },
            "counts": {
                f"{period}/len{length}": count
                for (period, length), count in stability.counts.items()
            },
            "common": {f"len{k}": v for k, v in stability.common.items()},
            "paper": {f"len{k}": v for k, v in PAPER.items()},
        },
    )

    lengths = stability.lengths()
    assert 2 in lengths and 3 in lengths and 4 in lengths
    for length in (2, 3, 4):
        counts = [
            stability.counts.get((p, length), 0) for p in stability.periods
        ]
        # a consistent common core exists in every period (paper: "a set of
        # common explanation templates occurs in every time period")
        assert stability.common.get(length, 0) > 0
        assert stability.common[length] <= min(c for c in counts if c > 0)
    # length-3 templates are by far the most numerous and most variable
    len3 = [stability.counts.get((p, 3), 0) for p in stability.periods]
    len2 = [stability.counts.get((p, 2), 0) for p in stability.periods]
    len4 = [stability.counts.get((p, 4), 0) for p in stability.periods]
    assert min(len3) > max(len2) and min(len3) > max(len4)
    # length-2 counts are nearly identical across periods
    assert max(len2) - min(len2) <= 3
