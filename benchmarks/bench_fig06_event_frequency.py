"""Figure 6: frequency of events in the database for ALL accesses.

Paper: most patients whose records are accessed have an appointment,
visit, or document in the database; repeat accesses form a majority; the
union covers ~97% of all accesses.
"""

import pytest

from benchlib import is_smoke

# Paper-scale reproduction: the full benchmark hospital is the point, so
# under REPRO_BENCH_SMOKE=1 (the CI smoke runs) this module skips itself.
pytestmark = pytest.mark.skipif(
    is_smoke(), reason="paper-scale reproduction; skipped in smoke mode"
)

from repro.evalx import event_frequency

#: Paper's reported bars (approximate, read from Figure 6).
PAPER = {"Appt": 0.90, "Visit": 0.15, "Document": 0.80, "Repeat Access": 0.75, "All": 0.97}


def bench_fig06_event_frequency(benchmark, study, report):
    freqs = benchmark.pedantic(
        lambda: event_frequency(study.db), rounds=1, iterations=1
    )
    lines = report.fmt_bars(freqs)
    lines.append(f"  paper (approx): {PAPER}")
    report.section("Figure 6 — event frequency, all accesses", lines)
    report.json(
        "fig06_event_frequency",
        {"config": {"selection": "all accesses"}, "measured": freqs, "paper": PAPER},
    )

    # the qualitative claims the paper makes about this figure
    assert freqs["All"] > 0.85, "nearly all accesses trace to an event"
    assert freqs["Repeat Access"] > 0.5, "repeat accesses form a majority"
    assert freqs["Appt"] > freqs["Visit"], "appointments dominate visits"
    assert freqs["All"] >= max(v for k, v in freqs.items() if k != "All")
