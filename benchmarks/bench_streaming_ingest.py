"""Streaming ingest benchmark: delta maintenance vs invalidate-everything.

Replays a slice of the synthetic hospital's own traffic through
:class:`~repro.audit.streaming.AccessMonitor` on top of a pre-seeded log
and compares the two maintenance strategies:

* **incremental** (the default stack): table indexes/distinct projections
  patched in place per append, engine explained-sets delta-evaluated via
  point queries, per-access explanation answered by index probes;
* **baseline** (the seed behavior): every cache invalidated per append,
  per-access explanation re-joins the full log (``predicate_pushdown``
  off).

The baseline streams a shorter prefix and is extrapolated linearly to the
full stream — conservative in the baseline's favor, since its per-access
cost *grows* with the log while the projection is flat.  The incremental
run also reports per-chunk times to show near-linear total ingest time.

Set ``REPRO_BENCH_SMOKE=1`` for a CI-sized run (same assertions, smaller
workload).
"""

from __future__ import annotations

import os
import time

from repro.audit import all_event_user_templates, repeat_access_template
from repro.core import ExplanationEngine
from repro.ehr import SimulationConfig, build_careweb_graph, simulate

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Rows pre-seeded into the log before streaming starts.
SEED_ROWS = 2_000 if _SMOKE else 20_000
#: Accesses streamed through the incremental monitor.
STREAM_N = 300 if _SMOKE else 5_000
#: Accesses streamed through the baseline monitor (then extrapolated).
BASELINE_N = 25 if _SMOKE else 150
#: Required end-to-end advantage of the incremental path.
MIN_SPEEDUP = 10.0
#: Chunks the incremental stream is split into for the linearity report.
CHUNKS = 5


def _prepared(config):
    """(engine-ready db, seed-truncated log, held-out stream) for one run.

    The simulation's log is chronological, so truncating to the first
    ``SEED_ROWS`` rows and replaying the next ``STREAM_N`` as the live
    stream reproduces a monitor catching up with real traffic.
    """
    sim = simulate(config)
    log = sim.db.table("Log")
    all_rows = list(log.rows())
    assert len(all_rows) >= SEED_ROWS + STREAM_N, (
        f"simulation too small: {len(all_rows)} log rows < "
        f"{SEED_ROWS + STREAM_N}"
    )
    date_i = log.schema.column_index("Date")
    user_i = log.schema.column_index("User")
    patient_i = log.schema.column_index("Patient")
    log.clear()
    log.insert_many(all_rows[:SEED_ROWS])
    stream = [
        (r[user_i], r[patient_i], r[date_i])
        for r in all_rows[SEED_ROWS : SEED_ROWS + STREAM_N]
    ]
    graph = build_careweb_graph(sim.db)
    templates = all_event_user_templates(graph)
    templates.append(repeat_access_template(graph))
    return sim.db, templates, stream


def _config():
    if _SMOKE:
        return SimulationConfig.small(seed=7).scaled(daily_encounter_rate=0.12)
    return SimulationConfig.benchmark()


def bench_streaming_ingest_speedup(report):
    """Incremental delta maintenance must beat the baseline >= 10x."""
    # --- incremental path: stream the full window ---------------------
    db, templates, stream = _prepared(_config())
    engine = ExplanationEngine(db, templates)
    from repro.audit import AccessMonitor

    monitor = AccessMonitor(engine)
    chunk = max(1, len(stream) // CHUNKS)
    chunk_times: list[float] = []
    prefix_flags: list[bool] = []
    started = time.perf_counter()
    for i in range(0, len(stream), chunk):
        t0 = time.perf_counter()
        for j, (user, patient, date) in enumerate(stream[i : i + chunk], i):
            access = monitor.ingest(user, patient, date)
            if j < BASELINE_N:
                prefix_flags.append(access.suspicious)
        chunk_times.append(time.perf_counter() - t0)
    incremental_total = time.perf_counter() - started
    incremental_stats = monitor.stats()

    # --- baseline: identical world, seed-era maintenance --------------
    db_b, templates_b, stream_b = _prepared(_config())
    engine_b = ExplanationEngine(db_b, templates_b)
    engine_b.executor.predicate_pushdown = False
    monitor_b = AccessMonitor(engine_b, incremental=False)
    baseline_flags: list[bool] = []
    started = time.perf_counter()
    for user, patient, date in stream_b[:BASELINE_N]:
        baseline_flags.append(monitor_b.ingest(user, patient, date).suspicious)
    baseline_measured = time.perf_counter() - started
    baseline_projected = baseline_measured * (len(stream) / BASELINE_N)

    speedup = baseline_projected / incremental_total
    per_access_ms = incremental_total / len(stream) * 1e3
    lines = [
        f"  seed log rows             {SEED_ROWS}",
        f"  streamed accesses         {len(stream)}",
        f"  templates                 {len(engine.templates)}",
        f"  incremental total         {incremental_total:8.2f} s "
        f"({per_access_ms:.2f} ms/access, {incremental_stats['total_queries']}"
        f" queries, {monitor.alerts} alerts)",
        f"  baseline measured         {baseline_measured:8.2f} s "
        f"for {BASELINE_N} accesses",
        f"  baseline projected        {baseline_projected:8.2f} s "
        f"for {len(stream)} accesses",
        f"  speedup                   {speedup:8.1f}x (floor {MIN_SPEEDUP}x)",
        "  per-chunk seconds (near-linear => roughly flat):",
    ]
    for i, t in enumerate(chunk_times):
        lines.append(f"    chunk {i}: {t:6.2f} s")
    report.section("Streaming ingest — delta maintenance vs invalidate-all", lines)
    report.json(
        "streaming_ingest",
        {
            "config": {
                "smoke": _SMOKE,
                "seed_rows": SEED_ROWS,
                "streamed": len(stream),
                "baseline_measured_n": BASELINE_N,
                "templates": len(engine.templates),
            },
            "timings": {
                "incremental_seconds": incremental_total,
                "baseline_measured_seconds": baseline_measured,
                "baseline_projected_seconds": baseline_projected,
                "chunk_seconds": chunk_times,
            },
            "queries": incremental_stats["total_queries"],
            "alerts": monitor.alerts,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
        },
        throughput={
            "incremental_vs_baseline_speedup": speedup,
            "accesses_per_second": len(stream) / incremental_total,
        },
    )

    # alert parity: both strategies must agree access-by-access
    assert prefix_flags == baseline_flags
    assert speedup >= MIN_SPEEDUP, (
        f"incremental path only {speedup:.1f}x faster (need {MIN_SPEEDUP}x)"
    )
    # near-linear: later chunks must not blow up over the first
    assert chunk_times[-1] <= 5 * max(chunk_times[0], 1e-3)


def bench_streaming_batch_ingest(report):
    """Batched ingest_many: one maintenance pass, same alert counters."""
    db, templates, stream = _prepared(_config())
    engine = ExplanationEngine(db, templates)
    from repro.audit import AccessMonitor

    monitor = AccessMonitor(engine)
    started = time.perf_counter()
    out = monitor.ingest_many(stream)
    elapsed = time.perf_counter() - started
    queries = monitor.stats()["total_queries"]
    report.section(
        "Streaming ingest — batched ingest_many",
        [
            f"  batch size                {len(out)}",
            f"  total time                {elapsed:8.2f} s "
            f"({elapsed / len(out) * 1e3:.2f} ms/access)",
            f"  queries                   {queries} "
            f"(~{queries / len(out):.1f} per access)",
            f"  alerts                    {monitor.alerts}",
        ],
    )
    report.json(
        "streaming_batch_ingest",
        {
            "config": {"smoke": _SMOKE, "batch_size": len(out)},
            "timings": {"total_seconds": elapsed},
            "queries": queries,
            "alerts": monitor.alerts,
        },
        throughput={"accesses_per_second": len(out) / elapsed},
    )
    assert len(out) == len(stream)
    assert monitor.seen == len(stream)
