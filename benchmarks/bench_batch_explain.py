"""Batch semijoin vs per-access point queries for bulk explanation.

The paper's headline workload — explain *every* access in a hospital
log — admits two strategies:

* **per-access loop** (the PR 1 point path): for each log id, pin
  ``L.Lid = ?`` into each template's support query until one explains it
  — O(accesses × templates) point queries;
* **batch semijoin** (:meth:`repro.core.engine.ExplanationEngine.
  explain_batch`): evaluate each template ONCE with its log variable
  restricted to the whole batch (``L.Lid IN batch``) and partition
  explained/unexplained in one pass — O(templates) queries total.

Both must produce identical explained/unexplained sets (asserted on the
measured per-access prefix); the batch path must win by >= 5x at 20k
accesses.  The per-access loop runs a prefix and is extrapolated
linearly — conservative in its favor, since point-query cost is flat
while the extrapolation charges it nothing for cache pressure.

Set ``REPRO_BENCH_SMOKE=1`` for a CI-sized run (same assertions, smaller
workload).
"""

from __future__ import annotations

import os
import time

from repro.audit import all_event_user_templates, repeat_access_template
from repro.core import ExplanationEngine
from repro.db import AttrRef, Condition, ConjunctiveQuery, Executor, Literal
from repro.ehr import SimulationConfig, build_careweb_graph, simulate

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Accesses explained by the batch path.
N_ACCESSES = 2_000 if _SMOKE else 20_000
#: Accesses the per-access loop actually runs (then extrapolated).
POINT_N = 300 if _SMOKE else 1_500
#: Required advantage of the batch semijoin path.
MIN_SPEEDUP = 5.0
#: Required advantage of the vectorized pipeline over the per-row one.
MIN_VECTOR_SPEEDUP = 1.3


def _world():
    """(db, templates, batch of log ids) for one run."""
    if _SMOKE:
        config = SimulationConfig.small(seed=7).scaled(daily_encounter_rate=0.12)
    else:
        config = SimulationConfig.benchmark()
    sim = simulate(config)
    graph = build_careweb_graph(sim.db)
    templates = all_event_user_templates(graph)
    templates.append(repeat_access_template(graph))
    lids = sorted(sim.db.table("Log").distinct_values("Lid"))
    assert len(lids) >= N_ACCESSES, (
        f"simulation too small: {len(lids)} log rows < {N_ACCESSES}"
    )
    return sim.db, templates, lids[:N_ACCESSES]


def _pin(query: ConjunctiveQuery, lid) -> ConjunctiveQuery:
    """The per-access point query: the template restricted to one log id."""
    pin = Condition(AttrRef("L", "Lid"), "=", Literal(lid))
    return ConjunctiveQuery.build(
        query.tuple_vars, query.conditions + (pin,), query.projection, query.distinct
    )


def bench_batch_explain_speedup(report):
    """explain_batch must beat the per-access point loop >= 5x at 20k."""
    db, templates, lids = _world()

    # --- batch semijoin path (cold engine) -----------------------------
    engine_batch = ExplanationEngine(db, templates)
    started = time.perf_counter()
    batch = engine_batch.explain_batch(lids)
    batch_seconds = time.perf_counter() - started
    batch_queries = engine_batch.executor.queries_executed

    # --- per-access point loop (cold engine, measured prefix) ----------
    engine_point = ExplanationEngine(db, templates)
    support_queries = [t.support_query() for t in engine_point.templates]
    target = AttrRef("L", "Lid")
    point_explained: set = set()
    prefix = lids[:POINT_N]
    started = time.perf_counter()
    for lid in prefix:
        for query in support_queries:
            if engine_point.executor.distinct_values(_pin(query, lid), target):
                point_explained.add(lid)
                break
    point_measured = time.perf_counter() - started
    point_queries = engine_point.executor.queries_executed
    point_projected = point_measured * (len(lids) / len(prefix))

    # --- per-row pipeline on the same batch (vectorization ablation) ---
    # The vectorized leg above ran first on cold caches; the per-row leg
    # inherits every warmed table cache, so the measured advantage is a
    # conservative floor for the vectorized hot path.
    engine_rowwise = ExplanationEngine(
        db, templates, executor=Executor(db, vectorized=False)
    )
    started = time.perf_counter()
    rowwise = engine_rowwise.explain_batch(lids)
    rowwise_seconds = time.perf_counter() - started

    speedup = point_projected / batch_seconds
    vector_speedup = rowwise_seconds / batch_seconds
    report.section(
        "Batch explanation — semijoin vs per-access point loop",
        [
            f"  accesses                  {len(lids)}",
            f"  templates                 {len(engine_batch.templates)}",
            f"  batch semijoin            {batch_seconds:8.2f} s "
            f"({batch_queries} queries, {len(batch.explained)} explained, "
            f"{len(batch.unexplained)} unexplained)",
            f"  per-access measured       {point_measured:8.2f} s "
            f"for {len(prefix)} accesses ({point_queries} queries)",
            f"  per-access projected      {point_projected:8.2f} s "
            f"for {len(lids)} accesses",
            f"  speedup                   {speedup:8.1f}x (floor {MIN_SPEEDUP}x)",
            f"  per-row pipeline          {rowwise_seconds:8.2f} s "
            f"(vectorized {vector_speedup:.2f}x faster, "
            f"floor {MIN_VECTOR_SPEEDUP}x)",
        ],
    )
    report.json(
        "batch_explain",
        {
            "config": {
                "smoke": _SMOKE,
                "accesses": len(lids),
                "point_prefix": len(prefix),
                "templates": len(engine_batch.templates),
            },
            "timings": {
                "batch_seconds": batch_seconds,
                "point_measured_seconds": point_measured,
                "point_projected_seconds": point_projected,
                "rowwise_seconds": rowwise_seconds,
            },
            "queries": {"batch": batch_queries, "point_prefix": point_queries},
            "explained": len(batch.explained),
            "unexplained": len(batch.unexplained),
            "coverage": batch.coverage,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
            "vectorized_speedup": vector_speedup,
            "min_vectorized_speedup": MIN_VECTOR_SPEEDUP,
        },
        throughput={
            "batch_vs_point_speedup": speedup,
            "vectorized_vs_rowwise_speedup": vector_speedup,
            "explained_per_second": len(lids) / batch_seconds,
        },
    )

    # differential: identical explained sets on the measured prefix
    assert point_explained == batch.explained & set(prefix)
    # differential: the per-row pipeline partitions the batch identically
    assert rowwise.explained == batch.explained
    assert rowwise.unexplained == batch.unexplained
    # partition sanity: explained/unexplained tile the batch exactly
    assert batch.explained | batch.unexplained == set(lids)
    assert not batch.explained & batch.unexplained
    assert speedup >= MIN_SPEEDUP, (
        f"batch path only {speedup:.1f}x faster (need {MIN_SPEEDUP}x)"
    )
    assert vector_speedup >= MIN_VECTOR_SPEEDUP, (
        f"vectorized pipeline only {vector_speedup:.2f}x faster than the "
        f"per-row pipeline (need {MIN_VECTOR_SPEEDUP}x)"
    )
