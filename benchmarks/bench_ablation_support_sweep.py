"""Ablation: support-threshold sweep.

Paper Section 5.3.3 picked s = 1% because "a support threshold of 1% was
sufficient to produce all of the explanation templates that we
constructed by hand except one" (the rare visit template).  This sweep
shows the monotone template-count / run-time trade-off around that
operating point and that the hand-set coverage degrades as s rises.
"""

import pytest

from benchlib import is_smoke

# Paper-scale reproduction: the full benchmark hospital is the point, so
# under REPRO_BENCH_SMOKE=1 (the CI smoke runs) this module skips itself.
pytestmark = pytest.mark.skipif(
    is_smoke(), reason="paper-scale reproduction; skipped in smoke mode"
)

from repro.audit.handcrafted import (
    all_event_user_templates,
    group_templates,
)
from repro.core import MiningConfig, OneWayMiner

SWEEP = (0.005, 0.01, 0.02, 0.05, 0.10)


def bench_ablation_support_sweep(benchmark, mining_study, report):
    db = mining_study.mining_db()
    graph = mining_study.mining_graph()
    hand = [t.signature() for t in all_event_user_templates(graph)]
    hand += [t.signature() for t in group_templates(graph, depth=None)]

    def run_all():
        out = {}
        for s in SWEEP:
            config = MiningConfig(
                support_fraction=s, max_length=4, max_tables=3
            )
            out[s] = OneWayMiner(db, graph, config).mine()
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        f"  {'s':>6} {'templates':>10} {'queries':>8} {'time(s)':>8} "
        f"{'hand-set found':>15}"
    ]
    for s, result in results.items():
        sigs = result.signatures()
        found = sum(1 for h in hand if h in sigs)
        lines.append(
            f"  {s:6.3f} {len(result.templates):10d} "
            f"{result.support_stats['queries_run']:8d} "
            f"{result.support_stats['query_time']:8.2f} "
            f"{found:>7d}/{len(hand)}"
        )
    lines.append(
        "  paper: s=1% recovers every hand-crafted template but one "
        "rare visit template"
    )
    report.section("Ablation — support threshold sweep (one-way)", lines)
    report.json(
        "ablation_support_sweep",
        {
            "config": {"sweep": list(SWEEP), "max_length": 4, "max_tables": 3},
            "points": {
                str(s): {
                    "templates": len(result.templates),
                    "support_stats": result.support_stats,
                    "hand_set_found": sum(
                        1 for h in hand if h in result.signatures()
                    ),
                    "hand_set_total": len(hand),
                }
                for s, result in results.items()
            },
        },
    )

    counts = [len(results[s].templates) for s in SWEEP]
    assert counts == sorted(counts, reverse=True), (
        "raising s must never add templates (anti-monotone support)"
    )
    # supersets: templates at higher s are a subset of lower s
    for lo, hi in zip(SWEEP, SWEEP[1:]):
        assert results[hi].signatures() <= results[lo].signatures()
    # the paper's operating point recovers most of the hand set
    sigs_1pct = results[0.01].signatures()
    found = sum(1 for h in hand if h in sigs_1pct)
    assert found >= len(hand) * 0.7
