"""Shared machine-readable benchmark record schema.

Every ``benchmarks/bench_*.py`` emits its results through one writer
(:func:`make_record` via ``PaperReport.json`` in ``conftest.py``), so
the CI regression gate (``compare_bench.py``) and cross-PR trajectory
comparisons are always apples-to-apples:

* ``schema_version`` — bump when the envelope shape changes; the gate
  refuses to compare across versions;
* ``machine`` — git SHA, CPU count, Python version, platform — enough to
  judge whether two records are comparable;
* ``smoke`` — whether the run used the CI-sized workload
  (``REPRO_BENCH_SMOKE=1``); the gate only compares like with like;
* ``throughput`` — the *gated* metrics, a flat ``{name: value}`` mapping
  where higher is better.  Names ending in ``_speedup`` or ``_ratio``
  are machine-portable (same-machine ratios) and are always gated;
  anything else is an absolute rate and is only gated when the baseline
  was recorded on a machine with the same CPU count;
* ``results`` — the benchmark's own payload, unconstrained.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from typing import Any

#: Bump when the envelope shape changes (the gate refuses cross-version
#: comparisons rather than guessing).
BENCH_SCHEMA_VERSION = 2

_SUFFIXES_PORTABLE = ("_speedup", "_ratio")


def git_sha() -> str:
    """The repo's short HEAD SHA, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def bench_environment() -> dict:
    """The machine-metadata block every record carries."""
    return {
        "git_sha": git_sha(),
        "cpu_count": os.cpu_count() or 1,
        "python_version": platform.python_version(),
        "platform": platform.platform(),
    }


def is_smoke() -> bool:
    """Whether this run uses the CI-sized workload."""
    return os.environ.get("REPRO_BENCH_SMOKE") == "1"


def make_record(
    name: str, payload: dict, throughput: dict[str, float] | None = None
) -> dict:
    """The shared envelope around one benchmark's payload."""
    clean: dict[str, float] = {}
    for key, value in (throughput or {}).items():
        if value is None:
            continue
        clean[str(key)] = float(value)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": name,
        "smoke": is_smoke(),
        "machine": bench_environment(),
        "throughput": clean,
        "results": payload,
    }


def write_record(path: str, record: dict) -> str:
    """Write one record as pretty, key-sorted JSON; returns the path."""
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return path


def load_record(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def is_portable_metric(name: str) -> bool:
    """Machine-portable metrics (same-run ratios) are gated across any
    two machines; absolute rates only across matching CPU counts."""
    return name.endswith(_SUFFIXES_PORTABLE)


def record_summary(record: dict) -> str:
    machine = record.get("machine", {})
    return (
        f"{record.get('name', '?')} "
        f"[schema v{record.get('schema_version', '?')}, "
        f"{'smoke' if record.get('smoke') else 'full'}, "
        f"{machine.get('cpu_count', '?')} cpus, "
        f"py {machine.get('python_version', '?')}, "
        f"sha {machine.get('git_sha', '?')}]"
    )


def throughput_of(record: dict) -> dict[str, float]:
    out: dict[str, Any] = record.get("throughput") or {}
    return {k: float(v) for k, v in out.items()}
