"""Substrate micro-benchmarks: support-query latency on the engine.

Not a paper figure — this measures the building block everything else
stands on: the hash-join evaluation of one support query
(``SELECT COUNT(DISTINCT L.Lid) ...``) at three template shapes, with
proper multi-round timing.  Useful for spotting substrate regressions
and for judging how mining cost extrapolates with log size.
"""


import pytest

from benchlib import is_smoke

from repro.core import SupportEvaluator
from repro.audit.handcrafted import (
    event_group_template,
    event_user_template,
    repeat_access_template,
)
from repro.db import AttrRef, Executor
from repro.ehr import SimulationConfig, build_careweb_graph
from repro.evalx import CareWebStudy


@pytest.fixture(scope="module")
def study() -> CareWebStudy:
    """Overrides the session study: under REPRO_BENCH_SMOKE=1 (the CI
    smoke runs) the support queries exercise a test-sized hospital, so
    the step checks the substrate end to end without paying for the
    benchmark-scale build."""
    config = SimulationConfig.small() if is_smoke() else SimulationConfig.benchmark()
    return CareWebStudy.prepare(config)


def _mean_seconds(benchmark):
    """Mean timing from pytest-benchmark, or None under --benchmark-disable."""
    try:
        return benchmark.stats.stats.mean
    except (AttributeError, TypeError):
        return None


def _qps(benchmark, name="queries_per_second"):
    """Gated throughput mapping, empty under --benchmark-disable."""
    mean = _mean_seconds(benchmark)
    return {name: 1.0 / mean} if mean else {}


def bench_support_query_len2(benchmark, study, report):
    """Length-2 appointment template over the full log."""
    graph = build_careweb_graph(study.db)
    template = event_user_template(graph, "Appointments", "Doctor")
    executor = Executor(study.db)
    query = template.support_query()

    result = benchmark(lambda: executor.count_distinct(query))
    report.section(
        "Substrate — length-2 support query",
        [
            f"  log={len(study.db.table('Log'))} rows, "
            f"appointments={len(study.db.table('Appointments'))} rows",
            f"  explained lids: {result}",
        ],
    )
    report.json(
        "substrate_len2",
        {
            "config": {"log_rows": len(study.db.table("Log"))},
            "explained": result,
            "mean_seconds": _mean_seconds(benchmark),
        },
        throughput=_qps(benchmark),
    )
    assert result > 0


def bench_support_query_len4_groups(benchmark, study, report):
    """Length-4 group template (two-way self-join) over the full log."""
    graph = build_careweb_graph(study.db)
    template = event_group_template(graph, "Appointments", "Doctor", depth=1)
    executor = Executor(study.db)
    query = template.support_query()

    result = benchmark(lambda: executor.count_distinct(query))
    report.section(
        "Substrate — length-4 group support query",
        [
            f"  groups table: {len(study.db.table('Groups'))} rows",
            f"  explained lids: {result}",
        ],
    )
    report.json(
        "substrate_len4_groups",
        {
            "config": {"groups_rows": len(study.db.table("Groups"))},
            "explained": result,
            "mean_seconds": _mean_seconds(benchmark),
        },
        throughput=_qps(benchmark),
    )
    assert result > 0


def bench_support_query_repeat_self_join(benchmark, study, report):
    """Decorated log self-join (the heaviest hand-crafted template)."""
    graph = build_careweb_graph(study.db)
    template = repeat_access_template(graph)
    executor = Executor(study.db)
    query = template.support_query()

    result = benchmark(lambda: executor.count_distinct(query))
    report.section(
        "Substrate — repeat-access (log self-join) support query",
        [f"  explained lids: {result}"],
    )
    report.json(
        "substrate_repeat_self_join",
        {
            "config": {"log_rows": len(study.db.table("Log"))},
            "explained": result,
            "mean_seconds": _mean_seconds(benchmark),
        },
        throughput=_qps(benchmark),
    )
    assert result > 0


def bench_support_cache_hit(benchmark, study, report):
    """A cache hit must be orders of magnitude cheaper than evaluation."""
    graph = build_careweb_graph(study.db)
    template = event_user_template(graph, "Labs", "Performer")
    evaluator = SupportEvaluator(study.db)
    query = template.support_query()
    attr = AttrRef("L", "Lid")
    evaluator.support_of_query(query, attr)  # warm the cache

    benchmark(lambda: evaluator.support_of_query(query, attr))
    assert evaluator.stats.cache_hits > 0
    report.section(
        "Substrate — support-cache hit",
        [f"  cache hits during timing: {evaluator.stats.cache_hits}"],
    )
    report.json(
        "substrate_cache_hit",
        {
            "cache_hits": evaluator.stats.cache_hits,
            "mean_seconds": _mean_seconds(benchmark),
        },
        throughput=_qps(benchmark, name="hits_per_second"),
    )
