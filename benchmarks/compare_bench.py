"""CI benchmark-regression gate.

Diffs fresh ``benchmarks/BENCH_*.json`` records against the committed
``benchmarks/baselines/*.json`` and exits non-zero when any gated
throughput metric regressed by more than the threshold (default 30%).
Wired into ``.github/workflows/ci.yml`` after the benchmark smoke steps;
run it locally the same way::

    REPRO_BENCH_SMOKE=1 PYTHONPATH=src python -m pytest benchmarks/bench_batch_explain.py \
        -o python_files='bench_*.py' -o python_functions='bench_*' -q --benchmark-disable
    python benchmarks/compare_bench.py

Comparison rules (see ``benchlib.py`` for the record schema):

* only files present in BOTH directories are compared — a baseline whose
  benchmark did not run in this job is reported as skipped, never failed;
* ``schema_version`` must match, and smoke-mode records are only
  compared against smoke-mode baselines (different workload sizes are
  not comparable);
* metrics named ``*_speedup``/``*_ratio`` are same-run ratios and are
  gated on any machine — but with doubled slack when the baseline came
  from a machine with a different CPU count (cache sizes and core
  counts shift even single-threaded ratios); absolute rates (everything
  else) are gated only when the CPU counts match, because a 1-core
  laptop baseline says nothing about a 4-core runner's ops/sec;
* improvements and new metrics are reported, never failed.

Refresh the committed baselines after an intentional perf change::

    python benchmarks/compare_bench.py --update
"""

from __future__ import annotations

import argparse
import glob
import os
import shutil
import sys

from benchlib import (
    BENCH_SCHEMA_VERSION,
    is_portable_metric,
    load_record,
    record_summary,
    throughput_of,
)

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
DEFAULT_FRESH = _BENCH_DIR
DEFAULT_BASELINES = os.path.join(_BENCH_DIR, "baselines")
DEFAULT_THRESHOLD = 0.30


def compare_records(
    baseline: dict, fresh: dict, threshold: float
) -> tuple[list[str], list[str]]:
    """``(regressions, notes)`` from one baseline/fresh record pair."""
    regressions: list[str] = []
    notes: list[str] = []
    name = baseline.get("name", "?")
    if baseline.get("schema_version") != fresh.get("schema_version"):
        regressions.append(
            f"{name}: schema_version mismatch "
            f"(baseline v{baseline.get('schema_version')}, "
            f"fresh v{fresh.get('schema_version')}) — refresh baselines "
            f"with --update"
        )
        return regressions, notes
    if bool(baseline.get("smoke")) != bool(fresh.get("smoke")):
        notes.append(
            f"{name}: skipped (smoke-mode mismatch: baseline "
            f"{'smoke' if baseline.get('smoke') else 'full'}, fresh "
            f"{'smoke' if fresh.get('smoke') else 'full'})"
        )
        return regressions, notes
    base_cpus = (baseline.get("machine") or {}).get("cpu_count")
    fresh_cpus = (fresh.get("machine") or {}).get("cpu_count")
    base_metrics = throughput_of(baseline)
    fresh_metrics = throughput_of(fresh)
    for metric, base_value in sorted(base_metrics.items()):
        if base_value <= 0:
            notes.append(f"{name}.{metric}: skipped (non-positive baseline)")
            continue
        if metric not in fresh_metrics:
            notes.append(
                f"{name}.{metric}: skipped (not emitted by this run)"
            )
            continue
        same_machine = base_cpus == fresh_cpus
        if not is_portable_metric(metric) and not same_machine:
            notes.append(
                f"{name}.{metric}: skipped (absolute rate; baseline "
                f"machine had {base_cpus} cpus, this one {fresh_cpus})"
            )
            continue
        # Ratios travel across machines, but not perfectly: give a
        # cross-machine comparison double the slack so a baseline from
        # a different runner class cannot fail healthy code.
        allowed = threshold if same_machine else min(2 * threshold, 0.9)
        fresh_value = fresh_metrics[metric]
        change = (fresh_value - base_value) / base_value
        line = (
            f"{name}.{metric}: {base_value:.4g} -> {fresh_value:.4g} "
            f"({change:+.1%})"
        )
        if change < -allowed:
            regressions.append(
                f"{line}  REGRESSION (allowed -{allowed:.0%})"
            )
        else:
            notes.append(line)
    for metric in sorted(set(fresh_metrics) - set(base_metrics)):
        notes.append(
            f"{name}.{metric}: new metric ({fresh_metrics[metric]:.4g}) — "
            f"not in baseline"
        )
    return regressions, notes


def gated_files(fresh_dir: str) -> list[str]:
    """Fresh records that declare at least one throughput metric (the
    only ones worth a baseline)."""
    out = []
    for path in sorted(glob.glob(os.path.join(fresh_dir, "BENCH_*.json"))):
        try:
            record = load_record(path)
        except (OSError, ValueError):
            continue
        if throughput_of(record):
            out.append(path)
    return out


def update_baselines(fresh_dir: str, baseline_dir: str) -> int:
    """Copy every gated fresh record over the committed baselines."""
    os.makedirs(baseline_dir, exist_ok=True)
    copied = 0
    for path in gated_files(fresh_dir):
        target = os.path.join(baseline_dir, os.path.basename(path))
        shutil.copyfile(path, target)
        print(f"baseline updated: {os.path.relpath(target)}")
        copied += 1
    if not copied:
        print("no fresh records with throughput metrics found; nothing updated")
    return 0


def run_gate(fresh_dir: str, baseline_dir: str, threshold: float) -> int:
    baseline_paths = sorted(
        glob.glob(os.path.join(baseline_dir, "BENCH_*.json"))
    )
    if not baseline_paths:
        print(f"no baselines under {baseline_dir}; nothing to gate")
        return 0
    all_regressions: list[str] = []
    compared = 0
    for baseline_path in baseline_paths:
        baseline = load_record(baseline_path)
        fresh_path = os.path.join(fresh_dir, os.path.basename(baseline_path))
        if not os.path.exists(fresh_path):
            print(
                f"skip {os.path.basename(baseline_path)}: benchmark did "
                f"not run in this job"
            )
            continue
        fresh = load_record(fresh_path)
        print(f"compare {record_summary(fresh)}")
        print(f"   vs   {record_summary(baseline)}")
        regressions, notes = compare_records(baseline, fresh, threshold)
        for note in notes:
            print(f"  ok    {note}")
        for regression in regressions:
            print(f"  FAIL  {regression}")
        all_regressions.extend(regressions)
        compared += 1
    print(
        f"\n{compared} benchmark(s) compared, "
        f"{len(all_regressions)} regression(s) "
        f"(threshold {threshold:.0%}, schema v{BENCH_SCHEMA_VERSION})"
    )
    if all_regressions:
        print(
            "benchmark regression gate FAILED — if the slowdown is "
            "intentional, refresh baselines with: "
            "python benchmarks/compare_bench.py --update"
        )
        return 1
    print("benchmark regression gate passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when fresh BENCH_*.json throughput regresses "
        "vs committed baselines"
    )
    parser.add_argument(
        "--fresh",
        default=DEFAULT_FRESH,
        help="directory holding this run's BENCH_*.json",
    )
    parser.add_argument(
        "--baselines",
        default=DEFAULT_BASELINES,
        help="directory holding the committed baseline records",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="maximum tolerated fractional drop (default 0.30)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="refresh the baselines from this run instead of gating",
    )
    args = parser.parse_args(argv)
    if args.update:
        return update_baselines(args.fresh, args.baselines)
    return run_gate(args.fresh, args.baselines, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
