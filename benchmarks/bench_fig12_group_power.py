"""Figure 12: group predictive power vs. hierarchy depth.

Paper (trained on days 1-6, tested on day-7 first accesses, fake log for
precision): depth 0 (everyone in one group) reaches recall ~0.81 with the
worst precision; depth 1 keeps precision above 0.9 with much better
recall than department codes; deeper levels trade recall for precision;
the Same-Dept. baseline has far lower recall than collaborative groups.
"""

import pytest

from benchlib import is_smoke

# Paper-scale reproduction: the full benchmark hospital is the point, so
# under REPRO_BENCH_SMOKE=1 (the CI smoke runs) this module skips itself.
pytestmark = pytest.mark.skipif(
    is_smoke(), reason="paper-scale reproduction; skipped in smoke mode"
)

from repro.evalx import group_predictive_power

PAPER_NOTES = (
    "paper: depth0 R~0.81 (worst P), depth1 P>0.9, deeper => P up / R down, "
    "Same Dept. R~0.3"
)


def bench_fig12_group_power(benchmark, study, report):
    rows = benchmark.pedantic(
        lambda: group_predictive_power(study), rounds=1, iterations=1
    )
    lines = report.fmt_pr_rows(rows)
    lines.append(f"  {PAPER_NOTES}")
    report.section("Figure 12 — group predictive power by depth", lines)
    report.json(
        "fig12_group_power",
        {
            "config": {"protocol": "train days 1-6, test day-7 firsts, fake log"},
            "rows": {
                row.label: {
                    "precision": row.scores.precision,
                    "recall": row.scores.recall,
                    "normalized_recall": row.scores.normalized_recall,
                }
                for row in rows
            },
        },
    )

    by_label = {row.label: row.scores for row in rows}
    d0, d1 = by_label["0"], by_label["1"]
    same_dept = by_label["Same Dept."]
    # the paper's qualitative claims
    assert d0.recall >= d1.recall, "depth 0 has maximal recall"
    assert d0.precision < d1.precision, "depth 0 has the worst precision"
    assert d1.precision > 0.85, "depth 1 keeps high precision"
    assert same_dept.recall < d1.recall / 2, (
        "groups beat department codes on recall (doctors and nurses of one "
        "team carry different codes)"
    )
    # deeper levels never gain recall (hierarchy refinement)
    depth_rows = [r for r in rows if r.label != "Same Dept."]
    for shallow, deep in zip(depth_rows, depth_rows[1:]):
        assert deep.scores.recall <= shallow.scores.recall + 1e-9
