"""Figures 10-11: department composition of discovered collaborative groups.

Paper: the largest recovered groups are recognizable clinical services —
the Cancer Center group mixes Hem/Onc physicians, oncology nursing,
radiology, pathology, pharmacy and the clinical-trials office; the
psychiatric-care group mixes psychiatry physicians, psych nursing, social
work and rotating medical students.  Department codes do NOT coincide
with groups (that is the whole point of Section 4).

Here the simulator's hidden care teams play the role of the real
services, and the benchmark additionally scores pair-level recovery.
"""

import pytest

from benchlib import is_smoke

# Paper-scale reproduction: the full benchmark hospital is the point, so
# under REPRO_BENCH_SMOKE=1 (the CI smoke runs) this module skips itself.
pytestmark = pytest.mark.skipif(
    is_smoke(), reason="paper-scale reproduction; skipped in smoke mode"
)

from repro.evalx import group_composition


def bench_fig10_11_group_composition(benchmark, study, report):
    profiles = benchmark.pedantic(
        lambda: group_composition(study, depth=1, top_groups=2),
        rounds=1,
        iterations=1,
    )
    lines = []
    for prof in profiles:
        lines.append(f"  group {prof.group_id} ({prof.size} members):")
        for dept, count in prof.top_departments(8):
            lines.append(f"      {count:3d}  {dept}")
    # pair-level agreement with the simulator's hidden care teams
    level1 = study.hierarchy.levels[1]
    team_of = {
        uid: frozenset(study.sim.hospital.users[uid].team_ids)
        for uid in level1
        if uid in study.sim.hospital.users
    }
    users = sorted(team_of)
    same_team = same_group = both = 0
    for i, u in enumerate(users):
        for v in users[i + 1:]:
            st = bool(team_of[u] & team_of[v])
            sg = level1[u] == level1[v]
            same_team += st
            same_group += sg
            both += st and sg
    precision = both / same_group if same_group else 0.0
    recall = both / same_team if same_team else 0.0
    lines.append(
        f"  hidden care-team recovery: pair precision {precision:.2f}, "
        f"pair recall {recall:.2f}"
    )
    report.section(
        "Figures 10-11 — collaborative group composition (depth 1)", lines
    )
    report.json(
        "fig10_11_group_composition",
        {
            "config": {"depth": 1, "top_groups": 2},
            "groups": [
                {
                    "group_id": prof.group_id,
                    "size": prof.size,
                    "departments": dict(prof.departments),
                }
                for prof in profiles
            ],
            "pair_precision": precision,
            "pair_recall": recall,
        },
    )

    # each large group must span multiple department codes (the paper's
    # core observation: groups != departments)
    for prof in profiles:
        assert len(prof.departments) >= 3
    assert precision > 0.6 and recall > 0.5
