"""Tests for decorated-template mining (the paper's §5.3.4 future work)."""

import pytest

from repro.audit import event_group_template
from repro.core import DecorationMiner, group_depth_attr
from repro.db import AttrRef
from repro.ehr import SimulationConfig, build_careweb_graph
from repro.evalx import CareWebStudy


@pytest.fixture(scope="module")
def study():
    return CareWebStudy.prepare(SimulationConfig.small(seed=3))


@pytest.fixture(scope="module")
def miner(study):
    combined, real, fake = study.combined_db()
    return DecorationMiner(
        combined, real, fake, test_lids=study.test_first_lids()
    )


@pytest.fixture(scope="module")
def base_template(study):
    combined, _, _ = study.combined_db()
    graph = build_careweb_graph(combined)
    # the undecorated group template matches every hierarchy depth
    return event_group_template(graph, "Appointments", "Doctor", depth=None)


class TestGroupDepthAttr:
    def test_finds_groups_alias(self, base_template):
        attr = group_depth_attr(base_template)
        assert attr is not None
        assert attr.attr == "Group_Depth"

    def test_none_for_groupless_template(self, study):
        from repro.audit import event_user_template

        graph = build_careweb_graph(study.db)
        t = event_user_template(graph, "Appointments", "Doctor")
        assert group_depth_attr(t) is None


class TestDecorationMiner:
    def test_candidate_values_are_depths(self, miner, base_template):
        values = miner.candidate_values(
            base_template, group_depth_attr(base_template)
        )
        assert values == list(range(len(values)))  # depths 0..max

    def test_one_candidate_per_value(self, miner, base_template):
        result = miner.mine(base_template, group_depth_attr(base_template))
        assert len(result.candidates) == len(
            miner.candidate_values(base_template, group_depth_attr(base_template))
        )

    def test_decorations_shrink_coverage(self, miner, base_template):
        result = miner.mine(base_template, group_depth_attr(base_template))
        for candidate in result.candidates:
            assert candidate.explained_real <= result.base_real
            assert candidate.explained_fake <= result.base_fake

    def test_depth0_candidate_equals_base(self, miner, base_template):
        # depth 0 = everyone in one group = the base template's coverage
        result = miner.mine(base_template, group_depth_attr(base_template))
        by_value = {c.value: c for c in result.candidates}
        assert by_value[0].explained_real == result.base_real

    def test_recommended_improves_precision(self, miner, base_template):
        result = miner.mine(
            base_template, group_depth_attr(base_template), min_recall_ratio=0.5
        )
        assert result.recommended is not None
        assert result.recommended.precision >= result.base_precision

    def test_recommended_respects_recall_floor(self, miner, base_template):
        result = miner.mine(
            base_template, group_depth_attr(base_template), min_recall_ratio=0.9
        )
        if result.recommended is not None:
            assert (
                result.recommended.recall_vs(result.base_real) >= 0.9 - 1e-9
            )

    def test_recommended_is_decorated_template(self, miner, base_template):
        result = miner.mine(
            base_template, group_depth_attr(base_template), min_recall_ratio=0.5
        )
        assert result.recommended.template.is_decorated
        sql = result.recommended.template.to_sql()
        assert "Group_Depth" in sql

    def test_invalid_recall_ratio(self, miner, base_template):
        with pytest.raises(ValueError):
            miner.mine(base_template, group_depth_attr(base_template), 0)

    def test_unknown_alias_rejected(self, miner, base_template):
        with pytest.raises(ValueError):
            miner.mine(base_template, AttrRef("Nope", "x"))

    def test_high_cardinality_attr_rejected(self, miner, base_template, monkeypatch):
        monkeypatch.setattr(DecorationMiner, "MAX_VALUES", 2)
        with pytest.raises(ValueError):
            miner.mine(base_template, AttrRef("Groups_2", "User"))

    def test_refine_all_skips_groupless(self, miner, study, base_template):
        from repro.audit import event_user_template

        graph = build_careweb_graph(study.db)
        plain = event_user_template(graph, "Visits", "Doctor")
        results = miner.refine_all(
            [base_template, plain], group_depth_attr, min_recall_ratio=0.5
        )
        assert len(results) == 1

    def test_deterministic(self, miner, base_template):
        attr = group_depth_attr(base_template)
        a = miner.mine(base_template, attr, min_recall_ratio=0.5)
        b = miner.mine(base_template, attr, min_recall_ratio=0.5)
        assert a.recommended.value == b.recommended.value
        assert [c.precision for c in a.candidates] == [
            c.precision for c in b.candidates
        ]
