"""The wire serialization layer: ``from_dict(to_dict(x)) == x`` for
every message type, versioned envelopes, and the typed error hierarchy.
"""

import datetime as dt
import json

import pytest

from repro.api import (
    WIRE_KINDS,
    WIRE_VERSION,
    AccessView,
    AuditApiError,
    AuditReport,
    ExplainRequest,
    ExplainResult,
    ExplanationView,
    IngestResult,
    InternalServerError,
    InvalidCursorError,
    InvalidRequestError,
    MineRequest,
    MineResult,
    MinedTemplateView,
    NotFoundError,
    PatientReport,
    ScanPage,
    ScanRequest,
    ScanState,
    UnexplainedView,
    UnsupportedOperationError,
    WireFormatError,
    error_from_wire,
    from_wire,
    temporal,
    to_wire,
)

STAMP = dt.datetime(2010, 1, 4, 8, 18, 3)


def _view(**overrides):
    base = dict(
        text="Alice saw Dr. Dave",
        path_length=2,
        template="appt",
        bindings={"L.Lid": 17, "A.Date": STAMP},
    )
    base.update(overrides)
    return ExplanationView(**base)


#: One representative instance per wire-transportable message type —
#: parametrizes the round-trip laws below.  Every WIRE_KINDS entry must
#: appear (enforced by test_every_wire_kind_has_a_sample).
SAMPLES = {
    "ExplainRequest": ExplainRequest(lid=17, limit=3),
    "ExplanationView": _view(),
    "ExplainResult": ExplainResult(lid=17, explanations=(_view(),)),
    "AccessView": AccessView(
        lid=17, date=STAMP, user="u0042", explanations=("ok",)
    ),
    "PatientReport": PatientReport(
        patient="p00017",
        entries=(
            AccessView(lid=17, date=STAMP, user="u0042", explanations=()),
            AccessView(lid=18, date=4, user="u0001", explanations=("x", "y")),
        ),
    ),
    "IngestResult": IngestResult(
        lid=99,
        date=STAMP,
        user="u0042",
        patient="p00017",
        explanations=(_view(bindings={}),),
        alerted=False,
    ),
    "UnexplainedView": UnexplainedView(
        lid=900, date=STAMP, user="Eve", patient="Bob"
    ),
    "AuditReport": AuditReport(
        total=5,
        unexplained_count=1,
        coverage=0.8,
        queue=(UnexplainedView(lid=900, date=4, user="Eve", patient="Bob"),),
        user_risk=(("Eve", 1),),
    ),
    "ScanState": ScanState(after=(STAMP, 17), seen=10, unexplained=3),
    "ScanRequest": ScanRequest(
        state=ScanState(after=(4, 900), seen=2, unexplained=1),
        page_rows=5,
        quantum_seconds=0.25,
    ),
    "ScanPage": ScanPage(
        rows=2,
        explained=(17,),
        unexplained=(
            UnexplainedView(lid=900, date=STAMP, user="Eve", patient="Bob"),
        ),
        state=ScanState(after=(STAMP, 900), seen=2, unexplained=1),
        done=False,
    ),
    "MineRequest": MineRequest(algorithm="two-way", support_fraction=0.2),
    "MinedTemplateView": MinedTemplateView(sql="SELECT 1", support=4, length=2),
    "MineResult": MineResult(
        algorithm="one-way",
        threshold=2.0,
        templates=(MinedTemplateView(sql="SELECT 1", support=4, length=2),),
        support_stats={"queries_run": 7, "skipped": 1, "cache_hits": 2},
        raw=None,
    ),
}


def test_every_wire_kind_has_a_sample():
    assert sorted(SAMPLES) == sorted(WIRE_KINDS)


@pytest.mark.parametrize("kind", sorted(SAMPLES))
def test_from_dict_inverts_to_dict(kind):
    message = SAMPLES[kind]
    rebuilt = type(message).from_dict(message.to_dict())
    assert rebuilt == message


@pytest.mark.parametrize("kind", sorted(SAMPLES))
def test_to_dict_is_json_serializable(kind):
    json.dumps(SAMPLES[kind].to_dict())  # must not raise


@pytest.mark.parametrize("kind", sorted(SAMPLES))
def test_wire_envelope_round_trip(kind):
    message = SAMPLES[kind]
    envelope = to_wire(message)
    assert envelope["v"] == WIRE_VERSION
    assert envelope["kind"] == kind
    # the envelope itself must survive a JSON hop
    rebuilt = from_wire(json.loads(json.dumps(envelope)))
    assert rebuilt == message
    assert type(rebuilt) is type(message)


def test_round_trip_preserves_temporal_types():
    view = UnexplainedView(lid=1, date=STAMP, user="u", patient="p")
    rebuilt = UnexplainedView.from_dict(json.loads(json.dumps(view.to_dict())))
    assert rebuilt.date == STAMP
    assert isinstance(rebuilt.date, dt.datetime)


def test_round_trip_preserves_int_dates():
    """Toy databases use integer dates; they must not become strings."""
    view = UnexplainedView(lid=1, date=7, user="u", patient="p")
    assert UnexplainedView.from_dict(view.to_dict()).date == 7


class TestTemporal:
    def test_datetime_string(self):
        assert temporal("2010-01-04T08:18:03") == STAMP

    def test_date_string(self):
        assert temporal("2010-01-04") == dt.date(2010, 1, 4)

    def test_plain_strings_pass_through(self):
        assert temporal("p00017") == "p00017"
        assert temporal("not-a-date") == "not-a-date"

    def test_non_strings_pass_through(self):
        assert temporal(17) == 17
        assert temporal(None) is None
        assert temporal(STAMP) is STAMP


class TestFromWireValidation:
    def test_rejects_non_dict(self):
        with pytest.raises(WireFormatError, match="must be an object"):
            from_wire([1, 2, 3])

    def test_rejects_wrong_version(self):
        envelope = to_wire(SAMPLES["ExplainResult"])
        envelope["v"] = 999
        with pytest.raises(WireFormatError, match="unsupported wire version"):
            from_wire(envelope)

    def test_rejects_unknown_kind(self):
        with pytest.raises(WireFormatError, match="unknown wire kind"):
            from_wire({"v": WIRE_VERSION, "kind": "Nope", "data": {}})

    def test_rejects_unexpected_kind(self):
        envelope = to_wire(SAMPLES["ExplainResult"])
        with pytest.raises(WireFormatError, match="expected a PatientReport"):
            from_wire(envelope, expected="PatientReport")

    def test_rejects_missing_data(self):
        with pytest.raises(WireFormatError, match="no data object"):
            from_wire({"v": WIRE_VERSION, "kind": "ExplainResult"})

    def test_malformed_data_is_wire_error_not_key_error(self):
        with pytest.raises(WireFormatError, match="malformed AuditReport"):
            from_wire(
                {"v": WIRE_VERSION, "kind": "AuditReport", "data": {"x": 1}}
            )

    def test_to_wire_rejects_foreign_objects(self):
        with pytest.raises(WireFormatError):
            to_wire(object())


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "cls,status",
        [
            (InvalidRequestError, 400),
            (WireFormatError, 400),
            (InvalidCursorError, 400),
            (NotFoundError, 404),
            (UnsupportedOperationError, 501),
            (InternalServerError, 500),
        ],
    )
    def test_codes_and_statuses(self, cls, status):
        error = cls("boom")
        assert error.http_status == status
        assert error.to_dict()["code"] == cls.code
        assert error.to_wire()["v"] == WIRE_VERSION

    def test_wire_round_trip(self):
        original = NotFoundError("no route", details={"path": "/nope"})
        rebuilt = error_from_wire(json.loads(json.dumps(original.to_wire())))
        assert type(rebuilt) is NotFoundError
        assert rebuilt.message == "no route"
        assert rebuilt.details == {"path": "/nope"}

    def test_unsupported_operation_round_trip_keeps_hint(self):
        original = UnsupportedOperationError("no mining", hint="use add_templates")
        rebuilt = error_from_wire(original.to_wire())
        assert isinstance(rebuilt, UnsupportedOperationError)
        assert isinstance(rebuilt, NotImplementedError)
        assert rebuilt.hint == "use add_templates"
        assert "use add_templates" in str(rebuilt)

    def test_unknown_code_degrades_gracefully(self):
        error = error_from_wire(
            {"v": 1, "error": {"code": "from_the_future", "message": "m"}},
            http_status=418,
        )
        assert type(error) is AuditApiError
        assert error.code == "from_the_future"
        assert error.http_status == 418

    def test_unreadable_envelope_degrades_gracefully(self):
        error = error_from_wire("garbage")
        assert isinstance(error, InternalServerError)
