"""Renderer contracts: GitHub workflow-command escaping, the version-1
JSON payload's key set (consumed by CI — additive changes only without a
version bump), and the CLI's usage exit codes."""

import json

import pytest

from repro.analysis.cli import main as lint_main
from repro.analysis.diagnostics import (
    Diagnostic,
    render_github,
    render_json,
    render_text,
)
from repro.analysis.runner import LintResult


def diag(**overrides):
    base = dict(path="src/x.py", line=3, col=7, code="RL001", message="boom")
    base.update(overrides)
    return Diagnostic(**base)


def result(*diagnostics):
    return LintResult(
        diagnostics=tuple(diagnostics),
        suppressed=0,
        files_scanned=1,
        rules=("RL001",),
    )


class TestGithubEscaping:
    def test_percent_cr_and_lf_are_workflow_escaped(self):
        line = diag(message="50% done\r\nnext line").render_github()
        assert line == (
            "::error file=src/x.py,line=3,col=7,title=RL001"
            "::50%25 done%0D%0Anext line"
        )

    def test_escaping_keeps_one_command_per_line(self):
        out = render_github((diag(message="a\nb"), diag(line=9)))
        assert len(out.splitlines()) == 2
        assert all(ln.startswith("::error ") for ln in out.splitlines())

    def test_plain_message_is_untouched(self):
        assert diag().render_github().endswith("::boom")


class TestJsonSchema:
    def test_payload_key_set_is_stable(self):
        payload = json.loads(render_json((diag(),), result(diag()).stats()))
        assert set(payload) == {"version", "findings", "stats"}
        assert payload["version"] == 1
        assert set(payload["findings"][0]) == {
            "path",
            "line",
            "col",
            "code",
            "message",
        }
        assert set(payload["stats"]) == {
            "files_scanned",
            "rules",
            "findings",
            "findings_by_code",
            "suppressed",
            "unused_suppressions",
        }

    def test_text_render_is_ruff_style_one_line_per_finding(self):
        out = render_text((diag(), diag(line=9, code="RL003")))
        assert out.splitlines() == [
            "src/x.py:3:7 RL001 boom",
            "src/x.py:9:7 RL003 boom",
        ]


class TestUsageExitCodes:
    def test_empty_tree_is_clean_exit_zero(self, tmp_path):
        assert lint_main(["--no-cache", "--root", str(tmp_path)]) == 0

    def test_missing_explicit_path_is_a_usage_error(self, tmp_path, capsys):
        code = lint_main(
            ["--no-cache", "--root", str(tmp_path), "does/not/exist.py"]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_unknown_flag_is_argparse_exit_two(self):
        with pytest.raises(SystemExit) as excinfo:
            lint_main(["--definitely-not-a-flag"])
        assert excinfo.value.code == 2
