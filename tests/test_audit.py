"""Tests for the audit layer: hand-crafted templates, NL rendering,
patient portal, compliance reporting — on a tiny simulated hospital."""

import pytest

from repro.audit import (
    ComplianceAuditor,
    PatientPortal,
    all_event_user_templates,
    dataset_a_doctor_templates,
    describe_careweb_path,
    event_group_template,
    event_same_department_template,
    event_user_template,
    group_templates,
    repeat_access_template,
    same_department_templates,
    with_careweb_description,
)
from repro.core import ExplanationEngine
from repro.ehr import SimulationConfig, build_careweb_graph, simulate
from repro.groups import build_groups_table, hierarchy_from_log


@pytest.fixture(scope="module")
def sim():
    return simulate(SimulationConfig.tiny())


@pytest.fixture(scope="module")
def db(sim):
    hierarchy, _ = hierarchy_from_log(sim.db)
    build_groups_table(sim.db, hierarchy)
    return sim.db


@pytest.fixture(scope="module")
def graph(db):
    return build_careweb_graph(db)


class TestHandcraftedTemplates:
    def test_event_user_template_shape(self, graph):
        t = event_user_template(graph, "Appointments", "Doctor")
        assert t.length == 2 and t.is_simple
        assert t.tables_referenced() == {"Log", "Appointments"}
        assert "appointment" in t.describe_template()

    def test_repeat_access_is_decorated(self, graph):
        t = repeat_access_template(graph)
        assert t.is_decorated
        assert t.length == 2
        assert t.tables_referenced() == {"Log"}

    def test_group_template_depth_decoration(self, graph):
        t0 = event_group_template(graph, "Appointments", "Doctor")
        t1 = event_group_template(graph, "Appointments", "Doctor", depth=1)
        assert t0.is_simple and t1.is_decorated
        assert t0.length == t1.length == 4
        assert t0.signature() != t1.signature()

    def test_same_department_template(self, graph):
        t = event_same_department_template(graph, "Visits", "Doctor")
        assert t.length == 4
        assert "Users" in t.tables_referenced()

    def test_dataset_a_bundle(self, graph):
        templates = dataset_a_doctor_templates(graph)
        assert len(templates) == 3
        assert all(t.length == 2 for t in templates)

    def test_all_event_user_bundle(self, graph):
        templates = all_event_user_templates(graph)
        # 10 event-table user columns (Log excluded)
        assert len(templates) == 10

    def test_group_bundle_with_depth(self, graph):
        templates = group_templates(graph, depth=1)
        assert len(templates) == 3
        assert all(t.is_decorated for t in templates)

    def test_same_dept_bundle(self, graph):
        assert len(same_department_templates(graph)) == 3


class TestTemplateSemantics:
    """Hand-crafted templates must explain exactly the right ground-truth
    access classes (checked against the simulator's hidden reason tags)."""

    def test_appt_template_explains_doctor_accesses(self, sim, db, graph):
        engine = ExplanationEngine(db)
        explained = engine.explained_lids(
            event_user_template(graph, "Appointments", "Doctor")
        )
        doctor_lids = sim.lids_tagged("appt-doctor")
        # a solid majority of treating-doctor accesses are explainable
        # (gaps come only from the simulated extract dropout)
        assert len(explained & doctor_lids) / len(doctor_lids) > 0.5

    def test_repeat_template_matches_structural_repeats(self, db, graph):
        from repro.evalx import repeat_access_lids

        engine = ExplanationEngine(db)
        explained = engine.explained_lids(repeat_access_template(graph))
        assert explained == repeat_access_lids(db)

    def test_group_templates_cover_care_team(self, sim, db, graph):
        engine = ExplanationEngine(db)
        explained = set()
        for t in group_templates(graph, depth=1):
            explained |= engine.explained_lids(t)
        team_lids = sim.lids_tagged("care-team")
        assert len(explained & team_lids) / len(team_lids) > 0.4

    def test_snooping_not_explained_by_direct_templates(self, sim, db, graph):
        engine = ExplanationEngine(db)
        explained = set()
        for t in dataset_a_doctor_templates(graph):
            explained |= engine.explained_lids(t)
        snoops = sim.lids_tagged("snoop")
        assert not (explained & snoops)


class TestNaturalLanguage:
    def test_describe_known_tables(self, graph):
        t = event_user_template(graph, "Medications", "Signer")
        text = t.describe_template()
        assert "medication" in text and "[L.User]" in text

    def test_describe_path_for_groups(self, graph):
        t = event_group_template(graph, "Appointments", "Doctor")
        text = describe_careweb_path(t.path)
        assert "collaborative group" in text

    def test_describe_repeat(self, graph):
        t = repeat_access_template(graph)
        assert "previously accessed" in t.describe_template()

    def test_with_description_no_overwrite(self, graph):
        t = event_user_template(graph, "Visits", "Doctor")
        assert with_careweb_description(t) is t

    def test_with_description_fills_missing(self, graph):
        from repro.core import ExplanationTemplate

        bare = ExplanationTemplate(
            path=event_user_template(graph, "Visits", "Doctor").path
        )
        enriched = with_careweb_description(bare)
        assert enriched.description is not None
        assert "visit" in enriched.description


@pytest.fixture(scope="module")
def engine(db, graph):
    templates = dataset_a_doctor_templates(graph)
    templates.append(repeat_access_template(graph))
    templates.extend(group_templates(graph, depth=1))
    templates.extend(all_event_user_templates(graph))
    return ExplanationEngine(db, templates)


class TestPortal:
    def test_report_covers_all_accesses(self, engine, db):
        patient = next(iter(db.table("Log").distinct_values("Patient")))
        portal = PatientPortal(engine)
        entries = portal.access_report(patient)
        assert len(entries) == len(portal.accesses_of(patient))

    def test_entries_sorted_by_time(self, engine, db):
        patient = sorted(db.table("Log").distinct_values("Patient"))[0]
        entries = PatientPortal(engine).access_report(patient)
        dates = [e.date for e in entries]
        assert dates == sorted(dates)

    def test_render_contains_headlines(self, engine, db):
        patient = sorted(db.table("Log").distinct_values("Patient"))[0]
        text = PatientPortal(engine).render(patient, limit=5)
        assert f"patient {patient}" in text

    def test_suspicious_flag(self, engine, sim):
        portal = PatientPortal(engine)
        snoops = sim.lids_tagged("snoop")
        if not snoops:
            pytest.skip("no snooping incidents in this seed")
        lid = next(iter(snoops))
        log = sim.db.table("Log")
        row = [r for r in log.rows() if r[0] == lid][0]
        entries = portal.access_report(row[3])
        flagged = {e.lid for e in entries if e.suspicious}
        assert lid in flagged or lid in {
            e.lid for e in entries if not e.explanations
        }


class TestComplianceAuditor:
    def test_queue_sorted_and_unexplained(self, engine):
        auditor = ComplianceAuditor(engine)
        queue = auditor.queue()
        unexplained = engine.unexplained_lids()
        assert {e.lid for e in queue} == unexplained
        dates = [e.date for e in queue]
        assert dates == sorted(dates)

    def test_snoops_in_queue(self, engine, sim):
        auditor = ComplianceAuditor(engine)
        queue_lids = {e.lid for e in auditor.queue()}
        snoops = sim.lids_tagged("snoop")
        # scripted snooping incidents must surface in the review queue
        assert snoops <= queue_lids

    def test_risk_ranking_descending(self, engine):
        ranking = ComplianceAuditor(engine).user_risk_ranking()
        counts = [n for _, n in ranking]
        assert counts == sorted(counts, reverse=True)

    def test_summary_format(self, engine):
        text = ComplianceAuditor(engine).summary()
        assert "review queue" in text and "explained" in text
