"""Unit tests of the wire tier itself: cursors, metrics, routing, error
mapping, request parsing limits, and keep-alive — all against stub
services, so they run without building a hospital."""

import http.client
import json

import pytest

from repro.api import (
    ExplainResult,
    InvalidCursorError,
    InvalidRequestError,
    MethodNotAllowedError,
    NotFoundError,
    UnsupportedOperationError,
)
from repro.client import AuditClient
from repro.server import (
    CURSOR_VERSION,
    MAX_PAGE_LIMIT,
    AuditServer,
    Request,
    ServerMetrics,
    decode_cursor,
    encode_cursor,
    parse_scalar,
)


# ----------------------------------------------------------------------
# cursors
# ----------------------------------------------------------------------
class TestCursor:
    @pytest.mark.parametrize(
        "key",
        [("2010-01-04T08:18:00", 17), (4, 900), ("2010-01-04", "lid-x")],
    )
    def test_round_trip(self, key):
        assert decode_cursor(encode_cursor(key)) == key

    def test_opaque_but_versioned(self):
        import base64

        raw = base64.urlsafe_b64decode(encode_cursor((1, 2)))
        assert json.loads(raw)["v"] == CURSOR_VERSION

    @pytest.mark.parametrize(
        "bad",
        ["", "garbage!!", "AAAA", encode_cursor((3, 4))[:-4]],
    )
    def test_undecodable(self, bad):
        with pytest.raises(InvalidCursorError):
            decode_cursor(bad)

    def test_wrong_version(self):
        import base64

        cursor = base64.urlsafe_b64encode(
            json.dumps({"v": 999, "after": [1, 2]}).encode()
        ).decode()
        with pytest.raises(InvalidCursorError, match="version"):
            decode_cursor(cursor)

    @pytest.mark.parametrize("after", [None, 7, "x", [], [1], [1, 2, 3]])
    def test_bad_keys(self, after):
        import base64

        cursor = base64.urlsafe_b64encode(
            json.dumps({"v": CURSOR_VERSION, "after": after}).encode()
        ).decode()
        with pytest.raises(InvalidCursorError):
            decode_cursor(cursor)


# ----------------------------------------------------------------------
# scalars and metrics
# ----------------------------------------------------------------------
def test_parse_scalar():
    assert parse_scalar("17") == 17
    assert parse_scalar("-3") == -3
    assert parse_scalar("p00017") == "p00017"
    assert parse_scalar("3.5") == "3.5"
    # non-canonical integer forms must survive as strings — int() would
    # destroy leading zeros / signs and resolve the wrong id
    assert parse_scalar("0042") == "0042"
    assert parse_scalar("+1") == "+1"
    assert parse_scalar("1_0") == "1_0"


class TestServerMetrics:
    def test_counters(self):
        metrics = ServerMetrics()
        metrics.request_started()
        assert metrics.snapshot()["in_flight"] == 1
        metrics.request_finished("GET /x", 0.25, error=False)
        metrics.request_started()
        metrics.request_finished("GET /x", 0.75, error=True)
        snap = metrics.snapshot()
        assert snap["in_flight"] == 0
        assert snap["requests_total"] == 2
        assert snap["errors_total"] == 1
        assert snap["routes"]["GET /x"] == {"count": 2, "errors": 1}
        assert snap["latency_seconds"]["count"] == 2
        assert snap["latency_seconds"]["max"] == 0.75
        assert 0.25 <= snap["latency_seconds"]["p50"] <= 0.75
        assert snap["throughput"]["requests_per_second"] > 0

    def test_empty_snapshot(self):
        snap = ServerMetrics().snapshot()
        assert snap["latency_seconds"]["p99"] == 0.0
        assert snap["latency_seconds"]["mean"] == 0.0

    def test_reservoir_is_bounded(self):
        metrics = ServerMetrics(reservoir=10, seed=0)
        for i in range(100):
            metrics.request_started()
            metrics.request_finished("GET /x", float(i), error=False)
        snap = metrics.snapshot(include_samples=True)
        # Constant memory: the sample never outgrows the reservoir, but
        # the observation count, mean, and max stay exact over all 100.
        assert snap["latency_seconds"]["sampled"] == 10
        assert len(snap["latency_seconds"]["samples"]) == 10
        assert snap["latency_seconds"]["count"] == 100
        assert snap["latency_seconds"]["max"] == 99.0
        assert snap["latency_seconds"]["mean"] == sum(range(100)) / 100
        assert snap["requests_total"] == 100


class TestPercentile:
    """Exact nearest-rank values — pins the ``round()`` banker's-rounding
    off-by-one (p50 of [1, 2, 3, 4] used to come out as 3)."""

    def test_even_sample_halfway_rank(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        assert ServerMetrics._percentile(sample, 0.50) == 2.0
        assert ServerMetrics._percentile(sample, 0.90) == 4.0

    def test_singleton(self):
        assert ServerMetrics._percentile([10.0], 0.50) == 10.0
        assert ServerMetrics._percentile([10.0], 0.99) == 10.0

    def test_hundred_values_hit_the_named_ranks(self):
        sample = [float(i) for i in range(1, 101)]
        assert ServerMetrics._percentile(sample, 0.50) == 50.0
        assert ServerMetrics._percentile(sample, 0.90) == 90.0
        assert ServerMetrics._percentile(sample, 0.99) == 99.0
        assert ServerMetrics._percentile(sample, 1.00) == 100.0

    def test_empty_sample(self):
        assert ServerMetrics._percentile([], 0.50) == 0.0

    def test_extremes_are_clamped(self):
        assert ServerMetrics._percentile([1.0, 2.0], 0.0) == 1.0
        assert ServerMetrics._percentile([1.0, 2.0], 1.0) == 2.0


# ----------------------------------------------------------------------
# routing and error mapping (stub-backed live server)
# ----------------------------------------------------------------------
class StubService:
    """Just enough surface for the routes these tests hit."""

    def explain(self, request):
        return ExplainResult(lid=request.lid, explanations=())

    def report(self, limit=None):
        raise UnsupportedOperationError(
            "report is disabled on this deployment", hint="use a bigger box"
        )

    def coverage(self):
        raise RuntimeError("kaboom")

    def patient_report(self, patient, limit=None):
        raise ValueError("bad patient value")

    def stats(self):
        return {"log_rows": 0}


@pytest.fixture(scope="module")
def stub_server():
    with AuditServer(StubService(), port=0) as server:
        yield server


@pytest.fixture
def client(stub_server):
    with AuditClient(stub_server.host, stub_server.port, timeout=10) as c:
        yield c


class TestErrorMapping:
    def _status_of(self, client, method, path, body=None):
        response = client._raw_request(method, path, body)
        payload = json.loads(response.read())
        return response.status, payload

    def test_unknown_route_is_typed_404(self, client):
        status, payload = self._status_of(client, "GET", "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"
        with pytest.raises(NotFoundError):
            client._request("GET", "/nope")

    def test_wrong_method_is_typed_405(self, client):
        status, payload = self._status_of(client, "DELETE", "/v1/explain")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"
        assert "GET" in payload["error"]["message"]
        with pytest.raises(MethodNotAllowedError):
            client._request("PUT", "/v1/report")

    def test_missing_lid_is_typed_400(self, client):
        status, payload = self._status_of(client, "GET", "/v1/explain")
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"

    def test_unsupported_operation_maps_to_501(self, client):
        status, payload = self._status_of(client, "GET", "/v1/report")
        assert status == 501
        assert payload["error"]["code"] == "unsupported_operation"
        assert payload["error"]["details"]["hint"] == "use a bigger box"
        with pytest.raises(UnsupportedOperationError) as excinfo:
            client.report()
        assert excinfo.value.hint == "use a bigger box"

    def test_service_value_error_maps_to_400(self, client):
        status, payload = self._status_of(
            client, "GET", "/v1/patients/p1/report"
        )
        assert status == 400
        assert "bad patient value" in payload["error"]["message"]

    def test_unexpected_error_maps_to_500(self, client):
        status, payload = self._status_of(client, "GET", "/v1/coverage")
        assert status == 500
        assert payload["error"]["code"] == "internal"
        assert "kaboom" in payload["error"]["message"]

    def test_bad_json_body_is_typed_400(self, client):
        response = client._raw_request("POST", "/v1/ingest")
        # no body at all
        payload = json.loads(response.read())
        assert response.status == 400
        assert "JSON" in payload["error"]["message"]

    def test_malformed_cursor_is_typed_400(self, client):
        with pytest.raises(InvalidCursorError):
            client.unexplained_page(cursor="!!!")

    def test_bad_limit_is_typed_400(self, client):
        with pytest.raises(InvalidRequestError, match="limit"):
            client._request("GET", "/v1/unexplained?limit=0")
        with pytest.raises(InvalidRequestError, match="integer"):
            client._request("GET", "/v1/explain?lid=1&limit=soon")


class TestProtocol:
    def test_explain_get_and_post_agree(self, client):
        get = client._request("GET", "/v1/explain?lid=17")
        bare = client._request("POST", "/v1/explain", {"lid": 17})
        enveloped = client._request(
            "POST",
            "/v1/explain",
            {"v": 1, "kind": "ExplainRequest", "data": {"lid": 17}},
        )
        assert get["data"] == bare["data"] == enveloped["data"]
        assert get["data"]["lid"] == 17

    def test_lid_type_coercion(self, client):
        assert client.explain(17).lid == 17
        assert client.explain("p17").lid == "p17"
        # the typed client POSTs, so even an integer-looking string lid
        # keeps its JSON type end to end
        assert client.explain("17").lid == "17"
        # ...unlike the curl-facing GET form, which coerces canonically
        assert client._request("GET", "/v1/explain?lid=17")["data"]["lid"] == 17

    def test_healthz(self, client):
        assert client.healthz() == {"status": "ok"}
        assert client._request("GET", "/v1/healthz")["data"]["status"] == "ok"

    def test_metrics_counts_requests_and_routes(self, client):
        before = client.metrics()["requests_total"]
        client.explain(1)
        client.explain(2)
        after = client.metrics()
        assert after["requests_total"] >= before + 2
        assert after["routes"]["GET /v1/explain"]["count"] >= 2
        assert after["in_flight"] >= 1  # the /metrics request itself

    def test_keep_alive_reuses_one_connection(self, client):
        client.healthz()
        first = client._conn
        client.explain(1)
        client.stats()
        assert client._conn is first

    def test_unexplained_limit_is_clamped_not_rejected(self, stub_server):
        # a service whose queue works: reuse the real route shape
        class QueueService(StubService):
            def unexplained_queue(self):
                return ()

        with (
            AuditServer(QueueService(), port=0) as server,
            AuditClient(server.host, server.port) as c,
        ):
            payload = c._request(
                "GET", f"/v1/unexplained?limit={MAX_PAGE_LIMIT * 100}"
            )
            assert payload["data"]["items"] == []
            assert payload["data"]["next_cursor"] is None

    def test_oversized_body_is_typed_413(self, stub_server):
        connection = http.client.HTTPConnection(
            stub_server.host, stub_server.port, timeout=10
        )
        connection.putrequest("POST", "/v1/ingest")
        connection.putheader("Content-Length", str(10**9))
        connection.endheaders()
        response = connection.getresponse()
        payload = json.loads(response.read())
        assert response.status == 413
        assert payload["error"]["code"] == "payload_too_large"
        connection.close()

    def test_path_param_with_encoded_slash_still_routes(self, stub_server):
        class EchoService(StubService):
            def patient_report(self, patient, limit=None):
                from repro.api import PatientReport

                return PatientReport(patient=patient, entries=())

        with (
            AuditServer(EchoService(), port=0) as server,
            AuditClient(server.host, server.port) as c,
        ):
            # %2F must not split the path parameter into segments
            assert c.patient_report("a/b").patient == "a/b"
            assert c.patient_report("p 1%x").patient == "p 1%x"

    def test_http10_connection_closes(self, stub_server):
        connection = http.client.HTTPConnection(
            stub_server.host, stub_server.port, timeout=10
        )
        connection._http_vsn = 10
        connection._http_vsn_str = "HTTP/1.0"
        connection.request("GET", "/healthz")
        response = connection.getresponse()
        assert response.status == 200
        assert response.will_close
        connection.close()

    def test_http10_stream_is_unframed_and_closes(self, stub_server):
        """An HTTP/1.0 peer cannot decode chunked framing: the NDJSON
        body must arrive raw, delimited by connection close."""
        import socket

        body = json.dumps({"lids": [1, 2]}).encode()
        with socket.create_connection(
            (stub_server.host, stub_server.port), timeout=10
        ) as sock:
            sock.sendall(
                b"POST /v1/explain/batch HTTP/1.0\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"\r\n" + body
            )
            raw = b""
            while True:
                piece = sock.recv(65536)
                if not piece:
                    break  # server closed: the HTTP/1.0 body delimiter
                raw += piece
        head, _, payload = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.0 200" in head.splitlines()[0]
        assert b"Transfer-Encoding" not in head
        assert b"Connection: close" in head
        lines = [json.loads(line) for line in payload.splitlines() if line]
        assert [ln["data"]["lid"] for ln in lines] == [1, 2]

    def test_connection_close_with_extra_tokens_closes(self, stub_server):
        """RFC 9112 §9.3: ``Connection`` is a comma-separated token
        list — ``close, TE`` must end the connection exactly like a
        bare ``close`` (an exact-string compare would keep it alive and
        hang a peer waiting to reuse the socket)."""
        import socket

        with socket.create_connection(
            (stub_server.host, stub_server.port), timeout=10
        ) as sock:
            sock.sendall(
                b"GET /healthz HTTP/1.1\r\n"
                b"Connection: close, TE\r\n"
                b"\r\n"
            )
            raw = b""
            while True:
                piece = sock.recv(65536)
                if not piece:
                    break  # server honored close
                raw += piece
        head = raw.partition(b"\r\n\r\n")[0]
        assert b" 200 " in head.splitlines()[0]
        assert b"Connection: close" in head

    def test_body_without_content_length_is_typed_400_and_closes(
        self, stub_server
    ):
        """A body announced (Content-Type) but unframed (no
        Content-Length): treating it as bodyless would desync the
        connection — the body bytes would be parsed as the next request
        line.  The server must answer a typed 400, close, and never
        interpret the stray bytes as a second request."""
        import socket

        body = b'{"user": "u", "patient": "p"}'
        with socket.create_connection(
            (stub_server.host, stub_server.port), timeout=10
        ) as sock:
            sock.sendall(
                b"POST /v1/ingest HTTP/1.1\r\n"
                b"Content-Type: application/json\r\n"
                b"\r\n" + body
            )
            raw = b""
            while True:
                piece = sock.recv(65536)
                if not piece:
                    break  # server closed: the body was never re-parsed
                raw += piece
        head, _, payload = raw.partition(b"\r\n\r\n")
        assert b" 400 " in head.splitlines()[0]
        assert b"Connection: close" in head
        error = json.loads(payload)["error"]
        assert error["code"] == "invalid_request"
        assert "Content-Length" in error["message"]
        # exactly one response came back — the stray body bytes did not
        # produce a second (necessarily malformed) response
        assert raw.count(b"HTTP/1.1") == 1

    def test_expect_100_continue_is_answered(self, stub_server):
        """curl sends Expect: 100-continue on large bodies; the server
        must emit the interim response or such clients stall ~1s per
        POST.  http.client transparently skips 1xx responses, so a
        working final response here proves the interim one was sent
        and well-formed."""
        import socket

        body = json.dumps({"lids": [5]}).encode()
        with socket.create_connection(
            (stub_server.host, stub_server.port), timeout=10
        ) as sock:
            sock.sendall(
                b"POST /v1/explain/batch HTTP/1.1\r\n"
                b"Expect: 100-continue\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"\r\n"
            )
            sock.settimeout(10)
            interim = sock.recv(1024)
            assert interim.startswith(b"HTTP/1.1 100 Continue\r\n")
            sock.sendall(body)
            raw = b""
            while b"0\r\n\r\n" not in raw:
                raw += sock.recv(65536)
        assert b"HTTP/1.1 200" in raw.splitlines()[0]
        assert b'"lid":5' in raw.replace(b" ", b"")


# ----------------------------------------------------------------------
# Connection header token parsing
# ----------------------------------------------------------------------
class TestKeepAliveTokens:
    def _request(self, version, connection=None):
        headers = {} if connection is None else {"connection": connection}
        return Request(
            method="GET",
            target="/",
            path="/",
            query={},
            headers=headers,
            version=version,
        )

    def test_http11_defaults_to_persistent(self):
        assert self._request("HTTP/1.1").keep_alive

    def test_http10_defaults_to_close(self):
        assert not self._request("HTTP/1.0").keep_alive

    @pytest.mark.parametrize(
        "value",
        ["close", "Close", " close ", "close, TE", "TE, close", "keep-alive, close"],
    )
    def test_close_token_closes_regardless_of_list_position(self, value):
        assert not self._request("HTTP/1.1", value).keep_alive

    @pytest.mark.parametrize("value", ["TE", "upgrade", "te, upgrade", ""])
    def test_other_tokens_do_not_close_http11(self, value):
        assert self._request("HTTP/1.1", value).keep_alive

    @pytest.mark.parametrize(
        "value", ["keep-alive", "Keep-Alive", "keep-alive, TE", "TE , keep-alive"]
    )
    def test_keep_alive_token_persists_http10(self, value):
        assert self._request("HTTP/1.0", value).keep_alive

    def test_closeish_token_is_not_close(self):
        # token comparison, not substring matching
        assert self._request("HTTP/1.1", "closed").keep_alive
        assert self._request("HTTP/1.1", "disclose, TE").keep_alive


# ----------------------------------------------------------------------
# mid-stream NDJSON error semantics
# ----------------------------------------------------------------------
class FlakyService(StubService):
    """explain() succeeds, then blows up on the designated lid — after
    the first NDJSON line already hit the wire."""

    def explain(self, request):
        if request.lid == "boom":
            raise UnsupportedOperationError(
                "flaky mid-stream", hint="retry later"
            )
        return ExplainResult(lid=request.lid, explanations=())


class TestMidStreamError:
    def test_wire_carries_data_line_then_error_line(self):
        """Once the 200 and a result line are on the wire the status
        cannot change; the server must append a final wire-error NDJSON
        line and terminate the chunked body cleanly."""
        import socket

        with AuditServer(FlakyService(), port=0) as server:
            body = json.dumps({"lids": ["ok", "boom"]}).encode()
            with socket.create_connection(
                (server.host, server.port), timeout=10
            ) as sock:
                sock.sendall(
                    b"POST /v1/explain/batch HTTP/1.1\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                    b"\r\n" + body
                )
                raw = b""
                while b"0\r\n\r\n" not in raw:
                    raw += sock.recv(65536)
        head, _, framed = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200" in head.splitlines()[0]
        # strip the chunked framing down to the NDJSON lines
        lines = [
            json.loads(line)
            for line in framed.splitlines()
            if line.startswith(b"{")
        ]
        assert lines[0]["data"]["lid"] == "ok"
        assert lines[1]["error"]["code"] == "unsupported_operation"

    def test_client_iterator_raises_rebuilt_typed_exception(self):
        with (
            AuditServer(FlakyService(), port=0) as server,
            AuditClient(server.host, server.port, timeout=10) as client,
        ):
            stream = client.explain_batch(["ok", "boom"])
            first = next(stream)
            assert first.lid == "ok"
            with pytest.raises(UnsupportedOperationError) as excinfo:
                next(stream)
            assert excinfo.value.hint == "retry later"
            # the client recovers: the next call works normally
            assert client.explain(5).lid == 5
