"""Seeded RL009 drift: a route no client method calls, a client path
no route serves, and an expected envelope kind nothing emits."""


def envelope(kind, data):
    return {"v": 1, "kind": kind, "data": data}


def h_widgets(request):
    return envelope("Widgets", [])


def h_orphan(request):
    return envelope("Orphan", {})


ROUTES = [
    ("GET", "/v1/widgets", h_widgets, False),
    ("GET", "/v1/orphan", h_orphan, False),
]


class DriftClient:
    def _request(self, method, path, body=None):
        return {}

    @staticmethod
    def _data(payload, kind):
        return payload["data"]

    def widgets(self):
        return self._data(self._request("GET", "/v1/widgets"), "Widgets")

    def missing(self):
        return self._data(self._request("GET", "/v1/missing"), "Ghost")
