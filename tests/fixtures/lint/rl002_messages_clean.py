"""Clean twin of rl002_messages_bad: every kind keeps the contract."""

from dataclasses import dataclass


@dataclass(frozen=True)
class GoodView:
    value: int

    def to_dict(self):
        return {"value": self.value}

    @classmethod
    def from_dict(cls, payload):
        return cls(value=payload["value"])


@dataclass(frozen=True)
class OtherView:
    name: str

    def to_dict(self):
        return {"name": self.name}

    @classmethod
    def from_dict(cls, payload):
        return cls(name=payload["name"])


WIRE_KINDS = {cls.__name__: cls for cls in (GoodView, OtherView)}


def to_wire(message):
    return {"v": 1, "kind": type(message).__name__, "data": message.to_dict()}


def from_wire(payload):
    return WIRE_KINDS[payload["kind"]].from_dict(payload["data"])
