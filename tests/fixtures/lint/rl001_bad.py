"""Seeded RL001 violation: a reader-path helper mutates shared state.

``lookup`` enters the read lock and calls ``_fetch``, which writes to
``self._cache`` — two concurrent readers would race on that dict.
"""


class BadFacade:
    def __init__(self):
        self._lock = object()
        self._cache = {}
        self._rows = []

    def lookup(self, key):
        with self._lock.read_locked():
            return self._fetch(key)

    def _fetch(self, key):
        if key not in self._cache:
            self._cache[key] = len(self._rows)  # line 20: the race
        return self._cache[key]

    def ingest(self, row):
        with self._lock.write_locked():
            self._rows.append(row)
