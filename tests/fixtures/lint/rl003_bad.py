"""Seeded RL003 violations: a silent broad swallow and a bare raise."""


def swallow(work):
    try:
        work()
    except Exception:  # line 7: silent swallow
        pass


def reject():
    raise Exception("boom")  # line 12: untyped 500
