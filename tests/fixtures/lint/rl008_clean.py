"""The executor pattern RL008 must stay quiet on: the same blocking
chain as rl008_bad, but handed to ``run_in_executor`` as a function
*reference* — no call edge, no event-loop stall."""

import asyncio
import sqlite3


def fetch_rows(path, day):
    conn = sqlite3.connect(path)
    try:
        return conn.execute("SELECT * FROM audit_log WHERE day = ?", (day,))
    finally:
        conn.close()


def load_page(path, day):
    rows = fetch_rows(path, day)
    return list(rows)


async def handle(request):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, load_page, request.path, request.day)


async def poll(interval):
    await asyncio.sleep(interval)
