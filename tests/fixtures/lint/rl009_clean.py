"""Consistent wire artifacts RL009 must stay quiet on: every route
covered (one via handler sharing, one via an f-string path matching a
``{param}`` pattern), every expected kind emitted (one via envelope(),
one via the WIRE_KINDS registry)."""


class Items:
    pass


WIRE_KINDS = {"Items": Items}


def to_wire(obj):
    return {"v": 1, "kind": type(obj).__name__}


def from_wire(payload):
    return WIRE_KINDS[payload["kind"]]()


def envelope(kind, data):
    return {"v": 1, "kind": kind, "data": data}


def h_health(request):
    return envelope("Health", "ok")


def h_item(request):
    return envelope("Items", [])


ROUTES = [
    ("GET", "/healthz", h_health, False),
    ("GET", "/v1/healthz", h_health, False),
    ("GET", "/v1/items/{item_id}", h_item, False),
]


class SteadyClient:
    def _request(self, method, path, body=None):
        return {}

    @staticmethod
    def _data(payload, kind):
        return payload["data"]

    def health(self):
        return self._data(self._request("GET", "/healthz"), "Health")

    def item(self, item_id):
        return self._data(
            self._request("GET", f"/v1/items/{item_id}"), "Items"
        )
