"""Seeded RL005 violations: no benchlib envelope, no smoke handling."""


def bench_nothing(benchmark):
    benchmark(lambda: sum(range(100)))
