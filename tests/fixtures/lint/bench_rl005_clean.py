"""Clean twin of bench_rl005_bad: envelope written, smoke honored."""

from benchlib import is_smoke


def bench_something(benchmark, report):
    n = 100 if is_smoke() else 100_000
    total = benchmark(lambda: sum(range(n)))
    report.json("something", {"n": n, "total": total})
