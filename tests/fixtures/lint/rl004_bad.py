"""Seeded RL004 violations: an import-time lock, a fork-crossing
closure capture, and a blocking call on the event loop."""

import threading
import time

LOCK = threading.Lock()  # line 7: inherited by forked workers


def launch(run_fleet, open_service, db):
    service = open_service(db)
    return run_fleet(lambda: service)  # line 12: ships parent state


async def poll():
    time.sleep(0.1)  # line 16: stalls the event loop
