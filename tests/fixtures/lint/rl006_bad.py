"""Seeded RL006 violations: a reader-path mutation through a module
helper, a read->write upgrade through a call chain, fork-while-held,
and a direct nested upgrade."""

from concurrent.futures import ProcessPoolExecutor

from repro.api.locks import RWLock


def compute(key):
    return key


def warm_cache(svc, key):
    svc._cache[key] = compute(key)


def rebuild(svc):
    with svc._lock.write_locked():
        svc._cache.clear()


class BadFlowService:
    def __init__(self):
        self._lock = RWLock()
        self._cache = {}

    def lookup(self, key):
        with self._lock.read_locked():
            if key not in self._cache:
                warm_cache(self, key)
            return self._cache[key]

    def refresh(self, key):
        with self._lock.read_locked():
            if key not in self._cache:
                rebuild(self)

    def scale_out(self):
        with self._lock.write_locked():
            pool = ProcessPoolExecutor(2)
        return pool

    def upgrade(self, key):
        with self._lock.read_locked():
            with self._lock.write_locked():
                self._cache[key] = key
