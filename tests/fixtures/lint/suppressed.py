"""Suppression fixture: the same RL003 swallow, silenced two ways."""


def swallow_coded(work):
    try:
        work()
    except Exception:  # repro-lint: ignore[RL003]
        pass


def swallow_bare(work):
    try:
        work()
    except Exception:  # repro-lint: ignore
        pass


def swallow_wrong_code(work):
    try:
        work()
    except Exception:  # repro-lint: ignore[RL001]  (line 21: still flagged)
        pass
