"""Clean twin of rl003_bad: broad catches wrap, raises stay typed."""


class TypedError(RuntimeError):
    pass


def wrap(work):
    try:
        work()
    except Exception as exc:
        raise TypedError(str(exc)) from exc


def reject():
    raise TypedError("boom")
