"""Clean twin of rl001_bad: the cache write happens under the write lock."""


class GoodFacade:
    def __init__(self):
        self._lock = object()
        self._cache = {}
        self._rows = []

    def lookup(self, key):
        with self._lock.read_locked():
            return self._cache.get(key)

    def warm(self, key):
        with self._lock.write_locked():
            self._cache[key] = len(self._rows)

    def ingest(self, row):
        with self._lock.write_locked():
            self._rows.append(row)
