"""Seeded RL008 violations: a coroutine reaching sqlite3 through two
plain helpers, and a direct time.sleep — the case RL004 used to own."""

import sqlite3
import time


def fetch_rows(path, day):
    conn = sqlite3.connect(path)
    try:
        return conn.execute("SELECT * FROM audit_log WHERE day = ?", (day,))
    finally:
        conn.close()


def load_page(path, day):
    rows = fetch_rows(path, day)
    return list(rows)


async def handle(request):
    return load_page(request.path, request.day)


async def poll(interval):
    time.sleep(interval)
