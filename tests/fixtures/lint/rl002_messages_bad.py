"""Seeded RL002 violations: a kind without from_dict, and an
unregistered kind."""

from dataclasses import dataclass


@dataclass(frozen=True)
class GoodView:
    value: int

    def to_dict(self):
        return {"value": self.value}

    @classmethod
    def from_dict(cls, payload):
        return cls(value=payload["value"])


@dataclass(frozen=True)
class NoFromDict:  # line 19: half a round trip
    value: int

    def to_dict(self):
        return {"value": self.value}


@dataclass(frozen=True)
class Unregistered:  # line 27: to_wire() would reject it
    value: int

    def to_dict(self):
        return {"value": self.value}

    @classmethod
    def from_dict(cls, payload):
        return cls(value=payload["value"])


WIRE_KINDS = {cls.__name__: cls for cls in (GoodView, NoFromDict)}


def to_wire(message):
    return {"v": 1, "kind": type(message).__name__, "data": message.to_dict()}


def from_wire(payload):
    return WIRE_KINDS[payload["kind"]].from_dict(payload["data"])
