"""Seeded RL007 violations: interpolated/concatenated SQL reaching
driver sinks directly and through a local variable."""


def fetch_user(conn, user_id):
    conn.execute(f"SELECT * FROM users WHERE id = {user_id}")


def fetch_logs(conn, table, day):
    sql = "SELECT * FROM " + table
    conn.execute_batch(sql)


def count_rows(cursor, table):
    cursor.execute("SELECT COUNT(*) FROM %s" % table)


def insert_rows(conn, table, rows):
    conn.executemany("INSERT INTO {} VALUES (?)".format(table), rows)
