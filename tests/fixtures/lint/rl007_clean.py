"""The sanctioned shapes RL007 must stay quiet on: quote_ident()
splices, ALL_CAPS constants, parameterized values, join-over-quoted
columns, and prebuilt statements of unknown provenance."""

SELECT_SQL = "SELECT id, kind FROM audit_log WHERE day = ?"


def quote_ident(name):
    return '"' + name.replace('"', '""') + '"'


def fetch_user(conn, user_id):
    conn.execute("SELECT * FROM users WHERE id = ?", (user_id,))


def fetch_day(conn, day):
    conn.execute(SELECT_SQL, (day,))


def fetch_columns(conn, table, columns):
    cols = ", ".join(quote_ident(c) for c in columns)
    conn.execute(f"SELECT {cols} FROM {quote_ident(table)}")


def run_prepared(conn, sql, params):
    conn.execute(sql, params)


def widen(conn, sql, marks):
    expanded = sql.replace("(?)", marks)
    conn.execute_batch(expanded)
