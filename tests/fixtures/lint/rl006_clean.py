"""The same shapes as rl006_bad done correctly: sequential (not
nested) lock phases, helpers invoked lock-free, forks outside any
held region.  Flow-sensitivity is the point — a syntax-level rule
that pattern-matched "write_locked anywhere after read_locked" would
flag every method here."""

from concurrent.futures import ProcessPoolExecutor

from repro.api.locks import RWLock


def warm_cache(svc, key):
    with svc._lock.write_locked():
        svc._cache[key] = key


class CleanFlowService:
    def __init__(self):
        self._lock = RWLock()
        self._cache = {}

    def lookup(self, key):
        with self._lock.read_locked():
            return self._cache.get(key)

    def refresh(self, key):
        with self._lock.read_locked():
            missing = key not in self._cache
        if missing:
            warm_cache(self, key)

    def drain(self):
        self._lock.acquire_read()
        try:
            items = list(self._cache)
        finally:
            self._lock.release_read()
        with self._lock.write_locked():
            self._cache.clear()
        return items

    def scale_out(self):
        with self._lock.read_locked():
            size = len(self._cache)
        pool = ProcessPoolExecutor(size or 1)
        return pool
