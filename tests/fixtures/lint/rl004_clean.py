"""Clean twin of rl004_bad: resources live inside __init__ and the
factory, and the async body awaits instead of blocking."""

import asyncio
import threading


class Worker:
    def __init__(self):
        self.lock = threading.Lock()


def launch(run_fleet, open_service, db):
    return run_fleet(lambda: open_service(db))


async def poll():
    await asyncio.sleep(0.1)
