"""Property-based tests for the collaborative-group machinery.

Invariants: access-matrix rows are stochastic (each accessed patient's
inverse counts sum to 1); W = AᵀA is symmetric PSD-shaped; the fold step
of Louvain preserves total weight and degree mass; greedy clustering never
scores below the all-singletons partition it starts from.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.groups import (
    build_access_matrix,
    build_hierarchy,
    cluster_graph,
    degrees,
    modularity,
    similarity_graph,
    total_weight,
)
from repro.groups.clustering import _fold

access_lists = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)),  # (user, patient)
    min_size=1,
    max_size=40,
)

weighted_graphs = st.dictionaries(
    keys=st.integers(0, 8),
    values=st.dictionaries(
        keys=st.integers(0, 8),
        values=st.floats(min_value=0.01, max_value=5.0),
        max_size=4,
    ),
    min_size=1,
    max_size=9,
)


def symmetrize(g):
    out = {u: {} for u in g}
    for u, nbrs in g.items():
        for v, w in nbrs.items():
            out.setdefault(u, {})
            out.setdefault(v, {})
            if u == v:
                out[u][u] = w
            else:
                out[u][v] = w
                out[v][u] = w
    return out


class TestAccessMatrixProperties:
    @settings(max_examples=100, deadline=None)
    @given(accesses=access_lists)
    def test_rows_sum_to_one(self, accesses):
        am = build_access_matrix(accesses)
        sums = am.matrix.sum(axis=1)
        for i in range(am.shape[0]):
            assert abs(float(sums[i, 0]) - 1.0) < 1e-9

    @settings(max_examples=100, deadline=None)
    @given(accesses=access_lists)
    def test_similarity_symmetric_nonnegative(self, accesses):
        adj = similarity_graph(build_access_matrix(accesses))
        for u, nbrs in adj.items():
            for v, w in nbrs.items():
                assert w > 0
                assert abs(adj[v][u] - w) < 1e-12

    @settings(max_examples=100, deadline=None)
    @given(accesses=access_lists)
    def test_density_in_unit_interval(self, accesses):
        am = build_access_matrix(accesses)
        assert 0.0 <= am.density() <= 1.0


class TestModularityProperties:
    @settings(max_examples=100, deadline=None)
    @given(g=weighted_graphs)
    def test_single_community_q_zero(self, g):
        adj = symmetrize(g)
        if total_weight(adj) <= 0:
            return
        partition = {u: 0 for u in adj}
        assert abs(modularity(adj, partition)) < 1e-9

    @settings(max_examples=100, deadline=None)
    @given(g=weighted_graphs)
    def test_q_bounded(self, g):
        adj = symmetrize(g)
        partition = {u: u for u in adj}
        q = modularity(adj, partition)
        assert -1.0 - 1e-9 <= q <= 1.0 + 1e-9

    @settings(max_examples=100, deadline=None)
    @given(g=weighted_graphs)
    def test_fold_preserves_weight_and_degrees(self, g):
        adj = symmetrize(g)
        # arbitrary 2-coloring as the community assignment
        community = {u: hash(u) % 2 for u in adj}
        folded = _fold(adj, community)
        assert abs(total_weight(folded) - total_weight(adj)) < 1e-9
        deg = degrees(adj)
        fdeg = degrees(folded)
        for label in set(community.values()):
            mass = sum(k for u, k in deg.items() if community[u] == label)
            assert abs(fdeg.get(label, 0.0) - mass) < 1e-9


class TestClusteringProperties:
    @settings(max_examples=60, deadline=None)
    @given(g=weighted_graphs)
    def test_clustering_not_worse_than_singletons(self, g):
        adj = symmetrize(g)
        part = cluster_graph(adj)
        singletons = {u: i for i, u in enumerate(sorted(adj, key=repr))}
        assert (
            modularity(adj, part) >= modularity(adj, singletons) - 1e-9
        )

    @settings(max_examples=60, deadline=None)
    @given(g=weighted_graphs)
    def test_every_node_assigned_dense_labels(self, g):
        adj = symmetrize(g)
        part = cluster_graph(adj)
        assert set(part) == set(adj)
        if part:
            labels = set(part.values())
            assert labels == set(range(len(labels)))

    @settings(max_examples=60, deadline=None)
    @given(g=weighted_graphs)
    def test_deterministic(self, g):
        adj = symmetrize(g)
        assert cluster_graph(adj) == cluster_graph(adj)

    @settings(max_examples=40, deadline=None)
    @given(g=weighted_graphs)
    def test_hierarchy_refines(self, g):
        """Level d+1 never merges users split at level d."""
        adj = symmetrize(g)
        hierarchy = build_hierarchy(adj, max_depth=4)
        for shallow, deep in zip(hierarchy.levels, hierarchy.levels[1:]):
            for u in adj:
                for v in adj:
                    if shallow[u] != shallow[v]:
                        assert deep[u] != deep[v]

    @settings(max_examples=40, deadline=None)
    @given(g=weighted_graphs)
    def test_hierarchy_gids_unique_across_depths(self, g):
        adj = symmetrize(g)
        hierarchy = build_hierarchy(adj, max_depth=4)
        seen = set()
        for level in hierarchy.levels:
            gids = set(level.values())
            assert not (gids & seen)
            seen |= gids
