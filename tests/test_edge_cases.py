"""Edge-case and failure-injection tests across modules: empty inputs,
degenerate logs, corrupt CSVs, single-row tables, and boundary configs."""

import datetime as dt
import os

import pytest

from repro.core import (
    ExplanationEngine,
    MiningConfig,
    OneWayMiner,
    SchemaGraph,
    SupportEvaluator,
    TwoWayMiner,
)
from repro.db import (
    ColumnType,
    Database,
    SchemaError,
    TableSchema,
    read_table_csv,
)
from repro.ehr import SimulationConfig, simulate
from repro.evalx import (
    first_access_lids,
    lids_on_days,
    log_epoch,
    restrict_log,
)
from repro.groups import build_access_matrix, build_hierarchy, similarity_graph


@pytest.fixture
def empty_hospital_db():
    db = Database("empty")
    db.create_table(
        TableSchema.build(
            "Log",
            [("Lid", ColumnType.INT), ("Date", ColumnType.DATE), "User", "Patient"],
        )
    )
    db.create_table(TableSchema.build("Appointments", ["Patient", "Doctor"]))
    return db


class TestEmptyInputs:
    def test_mining_empty_log(self, empty_hospital_db):
        graph = SchemaGraph(empty_hospital_db)
        from repro.core import SchemaAttr

        graph.add_relationship(
            SchemaAttr("Log", "Patient"), SchemaAttr("Appointments", "Patient")
        )
        graph.add_relationship(
            SchemaAttr("Appointments", "Doctor"), SchemaAttr("Log", "User")
        )
        result = OneWayMiner(empty_hospital_db, graph).mine()
        # threshold is 0 on an empty log: templates trivially supported,
        # but none explain anything
        for mined in result.templates:
            assert mined.support == 0

    def test_engine_empty_log(self, empty_hospital_db):
        engine = ExplanationEngine(empty_hospital_db)
        assert engine.coverage() == 0.0
        assert engine.unexplained_lids() == set()

    def test_first_accesses_empty(self, empty_hospital_db):
        assert first_access_lids(empty_hospital_db) == set()

    def test_log_epoch_empty_raises(self, empty_hospital_db):
        with pytest.raises(ValueError):
            log_epoch(empty_hospital_db)

    def test_restrict_to_nothing(self, empty_hospital_db):
        derived = restrict_log(empty_hospital_db, set())
        assert len(derived.table("Log")) == 0

    def test_groups_from_no_accesses(self):
        am = build_access_matrix([])
        assert similarity_graph(am) == {}
        hierarchy = build_hierarchy({})
        assert hierarchy.levels[0] == {}


class TestDegenerateLogs:
    def test_single_access_log(self):
        db = Database()
        db.create_table(
            TableSchema.build(
                "Log",
                [("Lid", ColumnType.INT), ("Date", ColumnType.DATE), "User", "Patient"],
            )
        )
        db.table("Log").insert((1, dt.datetime(2010, 1, 4), "u", "p"))
        assert first_access_lids(db) == {1}
        assert lids_on_days(db, [1]) == {1}
        assert lids_on_days(db, [2]) == set()

    def test_same_timestamp_ties_break_by_lid(self):
        db = Database()
        db.create_table(
            TableSchema.build(
                "Log",
                [("Lid", ColumnType.INT), ("Date", ColumnType.DATE), "User", "Patient"],
            )
        )
        stamp = dt.datetime(2010, 1, 4, 9, 0)
        db.table("Log").insert((2, stamp, "u", "p"))
        db.table("Log").insert((1, stamp, "u", "p"))
        assert first_access_lids(db) == {1}

    def test_all_accesses_by_one_user(self):
        db = Database()
        db.create_table(
            TableSchema.build(
                "Log",
                [("Lid", ColumnType.INT), ("Date", ColumnType.DATE), "User", "Patient"],
            )
        )
        for i in range(5):
            db.table("Log").insert(
                (i, dt.datetime(2010, 1, 4 + i), "solo", f"p{i}")
            )
        am = build_access_matrix(
            (row[2], row[3]) for row in db.table("Log").rows()
        )
        adjacency = similarity_graph(am)
        # one user: no edges, one singleton group
        assert adjacency == {"solo": {}}
        hierarchy = build_hierarchy(adjacency)
        assert len(hierarchy.groups_at(0)) == 1


class TestFailureInjection:
    def test_corrupt_csv_wrong_arity(self, tmp_path):
        schema = TableSchema.build("T", [("a", ColumnType.INT), "b"])
        path = os.path.join(tmp_path, "t.csv")
        with open(path, "w") as fh:
            fh.write("a,b\n1,x\nnot-an-int,y\n")
        with pytest.raises(ValueError):
            read_table_csv(schema, path)

    def test_corrupt_csv_bad_header(self, tmp_path):
        schema = TableSchema.build("T", ["a", "b"])
        path = os.path.join(tmp_path, "t.csv")
        with open(path, "w") as fh:
            fh.write("x,y\n1,2\n")
        with pytest.raises(SchemaError):
            read_table_csv(schema, path)

    def test_empty_csv_gives_empty_table(self, tmp_path):
        schema = TableSchema.build("T", ["a"])
        path = os.path.join(tmp_path, "t.csv")
        open(path, "w").close()
        assert len(read_table_csv(schema, path)) == 0

    def test_fk_violation_reported_not_fatal(self):
        sim = simulate(SimulationConfig.tiny())
        sim.db.table("Log").insert(
            (10**6, dt.datetime(2010, 1, 5), "ghost-user", "p00000")
        )
        violations = sim.db.validate_referential_integrity()
        assert any("ghost-user" in v for v in violations)


class TestBoundaryConfigs:
    def test_one_day_simulation(self):
        sim = simulate(SimulationConfig.tiny().scaled(n_days=1))
        assert sim.log_size > 0
        epoch = log_epoch(sim.db)
        assert all(
            (d.date() - epoch.date()).days == 0
            for d in sim.db.table("Log").column_values("Date")
        )

    def test_zero_noise_and_snoops(self):
        sim = simulate(
            SimulationConfig.tiny().scaled(
                noise_fraction=0.0, n_snooping_incidents=0
            )
        )
        assert not sim.lids_tagged("noise")
        assert not sim.lids_tagged("snoop")

    def test_zero_repeats(self):
        sim = simulate(
            SimulationConfig.tiny().scaled(repeat_rate_per_user_day=0.0)
        )
        assert not sim.lids_tagged("repeat")

    def test_max_length_one_mining(self, fig3_db, fig3_graph):
        cfg = MiningConfig(support_fraction=0.5, max_length=1, max_tables=3)
        result = OneWayMiner(fig3_db, fig3_graph, cfg).mine()
        assert all(m.length <= 1 for m in result.templates)

    def test_two_way_max_length_one(self, fig3_db, fig3_graph):
        cfg = MiningConfig(support_fraction=0.5, max_length=1, max_tables=3)
        result = TwoWayMiner(fig3_db, fig3_graph, cfg).mine()
        assert all(m.length <= 1 for m in result.templates)

    def test_support_threshold_of_one_hundred_percent(self, fig3_db, fig3_graph):
        cfg = MiningConfig(support_fraction=1.0, max_length=4, max_tables=3)
        result = OneWayMiner(fig3_db, fig3_graph, cfg).mine()
        log_size = len(fig3_db.table("Log"))
        assert all(m.support == log_size for m in result.templates)


class TestUnicodeAndExoticValues:
    def test_unicode_ids_roundtrip(self):
        db = Database()
        db.create_table(
            TableSchema.build(
                "Log",
                [("Lid", ColumnType.INT), ("Date", ColumnType.DATE), "User", "Patient"],
            )
        )
        db.create_table(TableSchema.build("Appointments", ["Patient", "Doctor"]))
        db.table("Log").insert(
            (1, dt.datetime(2010, 1, 4), "Д-р Иванов", "患者一")
        )
        db.table("Appointments").insert(("患者一", "Д-р Иванов"))
        graph = SchemaGraph(db)
        from repro.core import SchemaAttr

        graph.add_relationship(
            SchemaAttr("Log", "Patient"), SchemaAttr("Appointments", "Patient")
        )
        graph.add_relationship(
            SchemaAttr("Appointments", "Doctor"), SchemaAttr("Log", "User")
        )
        result = OneWayMiner(
            db, graph, MiningConfig(support_fraction=0.5, max_length=2, max_tables=2)
        ).mine()
        assert any(m.support == 1 for m in result.templates)

    def test_evaluator_large_threshold(self, fig3_db, fig3_graph):
        ev = SupportEvaluator(fig3_db)
        from repro.core import Path

        seed = Path.forward_seed(fig3_graph, fig3_graph.start_edges()[0])
        # astronomically high threshold: support_or_skip must still answer
        assert ev.support_or_skip(seed, threshold=10**9) is not None
