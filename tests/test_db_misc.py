"""Tests for database catalog, optimizer estimates, SQL rendering, CSV IO,
and canonical query signatures."""

import datetime as dt
import os

import pytest

from repro.db import (
    AttrRef,
    CardinalityEstimator,
    ColumnType,
    Condition,
    ConjunctiveQuery,
    Database,
    ForeignKey,
    Literal,
    SchemaError,
    TableSchema,
    TupleVar,
    UnknownTableError,
    canonical_query_signature,
    load_database,
    read_table_csv,
    render_query,
    render_query_reduced,
    save_database,
    write_table_csv,
)


@pytest.fixture
def db():
    db = Database("hosp")
    users = db.create_table(TableSchema.build("Users", ["User", "Dept"]))
    log = db.create_table(
        TableSchema.build(
            "Log",
            [("Lid", ColumnType.INT), "User", "Patient"],
            primary_key=["Lid"],
            foreign_keys=[ForeignKey("User", "Users", "User")],
        )
    )
    users.insert_many([("Dave", "Peds"), ("Mike", "Peds")])
    log.insert_many([(1, "Dave", "Alice"), (2, "Mike", "Bob")])
    return db


class TestDatabase:
    def test_create_duplicate_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_table(TableSchema.build("Log", ["x"]))

    def test_unknown_table(self, db):
        with pytest.raises(UnknownTableError):
            db.table("Nope")

    def test_fk_to_missing_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_table(
                TableSchema.build(
                    "T", ["a"], foreign_keys=[ForeignKey("a", "Missing", "x")]
                )
            )

    def test_self_referencing_fk_allowed(self):
        db = Database()
        db.create_table(
            TableSchema.build(
                "Emp", ["id", "boss"], foreign_keys=[ForeignKey("boss", "Emp", "id")]
            )
        )

    def test_drop_table(self, db):
        db.drop_table("Log")
        assert not db.has_table("Log")

    def test_contains_len(self, db):
        assert "Log" in db
        assert len(db) == 2

    def test_foreign_keys_listing(self, db):
        fks = db.foreign_keys()
        assert ("Log", ForeignKey("User", "Users", "User")) in fks

    def test_referential_integrity_ok(self, db):
        assert db.validate_referential_integrity() == []

    def test_referential_integrity_violation(self, db):
        db.table("Log").insert((3, "Ghost", "Alice"))
        violations = db.validate_referential_integrity()
        assert len(violations) == 1
        assert "Ghost" in violations[0]

    def test_summary_and_total(self, db):
        assert db.total_rows() == 4
        assert "Log" in db.summary()


class TestEstimator:
    def test_join_estimate(self, db):
        L, U = TupleVar("L", "Log"), TupleVar("U", "Users")
        q = ConjunctiveQuery.build(
            [L, U],
            [Condition(AttrRef("L", "User"), "=", AttrRef("U", "User"))],
            [AttrRef("L", "Lid")],
        )
        est = CardinalityEstimator(db)
        # 2 * 2 / max(ndv=2, ndv=2) = 2
        assert est.estimate_rows(q) == pytest.approx(2.0)

    def test_literal_estimate(self, db):
        L = TupleVar("L", "Log")
        q = ConjunctiveQuery.build(
            [L],
            [Condition(AttrRef("L", "User"), "=", Literal("Dave"))],
            [AttrRef("L", "Lid")],
        )
        assert CardinalityEstimator(db).estimate_rows(q) == pytest.approx(1.0)

    def test_inequality_selectivity(self, db):
        L = TupleVar("L", "Log")
        q = ConjunctiveQuery.build(
            [L],
            [Condition(AttrRef("L", "Lid"), ">", Literal(0))],
            [AttrRef("L", "Lid")],
        )
        assert CardinalityEstimator(db).estimate_rows(q) == pytest.approx(2 / 3)

    def test_distinct_estimate_bounded_by_ndv(self, db):
        L, U = TupleVar("L", "Log"), TupleVar("U", "Users")
        q = ConjunctiveQuery.build(
            [L, U],
            [Condition(AttrRef("L", "User"), "=", AttrRef("U", "User"))],
            [AttrRef("L", "Lid")],
        )
        est = CardinalityEstimator(db)
        assert est.estimate_distinct(q, AttrRef("L", "Lid")) <= 2.0 + 1e-9

    def test_error_factor(self, db):
        L = TupleVar("L", "Log")
        q = ConjunctiveQuery.build([L], [], [AttrRef("L", "Lid")])
        assert CardinalityEstimator(db, error_factor=10).estimate_rows(
            q
        ) == pytest.approx(20.0)

    def test_bad_error_factor(self, db):
        with pytest.raises(ValueError):
            CardinalityEstimator(db, error_factor=0)


class TestSqlRendering:
    def make_query(self):
        L, U = TupleVar("L", "Log"), TupleVar("U", "Users")
        return ConjunctiveQuery.build(
            [L, U],
            [Condition(AttrRef("L", "User"), "=", AttrRef("U", "User"))],
            [AttrRef("L", "Lid")],
        )

    def test_plain(self):
        sql = render_query(self.make_query())
        assert "SELECT DISTINCT L.Lid" in sql
        assert "FROM Log L, Users U" in sql
        assert "WHERE L.User = U.User" in sql

    def test_count_form(self):
        sql = render_query(self.make_query(), count_distinct=AttrRef("L", "Lid"))
        assert sql.startswith("SELECT COUNT(DISTINCT L.Lid)")

    def test_reduced_subqueries(self):
        sql = render_query_reduced(self.make_query())
        assert "(SELECT DISTINCT User FROM Users) U" in sql
        # the Log itself is never reduced (its Lid multiplicity matters)
        assert "Log L" in sql

    def test_string_literal_quoting(self):
        L = TupleVar("L", "Log")
        q = ConjunctiveQuery.build(
            [L],
            [Condition(AttrRef("L", "User"), "=", Literal("O'Hara"))],
            [AttrRef("L", "Lid")],
        )
        assert "'O''Hara'" in render_query(q)


class TestCanonicalSignature:
    def test_alias_permutation_invariance(self):
        # Groups self-join written in both orders must collide in the cache
        L = TupleVar("L", "Log")
        G1, G2 = TupleVar("G1", "Groups"), TupleVar("G2", "Groups")
        fwd = ConjunctiveQuery.build(
            [L, G1, G2],
            [
                Condition(AttrRef("L", "Patient"), "=", AttrRef("G1", "User")),
                Condition(AttrRef("G1", "Gid"), "=", AttrRef("G2", "Gid")),
                Condition(AttrRef("G2", "User"), "=", AttrRef("L", "User")),
            ],
            [AttrRef("L", "Lid")],
        )
        bwd = ConjunctiveQuery.build(
            [L, G2, G1],
            [
                Condition(AttrRef("G1", "User"), "=", AttrRef("L", "Patient")),
                Condition(AttrRef("G2", "Gid"), "=", AttrRef("G1", "Gid")),
                Condition(AttrRef("L", "User"), "=", AttrRef("G2", "User")),
            ],
            [AttrRef("L", "Lid")],
        )
        assert canonical_query_signature(fwd) == canonical_query_signature(bwd)

    def test_different_conditions_differ(self):
        L = TupleVar("L", "Log")
        q1 = ConjunctiveQuery.build(
            [L], [Condition(AttrRef("L", "User"), "=", Literal("a"))], [AttrRef("L", "Lid")]
        )
        q2 = ConjunctiveQuery.build(
            [L], [Condition(AttrRef("L", "User"), "=", Literal("b"))], [AttrRef("L", "Lid")]
        )
        assert canonical_query_signature(q1) != canonical_query_signature(q2)

    def test_inequality_flip_canonicalized(self):
        L1, L2 = TupleVar("L1", "Log"), TupleVar("L2", "Log")
        base = [Condition(AttrRef("L1", "Patient"), "=", AttrRef("L2", "Patient"))]
        q1 = ConjunctiveQuery.build(
            [L1, L2],
            base + [Condition(AttrRef("L1", "Lid"), ">", AttrRef("L2", "Lid"))],
            [AttrRef("L1", "Lid")],
        )
        q2 = ConjunctiveQuery.build(
            [L1, L2],
            base + [Condition(AttrRef("L2", "Lid"), "<", AttrRef("L1", "Lid"))],
            [AttrRef("L1", "Lid")],
        )
        assert canonical_query_signature(q1) == canonical_query_signature(q2)


class TestCsvIO:
    def test_table_roundtrip(self, db, tmp_path):
        path = os.path.join(tmp_path, "log.csv")
        n = write_table_csv(db.table("Log"), path)
        assert n == 2
        loaded = read_table_csv(db.table("Log").schema, path)
        assert loaded.rows() == db.table("Log").rows()

    def test_roundtrip_with_dates_and_nulls(self, tmp_path):
        schema = TableSchema.build(
            "T", [("when", ColumnType.DATE), ("n", ColumnType.INT), "s"]
        )
        from repro.db import Table

        t = Table(schema)
        t.insert((dt.datetime(2010, 1, 3, 10, 16, 57), None, "x"))
        path = os.path.join(tmp_path, "t.csv")
        write_table_csv(t, path)
        loaded = read_table_csv(schema, path)
        assert loaded.rows() == t.rows()

    def test_header_mismatch_rejected(self, db, tmp_path):
        path = os.path.join(tmp_path, "bad.csv")
        with open(path, "w") as fh:
            fh.write("X,Y,Z\n1,2,3\n")
        with pytest.raises(SchemaError):
            read_table_csv(db.table("Log").schema, path)

    def test_database_roundtrip(self, db, tmp_path):
        directory = os.path.join(tmp_path, "dbdir")
        save_database(db, directory)
        loaded = load_database(directory)
        assert set(loaded.table_names()) == {"Users", "Log"}
        assert loaded.table("Log").rows() == db.table("Log").rows()
        assert loaded.table("Log").schema.foreign_keys == db.table("Log").schema.foreign_keys
