"""Resumable, preemptable full-log scans (the web-preemption model).

The contract under test, end to end: the union of a scan's bounded
slices must be **byte-identical** to the one-shot ``report()`` /
``explain_all()`` artifacts — for every page size, with and without a
wall-clock quantum, at shard counts {1, 2}, through the facade and over
the wire — and a scan suspended mid-walk must resume correctly on a
*fresh* service or server instance (a replica) from nothing but the
serialized cursor, even while back-dated ingest mutates the log.
"""

from __future__ import annotations

import datetime as dt
import json

import pytest

from repro.audit.handcrafted import (
    event_group_template,
    event_user_template,
    repeat_access_template,
)
from repro.api import (
    AuditConfig,
    InvalidCursorError,
    ScanPage,
    ScanRequest,
    ScanState,
    assemble_partition,
    assemble_report,
    open_service,
    to_wire,
)
from repro.client import AuditClient
from repro.core import ExplanationEngine, SchemaGraph
from repro.core.scan import QUANTUM_CHECK_ROWS, LogScanner
from repro.db import ColumnType, Database, TableSchema
from repro.ehr import SimulationConfig, simulate
from repro.server import (
    AuditServer,
    decode_cursor,
    decode_scan_cursor,
    dump_json,
    encode_cursor,
    encode_scan_cursor,
)

SHARD_COUNTS = (1, 2)
PAGE_SIZES = (1, 7, 10_000)

#: Fixed clock so services opened at different times stamp identically.
FROZEN_NOW = dt.datetime(2010, 1, 9, 12, 0, 0)


def _open_service(shards: int):
    """A service over the deterministic tiny hospital — two calls see
    byte-identical logs, which is what makes the fresh-replica resume
    tests honest."""
    db = simulate(SimulationConfig.tiny(seed=7)).db
    return open_service(
        db, config=AuditConfig(shards=shards), clock=lambda: FROZEN_NOW
    )


@pytest.fixture(scope="module", params=SHARD_COUNTS)
def service(request):
    svc = _open_service(request.param)
    yield svc
    svc.close()


# ----------------------------------------------------------------------
# facade differential: slice union == one-shot, byte for byte
# ----------------------------------------------------------------------
class TestFacadeDifferential:
    @pytest.mark.parametrize("page_rows", PAGE_SIZES)
    def test_report_byte_identical(self, service, page_rows):
        pages = list(service.scan_pages(page_rows=page_rows))
        assert all(page.rows <= page_rows for page in pages)
        assert dump_json(to_wire(assemble_report(pages))) == dump_json(
            to_wire(service.report())
        )

    @pytest.mark.parametrize("page_rows", PAGE_SIZES)
    def test_explain_all_partition_identical(self, service, page_rows):
        pages = list(service.scan_pages(page_rows=page_rows))
        assert assemble_partition(pages) == service.explain_all()

    def test_scan_report_and_scan_explain_all(self, service):
        assert (
            service.scan_report(page_rows=5).to_dict()
            == service.report().to_dict()
        )
        assert (
            service.scan_report(limit=2, page_rows=5).to_dict()
            == service.report(limit=2).to_dict()
        )
        assert service.scan_explain_all(page_rows=5) == service.explain_all()

    def test_tiny_quantum_still_completes_identically(self, service):
        """A pathologically small quantum shrinks slices (one chunk
        each) but must never change the assembled artifact."""
        pages = list(
            service.scan_pages(page_rows=10_000, quantum_seconds=1e-9)
        )
        # each shard contributes at most one chunk per slice
        bound = QUANTUM_CHECK_ROWS * service.config.shards
        assert all(page.rows <= bound for page in pages)
        assert (
            assemble_report(pages).to_dict() == service.report().to_dict()
        )

    def test_final_state_accumulates_whole_log(self, service):
        last = list(service.scan_pages(page_rows=7))[-1]
        assert last.done
        report = service.report()
        assert last.state.seen == report.total
        assert last.state.unexplained == report.unexplained_count

    def test_resume_on_fresh_service_instance(self, service):
        """Suspend after a few pages; a brand-new service over the same
        log must finish the walk from the JSON-serialized state alone."""
        walk = service.scan_pages(page_rows=6)
        head = [next(walk), next(walk), next(walk)]
        walk.close()
        assert not head[-1].done
        # the suspended state survives a JSON hop (what a cursor does)
        state = ScanState.from_dict(
            json.loads(json.dumps(head[-1].state.to_dict()))
        )
        fresh = _open_service(service.config.shards)
        try:
            tail = list(fresh.scan_pages(page_rows=6, state=state))
        finally:
            fresh.close()
        assert (
            assemble_report(head + tail).to_dict()
            == service.report().to_dict()
        )

    def test_config_budgets_are_the_default(self):
        db = simulate(SimulationConfig.tiny(seed=7)).db
        svc = open_service(
            db, config=AuditConfig(scan_page_rows=3), clock=lambda: FROZEN_NOW
        )
        try:
            page = svc.scan()
            assert page.rows == 3  # tiny sim has more than 3 accesses
            explicit = svc.scan(ScanRequest(page_rows=2))
            assert explicit.rows == 2
        finally:
            svc.close()


def test_pages_identical_across_shard_counts():
    """The merge-cut sharded scanner must emit the *same page stream*
    as the single-node scanner — not just the same union."""
    one = _open_service(shards=1)
    two = _open_service(shards=2)
    try:
        pages_one = [p.to_dict() for p in one.scan_pages(page_rows=5)]
        pages_two = [p.to_dict() for p in two.scan_pages(page_rows=5)]
        assert pages_one == pages_two
    finally:
        one.close()
        two.close()


def test_scan_survives_backdated_ingest_mid_walk():
    """Key-based suspension: rows ingested *behind* the resume position
    are not part of this walk's snapshot — the assembled artifact equals
    the pre-ingest one-shot report, with no dupes and no skips."""
    service = _open_service(shards=1)
    try:
        before = service.report()
        walk = service.scan_pages(page_rows=4)
        head = [next(walk), next(walk)]
        walk.close()
        backdated = service.ingest(
            "zz-nobody", "zz-nobody", dt.datetime(2000, 1, 1)
        )
        assert backdated.suspicious
        tail = list(service.scan_pages(page_rows=4, state=head[-1].state))
        assembled = assemble_report(head + tail)
        assert assembled.to_dict() == before.to_dict()
        served = [v.lid for page in head + tail for v in page.unexplained]
        assert backdated.lid not in served
    finally:
        service.close()


# ----------------------------------------------------------------------
# LogScanner unit behavior
# ----------------------------------------------------------------------
def _tiny_engine() -> ExplanationEngine:
    db = Database("hospital")
    db.create_table(
        TableSchema.build(
            "Log",
            [
                ("Lid", ColumnType.INT),
                ("Date", ColumnType.INT),
                "User",
                "Patient",
            ],
            primary_key=["Lid"],
        )
    ).insert_many(
        [
            (100, 1, "Nick", "Alice"),
            (116, 2, "Dave", "Alice"),
            (130, 9, "Dave", "Alice"),
            (900, 4, "Eve", "Bob"),
        ]
    )
    db.create_table(
        TableSchema.build(
            "Appointments", ["Patient", "Doctor", ("Date", ColumnType.INT)]
        )
    ).insert_many([("Alice", "Dave", 1), ("Bob", "Sam", 2)])
    db.create_table(
        TableSchema.build(
            "Groups",
            [
                ("Group_Depth", ColumnType.INT),
                ("Group_id", ColumnType.INT),
                "User",
            ],
        )
    ).insert_many([(1, 10, "Dave"), (1, 10, "Nick"), (1, 11, "Sam")])
    graph = SchemaGraph(db)
    graph.allow_self_join("Groups", "Group_id")
    graph.allow_self_join("Log", "Patient")
    graph.allow_self_join("Log", "User")
    templates = [
        event_user_template(graph, "Appointments", "Doctor"),
        event_group_template(graph, "Appointments", "Doctor"),
        repeat_access_template(graph),
    ]
    return ExplanationEngine(db, templates)


class FakeClock:
    """Monotonic stub advancing a fixed amount per reading."""

    def __init__(self, step: float) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestLogScanner:
    def test_slices_walk_in_stable_key_order(self):
        scanner = LogScanner(_tiny_engine())
        keys = []
        after, done = None, False
        while not done:
            result = scanner.slice(after, page_rows=1)
            keys.extend(row.key for row in result.rows)
            after, done = result.after, result.done
        assert keys == sorted(keys)
        assert [lid for _, lid in keys] == [100, 116, 900, 130]

    def test_slice_union_matches_explain_all(self):
        engine = _tiny_engine()
        scanner = LogScanner(engine)
        explained, unexplained = set(), set()
        after, done = None, False
        while not done:
            result = scanner.slice(after, page_rows=3)
            for row in result.rows:
                (explained if row.explained else unexplained).add(row.lid)
            after, done = result.after, result.done
        whole = engine.explain_all()
        assert explained == set(whole.explained)
        assert unexplained == set(whole.unexplained)

    def test_page_rows_must_be_positive(self):
        scanner = LogScanner(_tiny_engine())
        with pytest.raises(ValueError, match="page_rows"):
            scanner.slice(None, page_rows=0)

    def test_exhausted_scan_is_done_and_position_stable(self):
        scanner = LogScanner(_tiny_engine())
        result = scanner.slice(None, page_rows=100)
        assert result.done
        again = scanner.slice(result.after, page_rows=100)
        assert again.done
        assert again.rows == ()
        assert again.after == result.after

    def test_expired_quantum_still_makes_progress(self):
        """The deadline is already past at the first check; the slice
        must still complete its first chunk — never spin at zero rows."""
        scanner = LogScanner(
            _tiny_engine(), check_rows=2, clock=FakeClock(step=100.0)
        )
        result = scanner.slice(None, page_rows=100, quantum_seconds=1e-6)
        assert len(result.rows) == 2  # exactly one chunk
        assert not result.done

    def test_quantum_stops_at_chunk_boundary(self):
        """With a budget worth one clock step, the second chunk is never
        started: the overrun is bounded to one chunk's evaluation."""
        clock = FakeClock(step=1.0)
        scanner = LogScanner(_tiny_engine(), check_rows=3, clock=clock)
        result = scanner.slice(None, page_rows=100, quantum_seconds=0.5)
        assert len(result.rows) == 3
        assert not result.done

    def test_generous_quantum_completes_the_slice(self):
        scanner = LogScanner(
            _tiny_engine(), check_rows=2, clock=FakeClock(step=1e-9)
        )
        result = scanner.slice(None, page_rows=100, quantum_seconds=1e6)
        assert result.done
        assert len(result.rows) == 4


# ----------------------------------------------------------------------
# scan cursors (v2, kind-tagged)
# ----------------------------------------------------------------------
class TestScanCursor:
    @pytest.mark.parametrize(
        "state",
        [
            ScanState(),
            ScanState(after=(4, 900), seen=3, unexplained=1),
            ScanState(
                after=(dt.datetime(2010, 1, 4, 8, 18), 17),
                seen=10,
                unexplained=2,
            ),
        ],
    )
    def test_round_trip(self, state):
        cursor = encode_scan_cursor(state.to_dict())
        assert ScanState.from_dict(decode_scan_cursor(cursor)) == state

    def test_queue_cursor_is_rejected_by_scan_decoder(self):
        with pytest.raises(InvalidCursorError, match="expected a 'scan'"):
            decode_scan_cursor(encode_cursor((1, 2)))

    def test_scan_cursor_is_rejected_by_queue_decoder(self):
        with pytest.raises(InvalidCursorError, match="expected a 'queue'"):
            decode_cursor(encode_scan_cursor(ScanState().to_dict()))

    @pytest.mark.parametrize("bad", ["", "garbage!!", "AAAA"])
    def test_undecodable(self, bad):
        with pytest.raises(InvalidCursorError):
            decode_scan_cursor(bad)

    def test_truncated(self):
        cursor = encode_scan_cursor(ScanState().to_dict())
        with pytest.raises(InvalidCursorError):
            decode_scan_cursor(cursor[:-4])


# ----------------------------------------------------------------------
# wire differential: /v1/scan must be facade-indistinguishable
# ----------------------------------------------------------------------
class ServedWorld:
    def __init__(self, shards: int) -> None:
        self.shards = shards
        self.service = _open_service(shards)
        self.server = AuditServer(self.service, port=0).start()
        self.client = AuditClient(self.server.host, self.server.port)

    def close(self) -> None:
        self.client.close()
        self.server.close()
        self.service.close()


@pytest.fixture(scope="module", params=SHARD_COUNTS)
def world(request):
    w = ServedWorld(request.param)
    yield w
    w.close()


class TestWireDifferential:
    @pytest.mark.parametrize("page_rows", (1, 7))
    def test_walked_pages_match_facade(self, world, page_rows):
        wire = [p.to_dict() for p in world.client.scan_pages(page_rows)]
        local = [
            p.to_dict() for p in world.service.scan_pages(page_rows)
        ]
        assert wire == local

    def test_scan_report_matches_one_shot(self, world):
        assert (
            world.client.scan_report(page_rows=5).to_dict()
            == world.service.report().to_dict()
        )

    def test_scan_explain_all_matches_one_shot(self, world):
        assert (
            world.client.scan_explain_all(page_rows=5)
            == world.service.explain_all()
        )

    def test_quantum_walk_matches_one_shot(self, world):
        report = world.client.scan_report(
            page_rows=10_000, quantum_seconds=1e-9
        )
        assert report.to_dict() == world.service.report().to_dict()

    def test_get_and_post_agree(self, world):
        get = world.client._request("GET", "/v1/scan?page_rows=3")
        post = world.client._request("POST", "/v1/scan", {"page_rows": 3})
        assert get["kind"] == post["kind"] == "ScanSlice"
        assert get["data"] == post["data"]
        page = ScanPage.from_dict(get["data"]["page"])
        assert page.rows == 3

    def test_get_cursor_walk(self, world):
        """The curl-facing GET form walks the same pages."""
        pages, cursor = [], None
        while True:
            path = "/v1/scan?page_rows=4" + (
                f"&cursor={cursor}" if cursor else ""
            )
            data = world.client._request("GET", path)["data"]
            pages.append(ScanPage.from_dict(data["page"]))
            cursor = data["next_cursor"]
            if cursor is None:
                break
        assert (
            assemble_report(pages).to_dict()
            == world.service.report().to_dict()
        )

    def test_done_page_has_no_cursor(self, world):
        page, cursor = world.client.scan_page(page_rows=10_000)
        assert page.done
        assert cursor is None

    def test_huge_page_rows_is_clamped_not_rejected(self, world):
        data = world.client._request(
            "GET", "/v1/scan?page_rows=99999999"
        )["data"]
        assert ScanPage.from_dict(data["page"]).done

    def test_queue_cursor_at_scan_endpoint_is_typed_400(self, world):
        with pytest.raises(InvalidCursorError):
            world.client.scan_page(cursor=encode_cursor((1, 2)))

    def test_scan_cursor_at_queue_endpoint_is_typed_400(self, world):
        scan_cursor = encode_scan_cursor(ScanState().to_dict())
        with pytest.raises(InvalidCursorError):
            world.client.unexplained_page(cursor=scan_cursor)

    def test_tampered_cursor_is_typed_400(self, world):
        with pytest.raises(InvalidCursorError):
            world.client.scan_page(cursor="!!!not-a-cursor")

    def test_bad_budgets_are_typed_400(self, world):
        from repro.api import InvalidRequestError

        with pytest.raises(InvalidRequestError, match="page_rows"):
            world.client._request("GET", "/v1/scan?page_rows=0")
        with pytest.raises(InvalidRequestError, match="quantum_ms"):
            world.client._request("GET", "/v1/scan?quantum_ms=0")
        with pytest.raises(InvalidRequestError):
            world.client._request(
                "POST", "/v1/scan", {"page_rows": "three"}
            )
        with pytest.raises(InvalidRequestError):
            world.client._request(
                "POST", "/v1/scan", {"quantum_seconds": -1}
            )


def test_scan_resumes_on_fresh_server_replica():
    """Kill the server mid-walk; a *new* server over a *new* service
    instance (same log) must continue from the wire cursor alone and
    produce the exact one-shot artifact."""
    first_service = _open_service(shards=2)
    expected = first_service.report().to_dict()
    pages = []
    with (
        AuditServer(first_service, port=0) as server,
        AuditClient(server.host, server.port) as client,
    ):
        page, cursor = client.scan_page(page_rows=6)
        pages.append(page)
        assert cursor is not None
    first_service.close()  # the original replica is gone

    replica = _open_service(shards=2)
    try:
        with (
            AuditServer(replica, port=0) as server,
            AuditClient(server.host, server.port) as client,
        ):
            for page in client.scan_pages(page_rows=6, cursor=cursor):
                pages.append(page)
    finally:
        replica.close()
    assert assemble_report(pages).to_dict() == expected


def test_wire_scan_survives_backdated_ingest():
    """The acceptance scenario end to end: suspend over the wire,
    back-date an unexplainable ingest, resume — the assembled report is
    the pre-ingest snapshot, the new row invisible to this walk."""
    service = _open_service(shards=1)
    try:
        with (
            AuditServer(service, port=0) as server,
            AuditClient(server.host, server.port) as client,
        ):
            before = service.report().to_dict()
            page, cursor = client.scan_page(page_rows=4)
            pages = [page]
            assert cursor is not None
            backdated = client.ingest(
                "zz-nobody", "zz-nobody", dt.datetime(2000, 1, 1)
            )
            assert backdated.suspicious
            for page in client.scan_pages(page_rows=4, cursor=cursor):
                pages.append(page)
            assert assemble_report(pages).to_dict() == before
            served = [
                v.lid for page in pages for v in page.unexplained
            ]
            assert backdated.lid not in served
    finally:
        service.close()
