"""Focused tests for small helpers not covered elsewhere."""

import pytest

from repro.db import (
    AttrRef,
    Condition,
    ConjunctiveQuery,
    QueryError,
    TupleVar,
)
from repro.db.executor import explain_query
from repro.evalx import PrecisionRecall


class TestExplainQueryHelper:
    def test_plan_summary(self, fig3_db):
        L, A = TupleVar("L", "Log"), TupleVar("A", "Appointments")
        q = ConjunctiveQuery.build(
            [L, A],
            [
                Condition(AttrRef("L", "Patient"), "=", AttrRef("A", "Patient")),
                Condition(AttrRef("A", "Doctor"), "=", AttrRef("L", "User")),
            ],
            [AttrRef("L", "Lid")],
        )
        text = explain_query(fig3_db, q)
        assert "2 vars" in text and "2 joins" in text and "0 filters" in text


class TestConditionHelpers:
    def test_flipped_inequality(self):
        c = Condition(AttrRef("A", "x"), "<", AttrRef("B", "y"))
        flipped = c.flipped()
        assert flipped.op == ">" and flipped.left == AttrRef("B", "y")

    def test_flip_literal_rejected(self):
        from repro.db import Literal

        c = Condition(AttrRef("A", "x"), "<", Literal(1))
        with pytest.raises(QueryError):
            c.flipped()

    def test_canonical_orders_equality(self):
        c = Condition(AttrRef("B", "y"), "=", AttrRef("A", "x"))
        canon = c.canonical()
        assert canon.left == AttrRef("A", "x")

    def test_is_join_classification(self):
        from repro.db import Literal

        join = Condition(AttrRef("A", "x"), "=", AttrRef("B", "y"))
        same_var = Condition(AttrRef("A", "x"), "=", AttrRef("A", "y"))
        literal = Condition(AttrRef("A", "x"), "=", Literal(1))
        ineq = Condition(AttrRef("A", "x"), "<", AttrRef("B", "y"))
        assert join.is_join
        assert not same_var.is_join
        assert not literal.is_join
        assert not ineq.is_join


class TestMetricsHelpers:
    def test_as_row_keys(self):
        row = PrecisionRecall(1, 1, 2, 2).as_row()
        assert set(row) == {"precision", "recall", "recall_normalized"}

    def test_str_contains_counts(self):
        text = str(PrecisionRecall(3, 1, 10, 8))
        assert "3/10 real" in text and "1 fake" in text


class TestQueryAccessors:
    def test_var_lookup(self):
        L = TupleVar("L", "Log")
        q = ConjunctiveQuery.build([L], [], [AttrRef("L", "Lid")])
        assert q.var("L") is L or q.var("L") == L
        with pytest.raises(QueryError):
            q.var("X")

    def test_join_vs_filter_split(self):
        from repro.db import Literal

        L, A = TupleVar("L", "Log"), TupleVar("A", "Appointments")
        q = ConjunctiveQuery.build(
            [L, A],
            [
                Condition(AttrRef("L", "Patient"), "=", AttrRef("A", "Patient")),
                Condition(AttrRef("A", "Date"), ">", Literal(0)),
            ],
            [AttrRef("L", "Lid")],
        )
        assert len(q.join_conditions()) == 1
        assert len(q.filter_conditions()) == 1


class TestSimulationResultHelpers:
    def test_lids_tagged_multiple(self):
        from repro.ehr import SimulationConfig, simulate

        sim = simulate(SimulationConfig.tiny(seed=4))
        both = sim.lids_tagged("noise", "snoop")
        assert both == sim.lids_tagged("noise") | sim.lids_tagged("snoop")

    def test_group_profile_top_departments(self):
        from repro.evalx import GroupProfile

        profile = GroupProfile(
            group_id=1,
            size=5,
            departments=(("A", 3), ("B", 1), ("C", 1)),
        )
        assert profile.top_departments(2) == [("A", 3), ("B", 1)]
