"""Tests for the evaluation harness: metrics, log slicing, and the
per-figure experiment functions on a tiny study."""

import pytest

from repro.core import MiningConfig, OneWayMiner
from repro.ehr import DATASET_A, SimulationConfig
from repro.evalx import (
    CareWebStudy,
    PrecisionRecall,
    event_frequency,
    first_access_lids,
    group_composition,
    group_predictive_power,
    handcrafted_recall,
    lids_on_days,
    lids_with_events,
    log_epoch,
    mined_predictive_power,
    mining_performance,
    overall_coverage,
    patients_with_events,
    repeat_access_lids,
    restrict_log,
    score_explained,
    template_stability,
)


@pytest.fixture(scope="module")
def study():
    return CareWebStudy.prepare(SimulationConfig.tiny())


class TestMetrics:
    def test_recall(self):
        pr = PrecisionRecall(50, 5, 100, 80)
        assert pr.recall == pytest.approx(0.5)

    def test_precision(self):
        pr = PrecisionRecall(50, 5, 100, 80)
        assert pr.precision == pytest.approx(50 / 55)

    def test_normalized_recall(self):
        pr = PrecisionRecall(50, 5, 100, 80)
        assert pr.normalized_recall == pytest.approx(50 / 80)

    def test_vacuous_precision_is_one(self):
        assert PrecisionRecall(0, 0, 10, 10).precision == 1.0

    def test_zero_denominators(self):
        pr = PrecisionRecall(0, 0, 0, 0)
        assert pr.recall == 0.0 and pr.normalized_recall == 0.0

    def test_score_explained(self):
        pr = score_explained({1, 2, 99}, real_lids={1, 2, 3}, fake_lids={99})
        assert pr.explained_real == 2 and pr.explained_fake == 1
        assert pr.total_real_with_events == 3  # defaults to real set

    def test_str(self):
        assert "P=" in str(PrecisionRecall(1, 0, 2, 2))


class TestAccessSlicing:
    def test_first_plus_repeat_partition(self, study):
        first = first_access_lids(study.db)
        repeat = repeat_access_lids(study.db)
        all_lids = study.db.table("Log").distinct_values("Lid")
        assert first | repeat == all_lids
        assert not (first & repeat)

    def test_first_is_earliest_per_pair(self, study):
        log = study.db.table("Log")
        first = first_access_lids(study.db)
        best = {}
        for lid, date, user, patient in log.rows():
            key = (user, patient)
            if key not in best or (date, lid) < best[key][:2]:
                best[key] = (date, lid)
        assert first == {lid for _, lid in best.values()}

    def test_days_partition_log(self, study):
        total = set()
        for day in range(1, study.sim.config.n_days + 1):
            total |= lids_on_days(study.db, [day])
        assert total == study.db.table("Log").distinct_values("Lid")

    def test_train_test_disjoint(self, study):
        assert not (study.train_lids() & study.test_lids())

    def test_restrict_log_shares_tables(self, study):
        derived = restrict_log(study.db, study.test_lids())
        assert derived.table("Appointments") is study.db.table("Appointments")
        assert len(derived.table("Log")) == len(study.test_lids())

    def test_log_epoch(self, study):
        epoch = log_epoch(study.db)
        assert epoch == min(study.db.table("Log").column_values("Date"))

    def test_patients_with_events(self, study):
        covered = patients_with_events(study.db, DATASET_A)
        appts = study.db.table("Appointments").distinct_values("Patient")
        assert appts <= covered

    def test_lids_with_events_subset(self, study):
        lids = lids_with_events(study.db, DATASET_A)
        assert lids <= study.db.table("Log").distinct_values("Lid")


class TestStudyContext:
    def test_mining_db_is_train_firsts(self, study):
        db = study.mining_db()
        lids = db.table("Log").distinct_values("Lid")
        assert lids == study.train_first_lids()

    def test_groups_table_exists(self, study):
        assert study.db.has_table("Groups")
        assert len(study.db.table("Groups")) > 0

    def test_combined_db_default_size(self, study):
        combined, real, fake = study.combined_db()
        assert len(fake) == len(study.test_first_lids())
        assert len(combined.table("Log")) == len(real) + len(fake)

    def test_combined_db_cached(self, study):
        assert study.combined_db() is study.combined_db()


class TestExperimentFunctions:
    def test_event_frequency_bounds(self, study):
        freqs = event_frequency(study.db)
        assert set(freqs) == {"Appt", "Visit", "Document", "Repeat Access", "All"}
        for v in freqs.values():
            assert 0.0 <= v <= 1.0
        assert freqs["All"] >= max(
            freqs["Appt"], freqs["Visit"], freqs["Document"]
        )

    def test_event_frequency_first_accesses(self, study):
        freqs = event_frequency(
            study.db, lids=study.first_lids(), include_repeat=False
        )
        assert "Repeat Access" not in freqs
        # first accesses are strictly harder to cover than all accesses
        assert freqs["All"] <= event_frequency(study.db)["All"]

    def test_handcrafted_recall_bounds(self, study):
        recalls = handcrafted_recall(study.db)
        assert recalls["All w/Dr."] <= 1.0
        assert recalls["All w/Dr."] >= recalls["Appt w/Dr."]

    def test_handcrafted_first_lower_than_all(self, study):
        all_r = handcrafted_recall(study.db, include_repeat=False)
        first_r = handcrafted_recall(
            study.db, lids=study.first_lids(), include_repeat=False
        )
        assert first_r["All w/Dr."] <= all_r["All w/Dr."] + 1e-9

    def test_group_composition_profiles(self, study):
        profiles = group_composition(study, depth=1, top_groups=2)
        assert profiles
        for prof in profiles:
            assert prof.size == sum(n for _, n in prof.departments)
            counts = [n for _, n in prof.departments]
            assert counts == sorted(counts, reverse=True)

    def test_group_predictive_power_rows(self, study):
        rows = group_predictive_power(study)
        labels = [r.label for r in rows]
        assert labels[0] == "0" and labels[-1] == "Same Dept."
        # hierarchy refinement: deeper groups explain subsets, so both the
        # real and fake explained counts shrink monotonically with depth
        # (precision is a ratio of the two and need not be monotone)
        depth_rows = rows[:-1]
        for shallow, deep in zip(depth_rows, depth_rows[1:]):
            assert deep.scores.explained_real <= shallow.scores.explained_real
            assert deep.scores.explained_fake <= shallow.scores.explained_fake

    def test_overall_coverage_range(self, study):
        cov = overall_coverage(study)
        assert 0.5 < cov <= 1.0

    def test_mining_performance_algorithms_agree(self, study):
        cfg = MiningConfig(support_fraction=0.02, max_length=3, max_tables=3)
        results = mining_performance(study, config=cfg, bridge_lengths=(2,))
        assert set(results) == {"one-way", "two-way", "bridge-2"}
        sigs = [r.signatures() for r in results.values()]
        assert all(s == sigs[0] for s in sigs)
        for result in results.values():
            series = result.cumulative_time_by_length()
            values = [series[k] for k in sorted(series)]
            assert values == sorted(values)

    def test_mined_predictive_power_rows(self, study):
        cfg = MiningConfig(support_fraction=0.02, max_length=3, max_tables=3)
        mined = OneWayMiner(study.mining_db(), study.mining_graph(), cfg).mine()
        rows = mined_predictive_power(study, mining_result=mined)
        assert rows[-1].label == "All"
        # the All row unions every length: recall >= each length's recall
        for row in rows[:-1]:
            assert rows[-1].scores.recall >= row.scores.recall - 1e-9

    def test_template_stability_counts(self, study):
        cfg = MiningConfig(support_fraction=0.02, max_length=2, max_tables=3)
        stability = template_stability(study, config=cfg)
        assert "Days 1-6" in stability.periods
        for length, n_common in stability.common.items():
            # common templates cannot exceed any period's count
            for period in stability.periods:
                count = stability.counts.get((period, length), 0)
                assert n_common <= count
