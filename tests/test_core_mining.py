"""Tests for the three mining algorithms and the support evaluator.

Key properties from the paper:

* Example 3.1 support values (template A 50%, template B 100%);
* all three algorithms return the same template set (Section 5.3.3);
* support monotonicity justifies bottom-up pruning (Section 3.2);
* the optimizations never change the mined output (Section 3.2.1).
"""

import pytest

from repro.core import (
    BridgedMiner,
    MiningConfig,
    OneWayMiner,
    Path,
    SchemaAttr,
    SchemaEdge,
    EdgeKind,
    SupportConfig,
    SupportEvaluator,
    TwoWayMiner,
)


def edge(t1, a1, t2, a2, kind=EdgeKind.ADMIN):
    return SchemaEdge(SchemaAttr(t1, a1), SchemaAttr(t2, a2), kind)


CFG = MiningConfig(support_fraction=0.5, max_length=4, max_tables=3)


class TestSupportEvaluator:
    def test_support_values_match_paper(self, fig3_db, fig3_graph):
        ev = SupportEvaluator(fig3_db)
        template_a = Path.forward_seed(
            fig3_graph, edge("Log", "Patient", "Appointments", "Patient")
        ).extend_forward(edge("Appointments", "Doctor", "Log", "User"))
        assert ev.support(template_a) == 1  # 50% of the 2-entry log

    def test_cache_hit_on_reversed_path(self, fig3_db, fig3_graph):
        ev = SupportEvaluator(fig3_db)
        fwd = Path.forward_seed(
            fig3_graph, edge("Log", "Patient", "Appointments", "Patient")
        ).extend_forward(edge("Appointments", "Doctor", "Log", "User"))
        bwd = Path.backward_seed(
            fig3_graph, edge("Appointments", "Doctor", "Log", "User")
        ).extend_backward(edge("Log", "Patient", "Appointments", "Patient"))
        ev.support(fwd)
        assert ev.stats.cache_hits == 0
        ev.support(bwd)
        assert ev.stats.cache_hits == 1
        assert ev.stats.queries_run == 1

    def test_cache_disabled(self, fig3_db, fig3_graph):
        ev = SupportEvaluator(fig3_db, config=SupportConfig(use_cache=False))
        p = Path.forward_seed(
            fig3_graph, edge("Log", "Patient", "Appointments", "Patient")
        )
        ev.support(p)
        ev.support(p)
        assert ev.stats.queries_run == 2 and ev.stats.cache_hits == 0

    def test_skip_nonselective_partial(self, fig3_db, fig3_graph):
        # threshold tiny -> estimator expects way more -> skip
        ev = SupportEvaluator(
            fig3_db, config=SupportConfig(use_skip=True, skip_constant=1.0)
        )
        p = Path.forward_seed(
            fig3_graph, edge("Log", "Patient", "Appointments", "Patient")
        )
        assert ev.support_or_skip(p, threshold=0.01) is None
        assert ev.stats.skipped == 1

    def test_explanations_never_skipped(self, fig3_db, fig3_graph):
        ev = SupportEvaluator(
            fig3_db, config=SupportConfig(use_skip=True, skip_constant=0.001)
        )
        closed = Path.forward_seed(
            fig3_graph, edge("Log", "Patient", "Appointments", "Patient")
        ).extend_forward(edge("Appointments", "Doctor", "Log", "User"))
        assert ev.support_or_skip(closed, threshold=0.0001) == 1
        assert ev.stats.skipped == 0

    def test_support_monotonic_under_extension(self, fig3_db, fig3_graph):
        ev = SupportEvaluator(fig3_db)
        p1 = Path.forward_seed(
            fig3_graph, edge("Log", "Patient", "Appointments", "Patient")
        )
        p2 = p1.extend_forward(edge("Appointments", "Doctor", "Log", "User"))
        assert ev.support(p2) <= ev.support(p1)


class TestMinersAgree:
    def mine_all(self, db, graph, cfg=CFG):
        miners = [
            OneWayMiner(db, graph, cfg),
            TwoWayMiner(db, graph, cfg),
            BridgedMiner(db, graph, cfg, bridge_length=2),
            BridgedMiner(db, graph, cfg, bridge_length=3),
        ]
        return [m.mine() for m in miners]

    def test_same_template_sets_fig3(self, fig3_db, fig3_graph):
        results = self.mine_all(fig3_db, fig3_graph)
        sigs = [r.signatures() for r in results]
        assert sigs[0] == sigs[1] == sigs[2] == sigs[3]
        assert len(sigs[0]) == 3

    def test_same_template_sets_hospital(self, hospital_db, hospital_graph):
        cfg = MiningConfig(support_fraction=0.2, max_length=4, max_tables=3)
        results = self.mine_all(hospital_db, hospital_graph, cfg)
        sigs = [r.signatures() for r in results]
        assert sigs[0] == sigs[1] == sigs[2] == sigs[3]
        assert sigs[0]  # found something

    def test_supports_agree_across_algorithms(self, fig3_db, fig3_graph):
        results = self.mine_all(fig3_db, fig3_graph)
        by_sig = [
            {m.template.signature(): m.support for m in r.templates}
            for r in results
        ]
        assert by_sig[0] == by_sig[1] == by_sig[2] == by_sig[3]


class TestPaperExample31:
    def test_template_a_and_b_mined_with_supports(self, fig3_db, fig3_graph):
        result = OneWayMiner(fig3_db, fig3_graph, CFG).mine()
        by_len = result.templates_by_length()
        # length 2: template (A), support 1 (50%)
        assert [m.support for m in by_len[2]] == [1]
        # length 4: template (B), support 2 (100%)
        assert [m.support for m in by_len[4]] == [2]

    def test_threshold_prunes(self, fig3_db, fig3_graph):
        # with s = 100%, template (A) (support 50%) must disappear
        cfg = MiningConfig(support_fraction=1.0, max_length=4, max_tables=3)
        result = OneWayMiner(fig3_db, fig3_graph, cfg).mine()
        assert 2 not in result.templates_by_length()
        assert 4 in result.templates_by_length()

    def test_max_length_respected(self, fig3_db, fig3_graph):
        cfg = MiningConfig(support_fraction=0.5, max_length=2, max_tables=3)
        result = OneWayMiner(fig3_db, fig3_graph, cfg).mine()
        assert all(m.length <= 2 for m in result.templates)

    def test_max_tables_respected(self, fig3_db, fig3_graph):
        # T=2 forbids Log+Appointments+Doctor_Info paths
        cfg = MiningConfig(support_fraction=0.5, max_length=4, max_tables=2)
        result = OneWayMiner(fig3_db, fig3_graph, cfg).mine()
        assert all(
            len(m.template.tables_referenced()) <= 2 for m in result.templates
        )
        assert 4 not in result.templates_by_length()

    def test_repeat_access_mined_from_self_joins(
        self, hospital_db, hospital_graph
    ):
        cfg = MiningConfig(support_fraction=0.2, max_length=2, max_tables=3)
        result = OneWayMiner(hospital_db, hospital_graph, cfg).mine()
        repeat = [
            m
            for m in result.templates
            if m.template.tables_referenced() == {"Log"}
        ]
        assert len(repeat) == 1
        # Dave accessed Alice twice -> both lids explained by repeat access
        assert repeat[0].support >= 2


class TestOptimizationInvariance:
    """Section 3.2.1: optimizations change performance, never output."""

    @pytest.mark.parametrize(
        "support_cfg",
        [
            SupportConfig(use_cache=False),
            SupportConfig(use_skip=False),
            SupportConfig(distinct_reduction=False),
            SupportConfig(use_cache=False, use_skip=False, distinct_reduction=False),
            SupportConfig(use_skip=True, skip_constant=0.5),
            SupportConfig(estimator_error_factor=25.0),
            SupportConfig(estimator_error_factor=0.04),
        ],
    )
    def test_output_invariant(self, fig3_db, fig3_graph, support_cfg):
        baseline = OneWayMiner(fig3_db, fig3_graph, CFG).mine()
        cfg = MiningConfig(
            support_fraction=0.5, max_length=4, max_tables=3, support=support_cfg
        )
        variant = OneWayMiner(fig3_db, fig3_graph, cfg).mine()
        assert variant.signatures() == baseline.signatures()


class TestMiningResult:
    def test_cumulative_time_monotone(self, fig3_db, fig3_graph):
        result = TwoWayMiner(fig3_db, fig3_graph, CFG).mine()
        series = result.cumulative_time_by_length()
        values = [series[k] for k in sorted(series)]
        assert values == sorted(values)
        assert set(series) == {1, 2, 3, 4}

    def test_round_stats_counts(self, fig3_db, fig3_graph):
        result = OneWayMiner(fig3_db, fig3_graph, CFG).mine()
        total_candidates = sum(r.candidates for r in result.rounds)
        assert total_candidates >= len(result.templates)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MiningConfig(support_fraction=0)
        with pytest.raises(ValueError):
            MiningConfig(max_length=0)
        with pytest.raises(ValueError):
            MiningConfig(max_tables=0)
        with pytest.raises(ValueError):
            BridgedMiner(None, None, bridge_length=0)
