"""Tests for the one-shot reproduction report generator."""

import io

import pytest

from repro.ehr import SimulationConfig
from repro.evalx import write_report


@pytest.fixture(scope="module")
def report_text():
    buffer = io.StringIO()
    write_report(buffer, config=SimulationConfig.tiny(seed=2))
    return buffer.getvalue()


class TestWriteReport:
    def test_title_and_workload(self, report_text):
        assert report_text.startswith(
            "# Explanation-Based Auditing — reproduction report"
        )
        assert "*Workload*" in report_text

    def test_all_sections_present(self, report_text):
        for section in (
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Figure 9",
            "Figures 10-11",
            "Figure 12",
            "Figure 14",
            "Table 1",
            "Headline",
        ):
            assert section in report_text, section

    def test_mining_performance_optional(self, report_text):
        assert "Figure 13" not in report_text
        buffer = io.StringIO()
        write_report(
            buffer,
            config=SimulationConfig.tiny(seed=2),
            include_mining_performance=True,
        )
        assert "Figure 13" in buffer.getvalue()

    def test_markdown_tables_well_formed(self, report_text):
        for line in report_text.splitlines():
            if line.startswith("|"):
                assert line.rstrip().endswith("|")

    def test_headline_is_percentage(self, report_text):
        headline = report_text.split("## Headline")[1]
        assert "%" in headline and "paper: over 94%" in headline

    def test_returns_study(self):
        buffer = io.StringIO()
        study = write_report(buffer, config=SimulationConfig.tiny(seed=2))
        assert study.db.has_table("Groups")
