"""End-to-end integration tests: the full paper pipeline on a tiny
hospital — simulate, infer groups, mine with every algorithm, explain,
and detect misuse — with cross-checks against the simulator's hidden
ground truth."""

import pytest

from repro.audit import (
    ComplianceAuditor,
    all_event_user_templates,
    group_templates,
    repeat_access_template,
)
from repro.core import (
    BridgedMiner,
    ExplanationEngine,
    MiningConfig,
    OneWayMiner,
    TwoWayMiner,
)
from repro.ehr import SimulationConfig, build_careweb_graph
from repro.evalx import (
    CareWebStudy,
    event_frequency,
    group_predictive_power,
    mined_predictive_power,
    overall_coverage,
    template_stability,
)


@pytest.fixture(scope="module")
def study():
    return CareWebStudy.prepare(SimulationConfig.small(seed=21))


@pytest.fixture(scope="module")
def mining_result(study):
    config = MiningConfig(support_fraction=0.01, max_length=4, max_tables=3)
    return OneWayMiner(study.mining_db(), study.mining_graph(), config).mine()


class TestFullPipeline:
    def test_all_algorithms_agree_on_careweb(self, study):
        config = MiningConfig(support_fraction=0.02, max_length=4, max_tables=3)
        db, graph = study.mining_db(), study.mining_graph()
        results = [
            OneWayMiner(db, graph, config).mine(),
            TwoWayMiner(db, graph, config).mine(),
            BridgedMiner(db, graph, config, bridge_length=2).mine(),
            BridgedMiner(db, graph, config, bridge_length=3).mine(),
        ]
        sigs = [r.signatures() for r in results]
        assert all(s == sigs[0] for s in sigs)
        supports = [
            {m.template.signature(): m.support for m in r.templates}
            for r in results
        ]
        assert all(s == supports[0] for s in supports)

    def test_mined_lengths_shape(self, mining_result):
        by_length = mining_result.templates_by_length()
        # the paper's Table 1 shape: len3 dominates, len2 and len4 small
        assert len(by_length.get(3, [])) > len(by_length.get(2, []))
        assert len(by_length.get(3, [])) > len(by_length.get(4, []))
        assert len(by_length.get(2, [])) >= 5

    def test_group_templates_mined(self, mining_result):
        tables = [m.template.tables_referenced() for m in mining_result.templates]
        assert any("Groups" in t for t in tables)
        assert any("Users" in t for t in tables)

    def test_headline_coverage(self, study):
        # the paper's flagship number is >94%; the tiny hospital with its
        # deliberate extract gaps still explains the vast majority
        assert overall_coverage(study) > 0.85

    def test_event_coverage_shape(self, study):
        all_acc = event_frequency(study.db)
        first_acc = event_frequency(
            study.db, lids=study.first_lids(), include_repeat=False
        )
        assert all_acc["All"] > first_acc["All"]

    def test_snooping_lands_in_queue(self, study):
        graph = build_careweb_graph(study.db)
        templates = all_event_user_templates(graph)
        templates.append(repeat_access_template(graph))
        templates.extend(group_templates(graph, depth=1))
        engine = ExplanationEngine(study.db, templates)
        queue = {e.lid for e in ComplianceAuditor(engine).queue()}
        snoops = study.sim.lids_tagged("snoop")
        assert snoops, "fixture must script snooping incidents"
        assert snoops <= queue

    def test_queue_is_small_fraction(self, study):
        graph = build_careweb_graph(study.db)
        templates = all_event_user_templates(graph)
        templates.append(repeat_access_template(graph))
        templates.extend(group_templates(graph, depth=1))
        engine = ExplanationEngine(study.db, templates)
        total = len(engine.all_lids())
        assert len(engine.unexplained_lids()) < total * 0.2

    def test_mined_power_improves_with_length(self, study, mining_result):
        rows = mined_predictive_power(study, mining_result=mining_result)
        by_label = {r.label: r.scores for r in rows}
        assert by_label["All"].recall >= by_label["2"].recall

    def test_group_power_depth1_beats_samedept(self, study):
        rows = group_predictive_power(study)
        by_label = {r.label: r.scores for r in rows}
        assert by_label["1"].recall > by_label["Same Dept."].recall

    def test_stability_common_core(self, study):
        config = MiningConfig(support_fraction=0.02, max_length=3, max_tables=3)
        stability = template_stability(study, config=config)
        assert stability.common.get(2, 0) >= 3

    def test_explain_known_access(self, study, mining_result):
        from repro.audit import with_careweb_description

        engine = ExplanationEngine(
            study.db,
            [with_careweb_description(m.template) for m in mining_result.templates],
        )
        doctor_lids = sorted(study.sim.lids_tagged("appt-doctor"))
        explained_any = 0
        for lid in doctor_lids[:25]:
            instances = engine.explain(lid)
            if instances:
                explained_any += 1
                assert instances[0].path_length <= instances[-1].path_length
                assert "accessed" in instances[0].render()
        assert explained_any > 10
