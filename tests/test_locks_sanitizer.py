"""The REPRO_SANITIZE runtime half of the lock discipline: every
violation shape the static RL006 rule catches at lint time must raise
:class:`LockSanitizerError` at run time instead of deadlocking."""

import os
import threading

import pytest

from repro.api.locks import (
    LockSanitizerError,
    RWLock,
    consume_fork_violations,
    held_locks_in_thread,
)


@pytest.fixture
def sanitize(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")


class TestViolationsRaise:
    def test_upgrade_attempt(self, sanitize):
        lock = RWLock()
        with lock.read_locked():
            with pytest.raises(LockSanitizerError, match="upgrade"):
                lock.acquire_write()

    def test_reentrant_read(self, sanitize):
        lock = RWLock()
        with lock.read_locked():
            with pytest.raises(LockSanitizerError, match="reentrant read"):
                lock.acquire_read()

    def test_read_after_write(self, sanitize):
        lock = RWLock()
        with lock.write_locked():
            with pytest.raises(LockSanitizerError, match="holding the write"):
                lock.acquire_read()

    def test_reentrant_write(self, sanitize):
        lock = RWLock()
        with lock.write_locked():
            with pytest.raises(LockSanitizerError, match="reentrant write"):
                lock.acquire_write()


class TestCleanPatternsPass:
    def test_sequential_read_then_write(self, sanitize):
        lock = RWLock()
        with lock.read_locked():
            pass
        with lock.write_locked():
            pass
        assert held_locks_in_thread() == {}

    def test_two_distinct_locks_may_nest(self, sanitize):
        a, b = RWLock(), RWLock()
        with a.read_locked(), b.write_locked():
            assert len(held_locks_in_thread()) == 2
        assert held_locks_in_thread() == {}

    def test_concurrent_readers_in_threads(self, sanitize):
        lock = RWLock()
        errors = []

        def reader():
            try:
                with lock.read_locked():
                    pass
            except LockSanitizerError as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        lock = RWLock()
        # reentrant reads don't deadlock by themselves; with the
        # sanitizer off they must not raise either
        lock.acquire_read()
        lock.acquire_read()
        lock.release_read()
        lock.release_read()
        assert held_locks_in_thread() == {}

    def test_release_discards_even_if_env_flips_mid_hold(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        lock = RWLock()
        lock.acquire_read()
        monkeypatch.delenv("REPRO_SANITIZE")
        lock.release_read()
        assert held_locks_in_thread() == {}


@pytest.mark.skipif(not hasattr(os, "fork"), reason="platform has no fork")
class TestForkGuard:
    def test_fork_while_held_is_recorded(self, sanitize):
        lock = RWLock()
        with lock.read_locked():
            pass  # install the guard via a sanitized acquisition
        lock.acquire_read()
        try:
            pid = os.fork()
            if pid == 0:  # pragma: no cover - child exits immediately
                os._exit(0)
            os.waitpid(pid, 0)
        finally:
            lock.release_read()
        violations = consume_fork_violations()
        assert len(violations) == 1
        assert "fork() while this thread holds an RWLock" in violations[0]

    def test_fork_after_release_is_clean(self, sanitize):
        lock = RWLock()
        with lock.write_locked():
            pass
        pid = os.fork()
        if pid == 0:  # pragma: no cover - child exits immediately
            os._exit(0)
        _, status = os.waitpid(pid, 0)
        assert status == 0
        assert consume_fork_violations() == []
