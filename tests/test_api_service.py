"""The AuditService facade: lifecycle, typed requests, shim equivalence,
alert policy, and the threaded reader/writer smoke test."""

import threading
import warnings

import pytest

from repro.api import (
    AuditConfig,
    AuditService,
    ExplainRequest,
    MineRequest,
    ReviewStatus,
    TemplateLibrary,
)
from repro.audit.handcrafted import (
    event_group_template,
    event_user_template,
    repeat_access_template,
)
from repro.core.engine import ExplanationEngine
from repro.core.graph import SchemaGraph
from repro.db import ColumnType, Database, TableSchema


def _build_hospital() -> Database:
    """A private copy of the conftest hospital (the threaded test needs
    two identical databases: one concurrent, one serial reference)."""
    db = Database("hospital")
    log = db.create_table(
        TableSchema.build(
            "Log",
            [("Lid", ColumnType.INT), ("Date", ColumnType.INT), "User", "Patient"],
            primary_key=["Lid"],
        )
    )
    appts = db.create_table(
        TableSchema.build(
            "Appointments", ["Patient", "Doctor", ("Date", ColumnType.INT)]
        )
    )
    groups = db.create_table(
        TableSchema.build(
            "Groups",
            [("Group_Depth", ColumnType.INT), ("Group_id", ColumnType.INT), "User"],
        )
    )
    log.insert_many(
        [
            (100, 1, "Nick", "Alice"),
            (116, 2, "Dave", "Alice"),
            (127, 3, "Ron", "Alice"),
            (130, 9, "Dave", "Alice"),
            (900, 4, "Eve", "Bob"),
        ]
    )
    appts.insert_many([("Alice", "Dave", 1), ("Bob", "Sam", 2)])
    groups.insert_many(
        [
            (1, 10, "Dave"),
            (1, 10, "Nick"),
            (1, 10, "Ron"),
            (1, 11, "Sam"),
            (1, 12, "Eve"),
        ]
    )
    return db


def _graph(db: Database) -> SchemaGraph:
    from repro.core.edges import SchemaAttr

    graph = SchemaGraph(db)
    graph.add_relationship(
        SchemaAttr("Log", "Patient"), SchemaAttr("Appointments", "Patient")
    )
    graph.add_relationship(
        SchemaAttr("Appointments", "Doctor"), SchemaAttr("Log", "User")
    )
    graph.add_relationship(
        SchemaAttr("Appointments", "Doctor"), SchemaAttr("Groups", "User")
    )
    graph.add_relationship(
        SchemaAttr("Groups", "User"), SchemaAttr("Log", "User")
    )
    graph.allow_self_join("Groups", "Group_id")
    graph.allow_self_join("Log", "Patient")
    graph.allow_self_join("Log", "User")
    return graph


def _templates(db: Database):
    graph = _graph(db)
    return [
        event_user_template(graph, "Appointments", "Doctor"),
        repeat_access_template(graph),
        event_group_template(graph, "Appointments", "Doctor", depth=1),
    ]


@pytest.fixture
def service(hospital_db):
    return AuditService.open(hospital_db, templates=_templates(hospital_db))


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_open_from_database(self, service, hospital_db):
        assert service.db is hospital_db
        assert len(service.templates()) == 3

    def test_open_from_csv_directory(self, hospital_db, tmp_path):
        from repro.api import save_database

        path = str(tmp_path / "hospital")
        save_database(hospital_db, path)
        reopened = AuditService.open(path, templates=())
        assert reopened.stats()["log_rows"] == 5

    def test_context_manager_closes(self, hospital_db):
        with AuditService.open(hospital_db, templates=()) as service:
            service.coverage()
        with pytest.raises(RuntimeError, match="closed"):
            service.coverage()
        with pytest.raises(RuntimeError, match="closed"):
            service.ingest("Dave", "Alice", 50)

    def test_open_with_library_prefers_approved(self, hospital_db):
        templates = _templates(hospital_db)
        library = TemplateLibrary()
        library.add(templates[0], ReviewStatus.APPROVED)
        library.add(templates[1], ReviewStatus.SUGGESTED)
        service = AuditService.open(hospital_db, templates=library)
        assert len(service.templates()) == 1

    def test_open_with_unreviewed_library_falls_back_to_suggested(
        self, hospital_db
    ):
        library = TemplateLibrary()
        for t in _templates(hospital_db):
            library.add(t, ReviewStatus.SUGGESTED)
        service = AuditService.open(hospital_db, templates=library)
        assert len(service.templates()) == 3

    def test_open_with_library_path(self, hospital_db, tmp_path):
        library = TemplateLibrary()
        for t in _templates(hospital_db):
            library.add(t, ReviewStatus.APPROVED)
        path = str(tmp_path / "lib.json")
        library.dump(path)
        service = AuditService.open(hospital_db, templates=path)
        assert len(service.templates()) == 3

    def test_save_then_reopen_templates(self, service, hospital_db, tmp_path):
        path = str(tmp_path / "prod.json")
        service.save_templates(path)
        reopened = AuditService.open(hospital_db, templates=path)
        assert {t.signature() for t in reopened.templates()} == {
            t.signature() for t in service.templates()
        }


# ----------------------------------------------------------------------
# typed requests / responses
# ----------------------------------------------------------------------
class TestExplain:
    def test_bare_lid_and_request_agree(self, service):
        bare = service.explain(116)
        typed = service.explain(ExplainRequest(lid=116))
        assert bare == typed
        assert bare.explained and not bare.suspicious

    def test_limit(self, service):
        assert len(service.explain(ExplainRequest(lid=116, limit=1)).explanations) == 1

    def test_unexplained_access(self, service):
        result = service.explain(900)
        assert result.suspicious
        assert result.to_dict() == {
            "lid": 900,
            "explained": False,
            "explanations": [],
        }

    def test_request_validation(self):
        with pytest.raises(ValueError):
            ExplainRequest(lid=None)
        with pytest.raises(ValueError):
            ExplainRequest(lid=1, limit=0)

    def test_to_dict_is_json_ready(self, service):
        import json

        json.dumps(service.explain(116).to_dict())


class TestReports:
    def test_report_queue_and_risk(self, service):
        report = service.report()
        assert report.total == 5
        assert [e.lid for e in report.queue] == [900]
        assert report.user_risk == (("Eve", 1),)
        assert report.explained_count == 4
        assert report.coverage == pytest.approx(0.8)
        assert "review queue" in report.summary()

    def test_report_limit_caps_queue_not_risk(self, service):
        report = service.report(limit=0)
        assert report.queue == ()
        assert report.unexplained_count == 1
        assert report.user_risk == (("Eve", 1),)

    def test_patient_report(self, service):
        report = service.patient_report("Alice")
        assert [e.lid for e in report.entries] == [100, 116, 127, 130]
        assert not any(e.suspicious for e in report.entries)
        rendered = service.render_patient_report("Alice", limit=2)
        assert "Access report for patient Alice" in rendered
        assert "116" in rendered and "130" not in rendered

    def test_stats_surface(self, service):
        stats = service.stats()
        assert stats["log_rows"] == 5
        assert stats["templates"] == 3
        assert stats["plan_cache"]["size"] >= 1
        assert stats["lock"]["read_acquisitions"] >= 1
        assert stats["ingest"] is None  # nothing streamed yet
        assert stats["config"]["use_batch_path"] is True


# ----------------------------------------------------------------------
# writers: ingest / mine / add_templates
# ----------------------------------------------------------------------
class TestIngest:
    def test_ingest_explained(self, service):
        result = service.ingest("Dave", "Alice", 50)
        assert result.explained and not result.alerted
        assert result.lid == 901  # next free integer id
        assert "appointment" in result.headline().lower() or result.explanations

    def test_ingest_unexplained_alerts(self, service):
        seen = []
        service.on_alert(seen.append)
        result = service.ingest("Mallory", "Bob", 51)
        assert result.suspicious and result.alerted
        assert seen == [result]
        assert service.stats()["ingest"]["alerts"] == 1

    def test_alert_policy_off(self, hospital_db):
        service = AuditService.open(
            hospital_db,
            templates=_templates(hospital_db),
            config=AuditConfig(alert_on_unexplained=False),
        )
        seen = []
        service.on_alert(seen.append)
        result = service.ingest("Mallory", "Bob", 51)
        assert result.suspicious and not result.alerted
        assert seen == []
        # unexplained accesses still land in the review queue
        assert result.lid in {e.lid for e in service.report().queue}

    def test_ingest_many_matches_serial(self):
        accesses = [
            ("Dave", "Alice", 50),
            ("Mallory", "Bob", 51),
            ("Dave", "Alice", 52),
        ]
        batch_svc = AuditService.open(
            _build_hospital(), templates=_templates(_build_hospital())
        )
        serial_svc = AuditService.open(
            _build_hospital(), templates=_templates(_build_hospital())
        )
        batched = batch_svc.ingest_many(accesses)
        serial = [serial_svc.ingest(u, p, d) for u, p, d in accesses]
        assert [r.to_dict() for r in batched] == [r.to_dict() for r in serial]
        assert batch_svc.report().to_dict() == serial_svc.report().to_dict()

    def test_monitor_stats_before_any_ingest(self, hospital_db):
        """stats() must not divide by zero on an empty stream."""
        from repro.audit.streaming import AccessMonitor

        monitor = AccessMonitor(ExplanationEngine(hospital_db))
        assert monitor.alert_rate() == 0.0
        stats = monitor.stats()
        assert stats["seen"] == 0
        assert stats["alert_rate"] == 0.0
        assert stats["avg_ingest_queries"] == 0.0
        assert stats["avg_ingest_seconds"] == 0.0


class TestMine:
    def test_mine_and_register(self, hospital_db):
        service = AuditService.open(
            hospital_db, templates=(), config=AuditConfig(eager_warm=False)
        )
        result = service.mine(
            MineRequest(support_fraction=0.2, max_length=2, register=True),
            graph=_graph(hospital_db),
        )
        assert result.templates, "expected at least the appointment template"
        assert len(service.templates()) == len(result.templates)
        assert result.to_dict()["algorithm"] == "one-way"

    def test_mine_request_validation(self):
        with pytest.raises(ValueError):
            MineRequest(algorithm="deep-learning")
        with pytest.raises(ValueError):
            MineRequest(support_fraction=0.0)

    def test_mined_library_round_trip(self, hospital_db, tmp_path):
        service = AuditService.open(
            hospital_db, templates=(), config=AuditConfig(eager_warm=False)
        )
        result = service.mine(
            MineRequest(support_fraction=0.2, max_length=4),
            graph=_graph(hospital_db),
        )
        path = str(tmp_path / "mined.json")
        result.library().dump(path)
        loaded = TemplateLibrary.load(path)
        assert {e.template.signature() for e in loaded} == result.signatures()


# ----------------------------------------------------------------------
# deprecation shims
# ----------------------------------------------------------------------
class TestDeprecationShims:
    @pytest.mark.parametrize(
        "name,module,attr",
        [
            ("ExplanationEngine", "repro.core.engine", "ExplanationEngine"),
            ("AccessMonitor", "repro.audit.streaming", "AccessMonitor"),
            ("PatientPortal", "repro.audit.portal", "PatientPortal"),
            ("ComplianceAuditor", "repro.audit.report", "ComplianceAuditor"),
            ("OneWayMiner", "repro.core.mining", "OneWayMiner"),
            ("TwoWayMiner", "repro.core.mining", "TwoWayMiner"),
            ("BridgedMiner", "repro.core.mining", "BridgedMiner"),
        ],
    )
    def test_shim_warns_and_returns_real_class(self, name, module, attr):
        import importlib

        import repro

        real = getattr(importlib.import_module(module), attr)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shimmed = getattr(repro, name)
        assert shimmed is real
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "repro.api" in str(w.message)
            for w in caught
        )

    def test_unknown_attribute_still_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.NoSuchThing

    def test_old_entry_points_match_service(self, hospital_db):
        """The shimmed classes and the service agree on every output."""
        from repro.audit.portal import PatientPortal
        from repro.audit.report import ComplianceAuditor

        templates = _templates(hospital_db)
        engine = ExplanationEngine(hospital_db, templates)
        service = AuditService.open(hospital_db, templates=templates)

        assert PatientPortal(engine).render("Alice") == (
            service.render_patient_report("Alice")
        )
        auditor = ComplianceAuditor(engine)
        report = service.report()
        assert auditor.summary() == report.summary()
        assert [e.lid for e in auditor.queue()] == [e.lid for e in report.queue]
        assert auditor.user_risk_ranking() == list(report.user_risk)
        for lid in (100, 116, 127, 130, 900):
            assert [i.render() for i in engine.explain(lid)] == [
                v.text for v in service.explain(lid).explanations
            ]


# ----------------------------------------------------------------------
# threading
# ----------------------------------------------------------------------
class TestThreadedSmoke:
    N_READERS = 4
    READS_PER_THREAD = 25
    #: Streamed accesses all post-date the seed log, so explanations of
    #: pre-existing accesses are append-insensitive (the repeat-access
    #: template only looks backward in time).
    WRITES = [
        ("Dave", "Alice", 50),
        ("Mallory", "Bob", 51),
        ("Dave", "Alice", 52),
        ("Eve", "Bob", 53),
        ("Nick", "Alice", 54),
        ("Sam", "Bob", 55),
    ]
    READ_LIDS = (100, 116, 127, 130, 900)

    def test_concurrent_readers_with_writer_match_serial(self):
        service = AuditService.open(
            _build_hospital(), templates=_templates(_build_hospital())
        )
        errors: list[BaseException] = []
        observations: list[tuple[int, tuple[str, ...]]] = []
        obs_lock = threading.Lock()
        start = threading.Barrier(self.N_READERS + 1)

        def reader() -> None:
            try:
                start.wait()
                for i in range(self.READS_PER_THREAD):
                    lid = self.READ_LIDS[i % len(self.READ_LIDS)]
                    result = service.explain(lid)
                    with obs_lock:
                        observations.append(
                            (lid, tuple(v.text for v in result.explanations))
                        )
            except BaseException as exc:  # noqa: BLE001 - surface to main
                errors.append(exc)

        def writer() -> None:
            try:
                start.wait()
                for i, (user, patient, date) in enumerate(self.WRITES):
                    if i % 2 == 0:
                        service.ingest(user, patient, date)
                    else:
                        service.ingest_many([(user, patient, date)])
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=reader) for _ in range(self.N_READERS)
        ] + [threading.Thread(target=writer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        assert len(observations) == self.N_READERS * self.READS_PER_THREAD

        # the serial reference: same writes, no concurrency
        serial = AuditService.open(
            _build_hospital(), templates=_templates(_build_hospital())
        )
        for user, patient, date in self.WRITES:
            serial.ingest(user, patient, date)

        expected = {
            lid: tuple(v.text for v in serial.explain(lid).explanations)
            for lid in self.READ_LIDS
        }
        for lid, texts in observations:
            assert texts == expected[lid], f"reader diverged on lid {lid}"
        assert service.report().to_dict() == serial.report().to_dict()
        assert service.coverage() == serial.coverage()
        stats = service.stats()
        assert stats["lock"]["write_acquisitions"] >= len(self.WRITES)
        assert stats["ingest"]["seen"] == len(self.WRITES)
