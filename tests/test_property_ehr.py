"""Property-based tests for the synthetic hospital simulator: every
random configuration must produce an internally consistent world."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ehr import SimulationConfig, build_hospital, simulate
from repro.evalx import first_access_lids, repeat_access_lids


@st.composite
def random_config(draw):
    return SimulationConfig(
        seed=draw(st.integers(0, 2**16)),
        n_days=draw(st.integers(1, 4)),
        n_teams=draw(st.integers(1, 3)),
        doctors_per_team=(1, 2),
        nurses_per_team=(1, 3),
        students_per_team=(0, 1),
        clerks_per_team=(0, 1),
        n_radiologists=draw(st.integers(1, 3)),
        n_pathologists=1,
        n_pharmacists=draw(st.integers(1, 2)),
        n_lab_techs=1,
        teams_per_service_user=(1, 2),
        patients_per_team=(5, 15),
        daily_encounter_rate=draw(st.floats(0.05, 0.3)),
        p_event_dropout=draw(st.floats(0.0, 0.3)),
        p_patient_unrecorded=draw(st.floats(0.0, 0.4)),
        repeat_rate_per_user_day=draw(st.floats(0.0, 4.0)),
        noise_fraction=draw(st.floats(0.0, 0.05)),
        n_snooping_incidents=draw(st.integers(0, 2)),
    )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(config=random_config())
def test_referential_integrity_always_holds(config):
    sim = simulate(config)
    assert sim.db.validate_referential_integrity() == []


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(config=random_config())
def test_log_well_formed(config):
    sim = simulate(config)
    log = sim.db.table("Log")
    lids = log.column_values("Lid")
    assert lids == list(range(1, len(log) + 1))
    dates = log.column_values("Date")
    assert dates == sorted(dates)
    assert set(sim.reasons) == set(lids)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(config=random_config())
def test_first_and_repeat_partition(config):
    sim = simulate(config)
    if len(sim.db.table("Log")) == 0:
        return
    first = first_access_lids(sim.db)
    repeat = repeat_access_lids(sim.db)
    assert first | repeat == set(sim.db.table("Log").column_values("Lid"))
    assert not (first & repeat)
    # every (user, patient) pair has exactly one first access
    pairs = {
        (row[2], row[3]) for row in sim.db.table("Log").rows()
    }
    assert len(first) == len(pairs)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(config=random_config())
def test_event_users_are_employees(config):
    sim = simulate(config)
    employees = set(sim.hospital.users)
    for table, columns in (
        ("Appointments", ["Doctor"]),
        ("Visits", ["Doctor"]),
        ("Documents", ["Author"]),
        ("Labs", ["Requester", "Performer"]),
        ("Medications", ["Requester", "Signer", "Administrator"]),
        ("Radiology", ["Requester", "Radiologist"]),
    ):
        for column in columns:
            assert sim.db.table(table).distinct_values(column) <= employees


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(config=random_config())
def test_same_seed_same_world(config):
    a = simulate(config)
    b = simulate(config)
    assert a.db.table("Log").rows() == b.db.table("Log").rows()
    assert a.reasons == b.reasons


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(config=random_config())
def test_hospital_structure(config):
    hospital = build_hospital(config)
    assert len(hospital.teams) == config.n_teams
    for team in hospital.teams.values():
        assert team.doctor_ids, "every team needs a doctor"
    for patient in hospital.patients.values():
        assert patient.pcp in hospital.teams[patient.team_id].doctor_ids
    for user in hospital.users.values():
        for team_id in user.team_ids:
            assert user.user_id in hospital.teams[team_id].members()
