"""Property-based tests for path construction and mining invariants.

Random walks over the hospital schema graph must always produce valid
restricted simple paths; bridged reconstructions must agree with direct
construction; and the mining optimizations must never change the output.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    MiningConfig,
    OneWayMiner,
    Path,
    SupportConfig,
    SupportEvaluator,
)


def random_forward_walk(graph, choices, max_length):
    """Build a path by following ``choices`` (a list of indices) through
    the graph's edge lists; returns the longest valid path reached."""
    seeds = sorted(graph.start_edges())
    if not seeds:
        return None
    path = Path.forward_seed(graph, seeds[choices[0] % len(seeds)])
    if path is None:
        return None
    for pick in choices[1:max_length]:
        if path.anchored_end:
            break
        edges = sorted(graph.edges_from_table(path.last_table()))
        if not edges:
            break
        nxt = path.extend_forward(edges[pick % len(edges)])
        if nxt is not None:
            path = nxt
    return path


@settings(max_examples=150, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(choices=st.lists(st.integers(0, 10**6), min_size=1, max_size=6))
def test_forward_walks_always_valid(hospital_graph, choices):
    path = random_forward_walk(hospital_graph, choices, max_length=6)
    if path is not None:
        assert path.validate() == []


@settings(max_examples=150, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(choices=st.lists(st.integers(0, 10**6), min_size=1, max_size=6))
def test_walk_length_equals_conditions(hospital_graph, choices):
    path = random_forward_walk(hospital_graph, choices, max_length=6)
    if path is not None:
        query = path.to_query()
        assert len(query.conditions) == path.length
        assert len(query.tuple_vars) <= path.length + 1


@settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(choices=st.lists(st.integers(0, 10**6), min_size=2, max_size=6))
def test_support_monotone_along_walk(hospital_db, hospital_graph, choices):
    """Every extension step can only lose support (Section 3.2)."""
    evaluator = SupportEvaluator(hospital_db)
    seeds = sorted(hospital_graph.start_edges())
    path = Path.forward_seed(hospital_graph, seeds[choices[0] % len(seeds)])
    if path is None:
        return
    prev_support = evaluator.support(path)
    for pick in choices[1:]:
        if path.anchored_end:
            break
        edges = sorted(hospital_graph.edges_from_table(path.last_table()))
        if not edges:
            break
        nxt = path.extend_forward(edges[pick % len(edges)])
        if nxt is None:
            continue
        path = nxt
        support = evaluator.support(path)
        assert support <= prev_support
        prev_support = support


@settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(choices=st.lists(st.integers(0, 10**6), min_size=2, max_size=6))
def test_bridge_reconstruction_matches_direct(hospital_graph, choices):
    """Splitting a complete explanation at any step and re-bridging the
    halves must reproduce the identical condition set (Section 3.3.1)."""
    path = random_forward_walk(hospital_graph, choices, max_length=6)
    if path is None or not path.is_explanation or path.length < 3:
        return
    edges = [step.edge for step in path.steps]
    for split in range(1, path.length - 1):
        # rebuild the halves through the construction APIs: forward covers
        # edges [0..split], backward covers edges [split..end] (the shared
        # edge at `split` is the bridge edge)
        forward = Path.forward_seed(hospital_graph, edges[0])
        for edge in edges[1 : split + 1]:
            assert forward is not None
            forward = forward.extend_forward(edge)
        backward = Path.backward_seed(hospital_graph, edges[-1])
        for edge in reversed(edges[split:-1]):
            assert backward is not None
            backward = backward.extend_backward(edge)
        assert forward is not None and backward is not None
        merged = Path.bridge(forward, backward)
        assert merged is not None, f"bridge failed at split {split}"
        assert merged.signature() == path.signature()


@settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(choices=st.lists(st.integers(0, 10**6), min_size=2, max_size=6))
def test_sql_roundtrip_preserves_template(hospital_graph, choices):
    """Render any mined-shape explanation to SQL, parse it back, and the
    reconstructed template must have the identical condition set."""
    from repro.core import ExplanationTemplate
    from repro.db import template_from_sql

    path = random_forward_walk(hospital_graph, choices, max_length=6)
    if path is None or not path.is_explanation:
        return
    template = ExplanationTemplate(path=path)
    parsed = template_from_sql(template.to_sql())
    assert parsed.signature() == template.signature()
    assert parsed.length == template.length


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    s=st.sampled_from([0.1, 0.2, 0.4]),
    use_cache=st.booleans(),
    use_skip=st.booleans(),
    reduction=st.booleans(),
)
def test_mining_output_invariant_under_optimizations(
    fig3_db, fig3_graph, s, use_cache, use_skip, reduction
):
    """Random optimization combos never change the mined template set."""
    baseline = OneWayMiner(
        fig3_db,
        fig3_graph,
        MiningConfig(support_fraction=s, max_length=4, max_tables=3),
    ).mine()
    variant = OneWayMiner(
        fig3_db,
        fig3_graph,
        MiningConfig(
            support_fraction=s,
            max_length=4,
            max_tables=3,
            support=SupportConfig(
                use_cache=use_cache,
                use_skip=use_skip,
                distinct_reduction=reduction,
            ),
        ),
    ).mine()
    assert variant.signatures() == baseline.signatures()
    assert {m.template.signature(): m.support for m in variant.templates} == {
        m.template.signature(): m.support for m in baseline.templates
    }
