"""Tests for the explanation schema graph (edges, endpoints, budgets)."""

import pytest

from repro.core import EdgeKind, SchemaAttr, SchemaEdge, SchemaGraph
from repro.db import (
    ColumnType,
    Database,
    ForeignKey,
    SchemaError,
    TableSchema,
    UnknownColumnError,
)


@pytest.fixture
def db():
    db = Database()
    db.create_table(TableSchema.build("Users", ["User", "Dept"]))
    db.create_table(
        TableSchema.build(
            "Log",
            [("Lid", ColumnType.INT), "User", "Patient"],
            foreign_keys=[ForeignKey("User", "Users", "User")],
        )
    )
    db.create_table(
        TableSchema.build(
            "Appointments",
            ["Patient", "Doctor"],
            foreign_keys=[ForeignKey("Doctor", "Users", "User")],
        )
    )
    return db


class TestSchemaEdge:
    def test_reversed(self):
        e = SchemaEdge(
            SchemaAttr("A", "x"), SchemaAttr("B", "y"), EdgeKind.FOREIGN_KEY
        )
        assert e.reversed() == SchemaEdge(
            SchemaAttr("B", "y"), SchemaAttr("A", "x"), EdgeKind.FOREIGN_KEY
        )

    def test_self_join_must_stay_in_table(self):
        with pytest.raises(ValueError):
            SchemaEdge(SchemaAttr("A", "x"), SchemaAttr("B", "x"), EdgeKind.SELF_JOIN)

    def test_str(self):
        e = SchemaEdge(SchemaAttr("A", "x"), SchemaAttr("B", "y"), EdgeKind.ADMIN)
        assert "A.x = B.y" in str(e)


class TestSchemaGraph:
    def test_fk_edges_bidirectional(self, db):
        graph = SchemaGraph(db)
        edges = set(graph.edges)
        fwd = SchemaEdge(
            SchemaAttr("Log", "User"), SchemaAttr("Users", "User"), EdgeKind.FOREIGN_KEY
        )
        assert fwd in edges and fwd.reversed() in edges

    def test_missing_log_table(self):
        db = Database()
        db.create_table(TableSchema.build("T", ["a"]))
        with pytest.raises(SchemaError):
            SchemaGraph(db)

    def test_bad_endpoint_attr(self, db):
        with pytest.raises(UnknownColumnError):
            SchemaGraph(db, start_attr="Nope")

    def test_add_relationship_both_directions(self, db):
        graph = SchemaGraph(db)
        a = SchemaAttr("Log", "Patient")
        b = SchemaAttr("Appointments", "Patient")
        graph.add_relationship(a, b)
        assert SchemaEdge(a, b, EdgeKind.ADMIN) in graph.edges
        assert SchemaEdge(b, a, EdgeKind.ADMIN) in graph.edges

    def test_add_relationship_idempotent(self, db):
        graph = SchemaGraph(db)
        a = SchemaAttr("Log", "Patient")
        b = SchemaAttr("Appointments", "Patient")
        before = len(graph.edges)
        graph.add_relationship(a, b)
        graph.add_relationship(a, b)
        assert len(graph.edges) == before + 2

    def test_same_table_relationship_rejected(self, db):
        graph = SchemaGraph(db)
        with pytest.raises(SchemaError):
            graph.add_relationship(
                SchemaAttr("Users", "User"), SchemaAttr("Users", "Dept")
            )

    def test_relationship_unknown_column_rejected(self, db):
        graph = SchemaGraph(db)
        with pytest.raises(UnknownColumnError):
            graph.add_relationship(
                SchemaAttr("Log", "Patient"), SchemaAttr("Users", "Nope")
            )

    def test_allow_self_join(self, db):
        graph = SchemaGraph(db)
        graph.allow_self_join("Users", "Dept")
        assert graph.self_join_allowed("Users", "Dept")
        assert not graph.self_join_allowed("Users", "User")
        node = SchemaAttr("Users", "Dept")
        assert SchemaEdge(node, node, EdgeKind.SELF_JOIN) in graph.edges

    def test_start_and_end_edges(self, db):
        graph = SchemaGraph(db)
        graph.add_relationship(
            SchemaAttr("Log", "Patient"), SchemaAttr("Appointments", "Patient")
        )
        starts = graph.start_edges()
        assert all(e.src == graph.start for e in starts)
        assert any(e.dst == SchemaAttr("Appointments", "Patient") for e in starts)
        ends = graph.end_edges()
        assert all(e.dst == graph.end for e in ends)
        # FK Log.User -> Users.User reversed terminates at Log.User
        assert any(e.src == SchemaAttr("Users", "User") for e in ends)

    def test_edges_from_and_into_table(self, db):
        graph = SchemaGraph(db)
        assert all(e.src.table == "Log" for e in graph.edges_from_table("Log"))
        assert all(e.dst.table == "Log" for e in graph.edges_into_table("Log"))

    def test_counted_tables_with_uncounted(self, db):
        graph = SchemaGraph(db, uncounted_tables=["Users"])
        assert graph.counted_tables(["Log", "Users", "Appointments"]) == 2
        assert graph.counted_tables(["Users"]) == 0

    def test_degenerate_self_fk_skipped(self):
        db = Database()
        db.create_table(
            TableSchema.build(
                "Log",
                ["Lid", "User", "Patient"],
                foreign_keys=[ForeignKey("User", "Log", "User")],
            )
        )
        graph = SchemaGraph(db)
        assert graph.edges == ()
