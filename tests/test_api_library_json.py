"""Versioned JSON persistence of TemplateLibrary (dump/load), including
mined templates and byte-identical explanation round-trips."""

import json

import pytest

from repro.api import AuditConfig, AuditService, MineRequest, TemplateLibrary
from repro.core.library import (
    LIBRARY_JSON_FORMAT,
    LIBRARY_JSON_VERSION,
    ReviewStatus,
)
from repro.core.template import ExplanationTemplate

from test_api_service import _build_hospital, _graph, _templates


def _described_library(db) -> TemplateLibrary:
    library = TemplateLibrary()
    appointment, repeat, group = _templates(db)
    library.add(appointment, ReviewStatus.APPROVED, support=12)
    library.add(repeat, ReviewStatus.SUGGESTED)
    library.add(group, ReviewStatus.REJECTED, support=3)
    return library


class TestJsonRoundTrip:
    def test_dump_load_preserves_everything(self, tmp_path):
        db = _build_hospital()
        library = _described_library(db)
        path = str(tmp_path / "lib.json")
        library.dump(path)
        loaded = TemplateLibrary.load(path)
        assert len(loaded) == len(library)
        original = {e.key: e for e in library}
        for entry in loaded:
            ref = original[entry.key]
            assert entry.status is ref.status
            assert entry.support == ref.support
            assert entry.template.name == ref.template.name
            assert entry.template.description == ref.template.description
            assert entry.template.to_sql() == ref.template.to_sql()

    def test_round_trip_is_a_fixed_point(self, tmp_path):
        """dump -> load -> dumps_json is byte-identical to the original."""
        db = _build_hospital()
        library = _described_library(db)
        path = str(tmp_path / "lib.json")
        library.dump(path)
        assert TemplateLibrary.load(path).dumps_json() == library.dumps_json()

    def test_multiline_description_survives_json_not_sql(self, tmp_path):
        db = _build_hospital()
        base = _templates(db)[0]
        template = ExplanationTemplate(
            path=base.path,
            description="[L.User] saw [L.Patient].\nSecond line.",
            name="multiline",
        )
        library = TemplateLibrary()
        library.add(template, ReviewStatus.APPROVED)
        json_path = str(tmp_path / "lib.json")
        library.dump(json_path)
        loaded = next(iter(TemplateLibrary.load(json_path)))
        assert loaded.template.description == template.description
        # the SQL artifact flattens newlines (human-reviewable one-liners)
        sql_path = str(tmp_path / "lib.sql")
        library.save(sql_path)
        flat = next(iter(TemplateLibrary.load(sql_path)))
        assert "\n" not in flat.template.description

    def test_payload_shape_and_version(self, tmp_path):
        db = _build_hospital()
        path = str(tmp_path / "lib.json")
        _described_library(db).dump(path)
        payload = json.loads(open(path).read())
        assert payload["format"] == LIBRARY_JSON_FORMAT
        assert payload["version"] == LIBRARY_JSON_VERSION
        entry = payload["entries"][0]
        assert {
            "name",
            "status",
            "support",
            "description",
            "sql",
            "log_table",
            "start_attr",
            "end_attr",
            "log_id_attr",
        } <= set(entry)

    def test_unsupported_version_rejected(self):
        payload = json.dumps(
            {"format": LIBRARY_JSON_FORMAT, "version": 999, "entries": []}
        )
        with pytest.raises(ValueError, match="version"):
            TemplateLibrary.loads_json(payload)

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            TemplateLibrary.loads_json(json.dumps({"format": "nope"}))

    def test_load_sniffs_sql_vs_json(self, tmp_path):
        db = _build_hospital()
        library = _described_library(db)
        sql_path, json_path = str(tmp_path / "a.sql"), str(tmp_path / "a.json")
        library.save(sql_path)
        library.dump(json_path)
        assert len(TemplateLibrary.load(sql_path)) == len(library)
        assert len(TemplateLibrary.load(json_path)) == len(library)

    def test_json_load_rejects_loader_kwargs(self, tmp_path):
        db = _build_hospital()
        path = str(tmp_path / "lib.json")
        _described_library(db).dump(path)
        with pytest.raises(TypeError, match="self-describing"):
            TemplateLibrary.load(path, log_table="Log")


class TestMinedTemplatesSurviveRestart:
    def test_byte_identical_explanations_after_reload(self, tmp_path):
        """Mine on the synthetic hospital log, persist, reload in a
        'fresh process' (new service over an identical database), and
        compare every access's rendered explanations byte for byte."""
        mine_db = _build_hospital()
        service = AuditService.open(
            mine_db, templates=(), config=AuditConfig(eager_warm=False)
        )
        result = service.mine(
            MineRequest(support_fraction=0.2, max_length=4),
            graph=_graph(mine_db),
        )
        assert result.templates, "mining must find templates to persist"
        path = str(tmp_path / "mined.json")
        result.library().dump(path)

        original = AuditService.open(
            _build_hospital(),
            templates=result.explanation_templates(),
        )
        restarted = AuditService.open(_build_hospital(), templates=path)
        lids = sorted(_build_hospital().table("Log").distinct_values("Lid"))
        for lid in lids:
            assert (
                original.explain(lid).to_dict() == restarted.explain(lid).to_dict()
            ), f"explanations diverged after reload for lid {lid}"
        assert original.report().to_dict() == restarted.report().to_dict()
