"""Unit tests for the conjunctive-query executor, including a brute-force
nested-loop oracle cross-check (the executor must agree with naive SQL
semantics on every query shape the mining layer generates)."""

import itertools
import operator

import pytest

from repro.db import (
    AttrRef,
    ColumnType,
    Condition,
    ConjunctiveQuery,
    Database,
    Executor,
    Literal,
    QueryError,
    TableSchema,
    TupleVar,
)


@pytest.fixture
def db():
    """The paper's Figure 3 database plus a Doctor_Info table."""
    db = Database("fig3")
    log = db.create_table(
        TableSchema.build(
            "Log",
            [("Lid", ColumnType.INT), ("Date", ColumnType.INT), "User", "Patient"],
            primary_key=["Lid"],
        )
    )
    appts = db.create_table(
        TableSchema.build("Appointments", ["Patient", "Doctor", ("Date", ColumnType.INT)])
    )
    info = db.create_table(TableSchema.build("Doctor_Info", ["Doctor", "Department"]))
    log.insert_many(
        [
            (1, 1, "Dave", "Alice"),
            (2, 2, "Dave", "Bob"),
        ]
    )
    appts.insert_many([("Alice", "Dave", 1), ("Bob", "Mike", 2)])
    info.insert_many([("Mike", "Pediatrics"), ("Dave", "Pediatrics")])
    return db


def template_a_query(projection=None):
    """Paper Example 2.2 template (A): appointment with the accessing doctor."""
    L, A = TupleVar("L", "Log"), TupleVar("A", "Appointments")
    return ConjunctiveQuery.build(
        [L, A],
        [
            Condition(AttrRef("L", "Patient"), "=", AttrRef("A", "Patient")),
            Condition(AttrRef("A", "Doctor"), "=", AttrRef("L", "User")),
        ],
        projection or [AttrRef("L", "Lid")],
    )


def template_b_query():
    """Paper Example 2.2 template (B): appointment with a department colleague."""
    L = TupleVar("L", "Log")
    A = TupleVar("A", "Appointments")
    I1 = TupleVar("I1", "Doctor_Info")
    I2 = TupleVar("I2", "Doctor_Info")
    return ConjunctiveQuery.build(
        [L, A, I1, I2],
        [
            Condition(AttrRef("L", "Patient"), "=", AttrRef("A", "Patient")),
            Condition(AttrRef("A", "Doctor"), "=", AttrRef("I1", "Doctor")),
            Condition(AttrRef("I1", "Department"), "=", AttrRef("I2", "Department")),
            Condition(AttrRef("I2", "Doctor"), "=", AttrRef("L", "User")),
        ],
        [AttrRef("L", "Lid")],
    )


class TestPaperExamples:
    """The running examples of Sections 2-3 must evaluate exactly."""

    def test_template_a_explains_only_l1(self, db):
        ex = Executor(db)
        assert ex.distinct_values(template_a_query()) == {1}

    def test_template_a_support_50pct(self, db):
        # paper Example 3.1: template (A) has support 50% (1 of 2 accesses)
        assert Executor(db).count_distinct(template_a_query()) == 1

    def test_template_b_explains_both(self, db):
        # paper Example 3.1: template (B) has support 100%
        assert Executor(db).distinct_values(template_b_query()) == {1, 2}

    def test_instance_projection(self, db):
        q = template_a_query(
            [AttrRef("L", "Lid"), AttrRef("L", "Patient"), AttrRef("A", "Date")]
        )
        result = Executor(db).execute(q)
        assert result.rows == [(1, "Alice", 1)]

    def test_as_dicts(self, db):
        q = template_a_query([AttrRef("L", "Lid")])
        assert Executor(db).execute(q).as_dicts() == [{"L.Lid": 1}]


class TestFilters:
    def test_literal_filter(self, db):
        L = TupleVar("L", "Log")
        q = ConjunctiveQuery.build(
            [L],
            [Condition(AttrRef("L", "Patient"), "=", Literal("Alice"))],
            [AttrRef("L", "Lid")],
        )
        assert Executor(db).distinct_values(q) == {1}

    def test_inequality_decoration(self, db):
        # repeat-access decoration: L1.Date > L2.Date
        db.table("Log").insert((3, 9, "Dave", "Alice"))
        L1, L2 = TupleVar("L1", "Log"), TupleVar("L2", "Log")
        q = ConjunctiveQuery.build(
            [L1, L2],
            [
                Condition(AttrRef("L1", "Patient"), "=", AttrRef("L2", "Patient")),
                Condition(AttrRef("L2", "User"), "=", AttrRef("L1", "User")),
                Condition(AttrRef("L1", "Date"), ">", AttrRef("L2", "Date")),
            ],
            [AttrRef("L1", "Lid")],
        )
        assert Executor(db).distinct_values(q) == {3}

    def test_null_never_joins(self, db):
        db.table("Appointments").insert((None, "Dave", 9))
        assert Executor(db).count_distinct(template_a_query()) == 1

    def test_null_never_compares(self, db):
        db.table("Log").insert((4, None, "Dave", "Alice"))
        L1, L2 = TupleVar("L1", "Log"), TupleVar("L2", "Log")
        q = ConjunctiveQuery.build(
            [L1, L2],
            [
                Condition(AttrRef("L1", "Patient"), "=", AttrRef("L2", "Patient")),
                Condition(AttrRef("L2", "User"), "=", AttrRef("L1", "User")),
                Condition(AttrRef("L1", "Date"), "<", AttrRef("L2", "Date")),
            ],
            [AttrRef("L1", "Lid")],
        )
        # Lid 4 has NULL date: it can never satisfy the < decoration
        assert 4 not in Executor(db).distinct_values(q)


class TestQueryValidation:
    def test_unknown_column_rejected(self, db):
        L = TupleVar("L", "Log")
        q = ConjunctiveQuery.build(
            [L],
            [Condition(AttrRef("L", "Nope"), "=", Literal(1))],
            [AttrRef("L", "Lid")],
        )
        with pytest.raises(QueryError):
            Executor(db).execute(q)

    def test_unknown_alias_rejected_at_build(self):
        L = TupleVar("L", "Log")
        with pytest.raises(QueryError):
            ConjunctiveQuery.build(
                [L],
                [Condition(AttrRef("X", "Lid"), "=", Literal(1))],
                [AttrRef("L", "Lid")],
            )

    def test_duplicate_alias_rejected(self):
        L = TupleVar("L", "Log")
        with pytest.raises(QueryError):
            ConjunctiveQuery.build([L, L], [], [AttrRef("L", "Lid")])

    def test_cartesian_rejected_by_default(self, db):
        L = TupleVar("L", "Log")
        A = TupleVar("A", "Appointments")
        q = ConjunctiveQuery.build([L, A], [], [AttrRef("L", "Lid")])
        with pytest.raises(QueryError):
            Executor(db).execute(q)

    def test_cartesian_optin(self, db):
        L = TupleVar("L", "Log")
        A = TupleVar("A", "Appointments")
        q = ConjunctiveQuery.build([L, A], [], [AttrRef("L", "Lid")])
        assert Executor(db, allow_cartesian=True).count_distinct(q) == 2

    def test_bad_operator_rejected(self):
        with pytest.raises(QueryError):
            Condition(AttrRef("L", "Lid"), "LIKE", Literal("x"))


#: SQL comparison semantics for the brute-force oracle, one Python
#: operator per template operator.
_OP_FUNCS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def brute_force(db, query):
    """Nested-loop oracle: enumerate the full cross product, apply all
    conditions, project, dedup.  Exponential — only for tiny fixtures."""
    tables = [list(db.table(v.table).rows()) for v in query.tuple_vars]
    schemas = [db.table(v.table).schema for v in query.tuple_vars]
    out = set()
    for combo in itertools.product(*tables):
        env = {}
        for var, schema, row in zip(query.tuple_vars, schemas, combo):
            for i, col in enumerate(schema.column_names):
                env[(var.alias, col)] = row[i]
        ok = True
        for cond in query.conditions:
            lval = env[(cond.left.alias, cond.left.attr)]
            rval = (
                env[(cond.right.alias, cond.right.attr)]
                if isinstance(cond.right, AttrRef)
                else cond.right.value
            )
            if lval is None or rval is None or not _OP_FUNCS[cond.op](lval, rval):
                ok = False
                break
        if ok:
            out.add(tuple(env[(r.alias, r.attr)] for r in query.projection))
    return out


class TestBruteForceOracle:
    """The hash-join pipeline must match naive nested-loop semantics."""

    def test_template_a(self, db):
        q = template_a_query()
        assert set(Executor(db).execute(q).rows) == brute_force(db, q)

    def test_template_b(self, db):
        q = template_b_query()
        assert set(Executor(db).execute(q).rows) == brute_force(db, q)

    def test_self_join_with_decoration(self, db):
        db.table("Log").insert((3, 9, "Dave", "Alice"))
        db.table("Log").insert((4, 0, "Mike", "Bob"))
        L1, L2 = TupleVar("L1", "Log"), TupleVar("L2", "Log")
        q = ConjunctiveQuery.build(
            [L1, L2],
            [
                Condition(AttrRef("L1", "Patient"), "=", AttrRef("L2", "Patient")),
                Condition(AttrRef("L2", "User"), "=", AttrRef("L1", "User")),
                Condition(AttrRef("L1", "Date"), ">", AttrRef("L2", "Date")),
            ],
            [AttrRef("L1", "Lid")],
        )
        assert set(Executor(db).execute(q).rows) == brute_force(db, q)

    def test_wide_projection(self, db):
        q = template_b_query()
        wide = ConjunctiveQuery.build(
            q.tuple_vars,
            q.conditions,
            [
                AttrRef("L", "Lid"),
                AttrRef("A", "Doctor"),
                AttrRef("I1", "Department"),
            ],
        )
        assert set(Executor(db).execute(wide).rows) == brute_force(db, wide)
