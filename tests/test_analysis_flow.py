"""Unit tests for the flow engine under the checkers: CFG shape,
forward-dataflow fixpoints, and call-graph resolution."""

import ast
import textwrap

from repro.analysis.callgraph import CallGraph
from repro.analysis.flow import (
    CFG,
    ENTRY,
    EXIT,
    WITH_ENTER,
    WITH_EXIT,
    forward,
    node_calls,
)
from repro.analysis.project import Project


def build_cfg(source):
    tree = ast.parse(textwrap.dedent(source))
    fn = tree.body[0]
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    return CFG(fn)


def reaching_names(cfg):
    """Run a simple may-analysis: the set of names assigned on some
    path into each node.  Exercises transfer + join + fixpoint."""

    def transfer(node, state):
        stmt = node.stmt
        if isinstance(stmt, ast.Assign):
            extra = {
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            }
            return state | frozenset(extra)
        return state

    return forward(cfg, frozenset(), transfer, lambda a, b: a | b)


class TestCfgShape:
    def test_straight_line_threads_entry_to_exit(self):
        cfg = build_cfg(
            """
            def f():
                a = 1
                b = 2
            """
        )
        kinds = [n.kind for n in cfg.nodes]
        assert kinds.count(ENTRY) == 1 and kinds.count(EXIT) == 1
        states = reaching_names(cfg)
        assert states[cfg.exit] == frozenset({"a", "b"})

    def test_branches_join(self):
        cfg = build_cfg(
            """
            def f(flag):
                if flag:
                    a = 1
                else:
                    b = 2
                c = 3
            """
        )
        states = reaching_names(cfg)
        assert states[cfg.exit] == frozenset({"a", "b", "c"})

    def test_if_without_else_falls_through(self):
        cfg = build_cfg(
            """
            def f(flag):
                if flag:
                    a = 1
                c = 3
            """
        )
        states = reaching_names(cfg)
        # both the taken and not-taken paths reach exit
        assert states[cfg.exit] == frozenset({"a", "c"})

    def test_loop_back_edge_reaches_fixpoint(self):
        cfg = build_cfg(
            """
            def f(items):
                for item in items:
                    a = item
                b = 1
            """
        )
        states = reaching_names(cfg)
        assert states[cfg.exit] == frozenset({"a", "b"})

    def test_return_does_not_fall_through(self):
        cfg = build_cfg(
            """
            def f(flag):
                if flag:
                    a = 1
                    return a
                b = 2
            """
        )
        states = reaching_names(cfg)
        # 'b' is only assigned on the flag-false path; 'a' leaks to exit
        # via the return edge but never reaches the b = 2 node
        b_node = next(
            n.index
            for n in cfg.nodes
            if isinstance(n.stmt, ast.Assign)
            and isinstance(n.stmt.targets[0], ast.Name)
            and n.stmt.targets[0].id == "b"
        )
        assert "a" not in (states[b_node] or frozenset())

    def test_with_blocks_get_enter_and_exit_markers(self):
        cfg = build_cfg(
            """
            def f(lock):
                with lock.read_locked():
                    a = 1
                b = 2
            """
        )
        kinds = [n.kind for n in cfg.nodes]
        assert kinds.count(WITH_ENTER) == 1
        assert kinds.count(WITH_EXIT) == 1
        enter = next(n for n in cfg.nodes if n.kind == WITH_ENTER)
        assert list(node_calls(enter))  # the context-manager call

    def test_try_handler_reachable_from_body(self):
        cfg = build_cfg(
            """
            def f():
                try:
                    a = 1
                except ValueError:
                    b = 2
                c = 3
            """
        )
        states = reaching_names(cfg)
        assert states[cfg.exit] == frozenset({"a", "b", "c"})

    def test_unreachable_code_has_no_state(self):
        cfg = build_cfg(
            """
            def f():
                return 1
                a = 2
            """
        )
        states = reaching_names(cfg)
        dead = next(
            n.index for n in cfg.nodes if isinstance(n.stmt, ast.Assign)
        )
        assert states[dead] is None


class TestCallGraph:
    def make_project(self, tmp_path, files):
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        return Project(str(tmp_path), tuple(files))

    def test_module_function_and_from_import_resolution(self, tmp_path):
        project = self.make_project(
            tmp_path,
            {
                "src/repro/x/helpers.py": """
                    def helper():
                        return 1
                """,
                "src/repro/x/main.py": """
                    from repro.x.helpers import helper

                    def local():
                        return 2

                    def run():
                        helper()
                        local()
                """,
            },
        )
        graph = CallGraph(project)
        run = graph.function("src/repro/x/main.py", "run")
        targets = {
            site.target.qname
            for site in graph.call_sites(run)
            if site.target is not None
        }
        assert targets == {
            "src/repro/x/helpers.py:helper",
            "src/repro/x/main.py:local",
        }

    def test_self_method_and_constructor_typed_local(self, tmp_path):
        project = self.make_project(
            tmp_path,
            {
                "src/repro/x/svc.py": """
                    class Service:
                        def inner(self):
                            return 1

                        def outer(self):
                            return self.inner()

                    def use():
                        svc = Service()
                        return svc.outer()
                """,
            },
        )
        graph = CallGraph(project)
        outer = graph.function("src/repro/x/svc.py", "outer", "Service")
        (site,) = [
            s for s in graph.call_sites(outer) if s.target is not None
        ]
        assert site.target.qname == "src/repro/x/svc.py:Service.inner"
        assert site.same_object
        use = graph.function("src/repro/x/svc.py", "use")
        targets = {
            s.target.qname
            for s in graph.call_sites(use)
            if s.target is not None
        }
        assert "src/repro/x/svc.py:Service.outer" in targets

    def test_inherited_method_resolves_to_base(self, tmp_path):
        project = self.make_project(
            tmp_path,
            {
                "src/repro/x/base.py": """
                    class Base:
                        def shared(self):
                            return 1
                """,
                "src/repro/x/child.py": """
                    from repro.x.base import Base

                    class Child(Base):
                        def run(self):
                            return self.shared()
                """,
            },
        )
        graph = CallGraph(project)
        run = graph.function("src/repro/x/child.py", "run", "Child")
        (site,) = [
            s for s in graph.call_sites(run) if s.target is not None
        ]
        assert site.target.qname == "src/repro/x/base.py:Base.shared"

    def test_unresolved_calls_keep_their_dotted_name(self, tmp_path):
        project = self.make_project(
            tmp_path,
            {
                "src/repro/x/io.py": """
                    import sqlite3

                    def connect(path):
                        return sqlite3.connect(path)
                """,
            },
        )
        graph = CallGraph(project)
        fn = graph.function("src/repro/x/io.py", "connect")
        (site,) = list(graph.call_sites(fn))
        assert site.target is None
        assert site.dotted == "sqlite3.connect"
