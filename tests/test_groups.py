"""Tests for collaborative-group inference (paper Section 4.1, Figure 5)."""

import numpy as np
import pytest

from repro.db import ColumnType, Database, TableSchema
from repro.groups import (
    access_matrix_from_log,
    build_access_matrix,
    build_groups_table,
    build_hierarchy,
    cluster_graph,
    degrees,
    hierarchy_from_log,
    modularity,
    node_weights,
    similarity_graph,
    total_weight,
)

#: The paper's Figure 5 access log: patients A-D, users 0-3.
FIG5_ACCESSES = [
    (0, "A"), (1, "A"), (2, "A"),
    (0, "B"), (2, "B"),
    (1, "C"), (2, "C"),
    (2, "D"), (3, "D"),
]


def clique_graph(cliques, bridge_weight=0.1):
    """Disjoint cliques with weak bridges between consecutive ones."""
    adj = {}

    def add(u, v, w):
        adj.setdefault(u, {})[v] = w
        adj.setdefault(v, {})[u] = w

    firsts = []
    for members in cliques:
        firsts.append(members[0])
        for i, u in enumerate(members):
            adj.setdefault(u, {})
            for v in members[i + 1:]:
                add(u, v, 1.0)
    for a, b in zip(firsts, firsts[1:]):
        add(a, b, bridge_weight)
    return adj


class TestAccessMatrix:
    def test_fig5_matrix_values(self):
        am = build_access_matrix(FIG5_ACCESSES)
        dense = am.matrix.toarray()
        i = am.patients.index("A")
        j = am.users.index(0)
        assert dense[i, j] == pytest.approx(1 / 3)  # paper Example 4.1

    def test_duplicates_collapse(self):
        am1 = build_access_matrix(FIG5_ACCESSES)
        am2 = build_access_matrix(FIG5_ACCESSES * 3)
        assert (am1.matrix != am2.matrix).nnz == 0

    def test_density(self):
        am = build_access_matrix(FIG5_ACCESSES)
        assert am.density() == pytest.approx(9 / 16)

    def test_empty(self):
        am = build_access_matrix([])
        assert am.shape == (0, 0) and am.density() == 0.0

    def test_fig5_edge_weights(self):
        adj = similarity_graph(build_access_matrix(FIG5_ACCESSES))
        assert adj[0][1] == pytest.approx(1 / 9)            # figure: 0.11
        assert adj[0][2] == pytest.approx(1 / 9 + 1 / 4)    # figure: 0.36
        assert adj[1][2] == pytest.approx(1 / 9 + 1 / 4)
        assert adj[2][3] == pytest.approx(1 / 4)            # figure: 0.25

    def test_similarity_symmetric_no_diagonal(self):
        adj = similarity_graph(build_access_matrix(FIG5_ACCESSES))
        for u, nbrs in adj.items():
            assert u not in nbrs
            for v, w in nbrs.items():
                assert adj[v][u] == pytest.approx(w)

    def test_node_weights(self):
        adj = similarity_graph(build_access_matrix(FIG5_ACCESSES))
        weights = node_weights(adj)
        assert weights[0] == pytest.approx(adj[0][1] + adj[0][2])

    def test_from_log_table(self):
        db = Database()
        log = db.create_table(
            TableSchema.build(
                "Log", [("Lid", ColumnType.INT), "User", "Patient"]
            )
        )
        log.insert_many(
            [(i, str(u), p) for i, (u, p) in enumerate(FIG5_ACCESSES)]
        )
        am = access_matrix_from_log(db)
        assert set(am.users) == {"0", "1", "2", "3"}
        assert am.shape == (4, 4)


class TestModularity:
    def test_total_weight_counts_each_edge_once(self):
        adj = {0: {1: 2.0}, 1: {0: 2.0}}
        assert total_weight(adj) == pytest.approx(2.0)

    def test_self_loop_convention(self):
        adj = {0: {0: 3.0}}
        assert total_weight(adj) == pytest.approx(3.0)
        assert degrees(adj)[0] == pytest.approx(6.0)

    def test_single_community_q_zero(self):
        adj = clique_graph([[0, 1, 2]])
        assert modularity(adj, {0: 0, 1: 0, 2: 0}) == pytest.approx(0.0)

    def test_good_split_positive_q(self):
        adj = clique_graph([[0, 1, 2, 3], [4, 5, 6, 7]])
        part = {n: (0 if n < 4 else 1) for n in adj}
        assert modularity(adj, part) > 0.3

    def test_bad_split_lower_q(self):
        adj = clique_graph([[0, 1, 2, 3], [4, 5, 6, 7]])
        good = {n: (0 if n < 4 else 1) for n in adj}
        bad = {n: n % 2 for n in adj}
        assert modularity(adj, bad) < modularity(adj, good)

    def test_empty_graph(self):
        assert modularity({}, {}) == 0.0


class TestClustering:
    def test_splits_cliques(self):
        adj = clique_graph([[0, 1, 2, 3, 4], [10, 11, 12, 13, 14]])
        part = cluster_graph(adj)
        assert len({part[n] for n in (0, 1, 2, 3, 4)}) == 1
        assert len({part[n] for n in (10, 11, 12, 13, 14)}) == 1
        assert part[0] != part[10]

    def test_deterministic(self):
        adj = clique_graph([[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11]])
        assert cluster_graph(adj) == cluster_graph(adj)

    def test_labels_dense_from_zero(self):
        adj = clique_graph([[0, 1, 2], [3, 4, 5]])
        part = cluster_graph(adj)
        assert set(part.values()) == set(range(len(set(part.values()))))

    def test_isolated_nodes_singletons(self):
        adj = {0: {}, 1: {}, 2: {}}
        part = cluster_graph(adj)
        assert len(set(part.values())) == 3

    def test_empty(self):
        assert cluster_graph({}) == {}

    def test_clustering_beats_random_modularity(self):
        rng = np.random.default_rng(0)
        adj = clique_graph([[i * 10 + j for j in range(6)] for i in range(4)])
        part = cluster_graph(adj)
        q = modularity(adj, part)
        random_part = {n: int(rng.integers(0, 4)) for n in adj}
        assert q >= modularity(adj, random_part)

    def test_rng_order_still_finds_cliques(self):
        adj = clique_graph([[0, 1, 2, 3, 4], [10, 11, 12, 13, 14]])
        part = cluster_graph(adj, rng=np.random.default_rng(7))
        assert part[0] == part[4] and part[10] == part[14]
        assert part[0] != part[10]


class TestHierarchy:
    def test_depth0_single_group(self):
        adj = clique_graph([[0, 1, 2], [3, 4, 5]])
        h = build_hierarchy(adj)
        assert len(set(h.levels[0].values())) == 1

    def test_depth1_matches_flat_clustering(self):
        adj = clique_graph([[0, 1, 2, 3], [4, 5, 6, 7]])
        h = build_hierarchy(adj)
        flat = cluster_graph(adj)
        level1 = h.levels[1]
        # same grouping up to relabeling
        for u in adj:
            for v in adj:
                assert (level1[u] == level1[v]) == (flat[u] == flat[v])

    def test_group_ids_globally_unique(self):
        adj = clique_graph(
            [[i * 10 + j for j in range(5)] for i in range(4)]
        )
        h = build_hierarchy(adj, max_depth=5)
        seen = set()
        for level in h.levels:
            gids = set(level.values())
            assert not (gids & seen)
            seen |= gids

    def test_every_user_assigned_at_every_depth(self):
        adj = clique_graph([[0, 1, 2, 3], [4, 5, 6, 7]])
        h = build_hierarchy(adj, max_depth=6)
        for level in h.levels:
            assert set(level) == set(adj)

    def test_max_depth_cap(self):
        adj = clique_graph([[i * 10 + j for j in range(5)] for i in range(4)])
        h = build_hierarchy(adj, max_depth=2)
        assert h.max_depth <= 2

    def test_group_of_and_groups_at(self):
        adj = clique_graph([[0, 1, 2], [3, 4, 5]])
        h = build_hierarchy(adj)
        assert h.group_of(0, 0) == h.group_of(5, 0)
        assert h.group_of(0, 99) is None
        groups = h.groups_at(0)
        assert sum(len(m) for m in groups.values()) == 6

    def test_rows_format(self):
        adj = clique_graph([[0, 1, 2]])
        h = build_hierarchy(adj)
        rows = h.rows()
        assert all(len(r) == 3 for r in rows)
        assert rows[0][0] == 0  # depth-0 rows first


class TestGroupsTable:
    def test_build_and_replace(self):
        db = Database()
        log = db.create_table(
            TableSchema.build("Log", [("Lid", ColumnType.INT), "User", "Patient"])
        )
        log.insert_many(
            [(i, f"u{u}", p) for i, (u, p) in enumerate(FIG5_ACCESSES)]
        )
        hierarchy, access = hierarchy_from_log(db)
        table = build_groups_table(db, hierarchy)
        assert db.has_table("Groups")
        assert len(table) == len(hierarchy.rows())
        # rebuilding replaces rather than erroring
        table2 = build_groups_table(db, hierarchy)
        assert len(table2) == len(table)

    def test_hierarchy_from_log_users(self):
        db = Database()
        log = db.create_table(
            TableSchema.build("Log", [("Lid", ColumnType.INT), "User", "Patient"])
        )
        log.insert_many(
            [(i, f"u{u}", p) for i, (u, p) in enumerate(FIG5_ACCESSES)]
        )
        hierarchy, access = hierarchy_from_log(db)
        assert hierarchy.users() == {"u0", "u1", "u2", "u3"}
        assert access.density() == pytest.approx(9 / 16)
