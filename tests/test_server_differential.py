"""Differential suite: the wire API must be indistinguishable from the
in-process facade.

For shard counts {1, 2} an :class:`~repro.server.AuditServer` is put in
front of the exact service object the reference calls run on, so every
``/v1/`` endpoint can be pinned **byte-identical** (same ``to_dict``
payloads, and — for the raw-response tests — the same response bytes)
to ``AuditService``/``ShardedAuditService``.  The cursor-paginated
``unexplained`` walk must reproduce the one-shot queue, NDJSON
``explain/batch`` must stream incrementally (first line on the wire
before the last lid is evaluated), and ingest over the wire must match
an identical in-process ingest on a twin service sharing the clock.
"""

import datetime as dt
import threading

import pytest

from repro.api import (
    AuditConfig,
    ExplainRequest,
    ExplainResult,
    open_service,
    to_wire,
)
from repro.client import AuditClient
from repro.ehr import SimulationConfig, simulate
from repro.server import AuditServer, dump_json

SHARD_COUNTS = (1, 2)

#: Every served deployment shape: shard counts {1, 2} on both storage
#: backends (the sqlite worlds serve template-to-SQL pushdown executors).
WORLDS = [
    (shards, backend)
    for backend in ("memory", "sqlite")
    for shards in SHARD_COUNTS
]

#: Fixed clock => both the served service and the in-process twin stamp
#: ingested accesses identically.
FROZEN_NOW = dt.datetime(2010, 1, 9, 12, 0, 0)


def _open_service(shards: int, backend: str = "memory"):
    db = simulate(SimulationConfig.tiny(seed=7)).db
    return open_service(
        db,
        config=AuditConfig(shards=shards, backend=backend),
        clock=lambda: FROZEN_NOW,
    )


class World:
    """One served service + client + an identical in-process twin."""

    def __init__(self, shards: int, backend: str) -> None:
        self.shards = shards
        self.backend = backend
        self.service = _open_service(shards, backend)
        self.twin = _open_service(shards, backend)
        self.server = AuditServer(self.service, port=0).start()
        self.client = AuditClient(self.server.host, self.server.port)

    def close(self) -> None:
        self.client.close()
        self.server.close()
        self.service.close()
        self.twin.close()


@pytest.fixture(
    scope="module",
    params=WORLDS,
    ids=[f"shards{s}-{b}" for s, b in WORLDS],
)
def world(request):
    w = World(*request.param)
    yield w
    w.close()


def _sample_lids(world, count=25):
    queue = [v.lid for v in world.service.report().queue]
    explained = sorted(
        set(world.service.explain_all().explained), key=str
    )[: count - len(queue[:10])]
    return queue[:10] + explained + [10**9]  # plus one unknown lid


# ----------------------------------------------------------------------
# read endpoints: typed equality
# ----------------------------------------------------------------------
class TestReadDifferential:
    def test_explain(self, world):
        for lid in _sample_lids(world):
            wire = world.client.explain(lid)
            local = world.service.explain(lid)
            assert wire.to_dict() == local.to_dict()
            assert wire == local

    def test_explain_with_limit(self, world):
        request = ExplainRequest(lid=_sample_lids(world)[0], limit=1)
        assert (
            world.client.explain(request).to_dict()
            == world.service.explain(request).to_dict()
        )

    def test_patient_report(self, world):
        patients = sorted(
            {v.patient for v in world.service.report().queue}, key=str
        )[:5]
        for patient in patients:
            assert (
                world.client.patient_report(patient).to_dict()
                == world.service.patient_report(patient).to_dict()
            )

    def test_patient_report_with_limit(self, world):
        patient = world.service.report().queue[0].patient
        assert (
            world.client.patient_report(patient, limit=2).to_dict()
            == world.service.patient_report(patient, limit=2).to_dict()
        )

    def test_render_patient_report(self, world):
        patient = world.service.report().queue[0].patient
        assert world.client.render_patient_report(
            patient
        ) == world.service.render_patient_report(patient)

    def test_report(self, world):
        assert (
            world.client.report().to_dict()
            == world.service.report().to_dict()
        )

    def test_report_with_limit(self, world):
        assert (
            world.client.report(limit=3).to_dict()
            == world.service.report(limit=3).to_dict()
        )

    def test_summary(self, world):
        assert world.client.summary() == world.service.summary()

    def test_coverage(self, world):
        assert world.client.coverage() == world.service.coverage()

    def test_stats_static_fields(self, world):
        """Counter fields move between any two calls; the deployment
        facts must agree exactly."""
        wire = world.client.stats()
        local = world.service.stats()
        for key in ("log_rows", "templates", "config"):
            assert wire[key] == local[key]
        assert set(wire) == set(local)

    def test_templates_list(self, world):
        listed = world.client.templates()
        local = world.service.templates()
        assert [t["sql"] for t in listed] == [t.to_sql() for t in local]
        assert [t["name"] for t in listed] == [t.name for t in local]

    def test_template_library_round_trip(self, world):
        library = world.client.template_library()
        assert {t.to_sql() for t in library.approved_templates()} == {
            t.to_sql() for t in world.service.templates()
        }

    def test_add_templates_is_facade_identical(self, world):
        """Re-offering the registered set over the wire reports the same
        count the facade does and leaves the set unchanged (dedup)."""
        library = world.client.template_library()
        before = world.service.templates()
        assert world.client.add_templates(library) == len(before)
        assert world.service.templates() == before


# ----------------------------------------------------------------------
# read endpoints: raw byte identity
# ----------------------------------------------------------------------
class TestByteIdentity:
    def _raw(self, world, path):
        response = world.client._raw_request("GET", path)
        body = response.read()
        assert response.status == 200
        return body

    def test_explain_bytes(self, world):
        lid = _sample_lids(world)[0]
        expected = dump_json(to_wire(world.service.explain(lid)))
        assert self._raw(world, f"/v1/explain?lid={lid}") == expected

    def test_report_bytes(self, world):
        expected = dump_json(to_wire(world.service.report()))
        assert self._raw(world, "/v1/report") == expected

    def test_patient_report_bytes(self, world):
        patient = world.service.report().queue[0].patient
        expected = dump_json(to_wire(world.service.patient_report(patient)))
        assert (
            self._raw(world, f"/v1/patients/{patient}/report") == expected
        )

    def test_coverage_bytes(self, world):
        from repro.server import envelope

        expected = dump_json(
            envelope("Coverage", {"coverage": world.service.coverage()})
        )
        assert self._raw(world, "/v1/coverage") == expected


# ----------------------------------------------------------------------
# cursor pagination
# ----------------------------------------------------------------------
class TestUnexplainedPagination:
    def test_cursor_walk_equals_one_shot(self, world):
        one_shot = [v.to_dict() for v in world.service.report().queue]
        for page_size in (1, 3, 500):
            walked = [
                v.to_dict() for v in world.client.unexplained(page_size)
            ]
            assert walked == one_shot

    def test_pages_are_bounded_and_disjoint(self, world):
        items, cursor, total = world.client.unexplained_page(limit=2)
        assert len(items) <= 2
        assert total == len(world.service.report().queue)
        if cursor is not None:
            second, _, _ = world.client.unexplained_page(cursor, limit=2)
            first_lids = {v.lid for v in items}
            assert all(v.lid not in first_lids for v in second)

    def test_unexplained_lids_matches_facade(self, world):
        assert (
            world.client.unexplained_lids(page_size=7)
            == world.service.unexplained_lids()
        )

    def test_final_page_has_no_cursor(self, world):
        total = len(world.service.report().queue)
        items, cursor, _ = world.client.unexplained_page(limit=max(total, 1))
        assert len(items) == total
        assert cursor is None

    def test_unexplained_queue_facade_matches_report_queue(self, world):
        assert world.service.unexplained_queue() == world.service.report().queue


def test_cursor_survives_backdated_ingest():
    """Key-based cursors: a back-dated unexplained access ingested
    mid-walk must neither re-serve already-served items nor skip
    still-unserved ones."""
    service = _open_service(shards=1)
    try:
        with (
            AuditServer(service, port=0) as server,
            AuditClient(server.host, server.port) as client,
        ):
            before = [v.lid for v in service.unexplained_queue()]
            assert len(before) >= 4, "need a walkable queue"
            first, cursor, _ = client.unexplained_page(limit=2)
            assert cursor is not None
            # an unexplainable access dated before the queue head
            backdated = client.ingest(
                "zz-nobody", "zz-nobody", dt.datetime(2000, 1, 1)
            )
            assert backdated.suspicious
            rest = []
            while cursor is not None:
                items, cursor, _ = client.unexplained_page(cursor, limit=2)
                rest.extend(items)
            served = [v.lid for v in first] + [v.lid for v in rest]
            assert served == before  # no dupes, no skips
            assert backdated.lid not in served  # not in this snapshot
    finally:
        service.close()


# ----------------------------------------------------------------------
# NDJSON streaming
# ----------------------------------------------------------------------
class TestExplainBatchStream:
    def test_matches_per_lid_explain(self, world):
        lids = _sample_lids(world)
        streamed = list(world.client.explain_batch(lids))
        assert [r.lid for r in streamed] == lids
        for result in streamed:
            assert (
                result.to_dict() == world.service.explain(result.lid).to_dict()
            )

    def test_agrees_with_batch_partition(self, world):
        lids = _sample_lids(world)
        streamed = {r.lid: r.explained for r in world.client.explain_batch(lids)}
        partition = world.service.explain_batch(lids)
        for lid in lids:
            assert streamed[lid] == (lid in partition.explained)


class _GatedService:
    """explain() blocks on ``gate`` for one designated lid — proof the
    server flushes earlier NDJSON lines before later lids are computed."""

    def __init__(self) -> None:
        self.gate = threading.Event()

    def explain(self, request):
        if request.lid == "slow":
            assert self.gate.wait(timeout=30), "stream never released"
        return ExplainResult(lid=request.lid, explanations=())


def test_ndjson_streams_incrementally():
    service = _GatedService()
    with AuditServer(service, port=0) as server:
        client = AuditClient(server.host, server.port, timeout=30)
        stream = client.explain_batch(["fast", "slow"])
        first = next(stream)  # must arrive while "slow" is still blocked
        assert first.lid == "fast"
        assert not service.gate.is_set()
        service.gate.set()
        rest = list(stream)
        assert [r.lid for r in rest] == ["slow"]
        client.close()


# ----------------------------------------------------------------------
# writers over the wire
# ----------------------------------------------------------------------
class TestIngestDifferential:
    def test_single_ingest_matches_twin(self, world):
        wire = world.client.ingest("uXWIRE", "pXWIRE")
        local = world.twin.ingest("uXWIRE", "pXWIRE")
        assert wire.to_dict() == local.to_dict()

    def test_explicit_date_round_trips(self, world):
        stamp = dt.datetime(2010, 1, 10, 9, 30, 1)
        wire = world.client.ingest("uXW2", "pXW2", stamp)
        local = world.twin.ingest("uXW2", "pXW2", stamp)
        assert wire.to_dict() == local.to_dict()
        assert wire.date == stamp

    def test_batch_ingest_matches_twin(self, world):
        batch = [
            ("uXB1", "pXB1", None),
            ("uXB2", "pXB2", dt.datetime(2010, 1, 11, 8, 0, 0)),
            ("uXB1", "pXB1", None),
        ]
        wire = world.client.ingest_many(batch)
        local = world.twin.ingest_many(batch)
        assert [r.to_dict() for r in wire] == [r.to_dict() for r in local]

    def test_state_converges_after_wire_ingest(self, world):
        """After identical ingests, served and twin services agree on
        the whole audit view — the wire added nothing and lost nothing."""
        assert (
            world.client.report().to_dict() == world.twin.report().to_dict()
        )
        assert world.client.coverage() == world.twin.coverage()
