"""Tests for the template library and the administrator review loop."""

import pytest

from repro.core import (
    MiningConfig,
    OneWayMiner,
    ReviewStatus,
    TemplateLibrary,
)


@pytest.fixture
def mined(fig3_db, fig3_graph):
    cfg = MiningConfig(support_fraction=0.5, max_length=4, max_tables=3)
    return OneWayMiner(fig3_db, fig3_graph, cfg).mine()


@pytest.fixture
def library(mined):
    return TemplateLibrary.from_mining_result(mined)


class TestReviewWorkflow:
    def test_mined_templates_start_suggested(self, library):
        assert all(
            entry.status is ReviewStatus.SUGGESTED for entry in library
        )
        assert library.counts()["suggested"] == len(library)

    def test_supports_carried(self, library, mined):
        supports = {e.support for e in library}
        assert supports == {m.support for m in mined.templates}

    def test_approve_and_reject(self, library):
        entries = library.entries()
        library.approve(entries[0].template)
        library.reject(entries[1].template)
        counts = library.counts()
        assert counts["approved"] == 1 and counts["rejected"] == 1
        approved = library.approved_templates()
        assert len(approved) == 1
        assert approved[0].signature() == entries[0].template.signature()

    def test_approve_unknown_rejected(self, library, fig3_graph):
        from repro.audit import repeat_access_template

        foreign = repeat_access_template(fig3_graph)
        with pytest.raises(KeyError):
            library.approve(foreign)

    def test_bulk_approve(self, library):
        n = library.approve_all_suggested()
        assert n == len(library)
        assert library.counts()["approved"] == len(library)
        # idempotent
        assert library.approve_all_suggested() == 0

    def test_signature_dedup(self, library):
        entry = library.entries()[0]
        before = len(library)
        library.add(entry.template)  # same signature overwrites
        assert len(library) == before

    def test_filter_by_status(self, library):
        library.approve(library.entries()[0].template)
        assert len(library.entries(ReviewStatus.APPROVED)) == 1
        assert len(library.entries(ReviewStatus.SUGGESTED)) == len(library) - 1


class TestPersistence:
    def test_dumps_shape(self, library):
        text = library.dumps()
        assert "-- status: suggested" in text
        assert "SELECT DISTINCT L.Lid" in text
        assert text.count(";") == len(library)

    def test_roundtrip(self, library, tmp_path):
        library.approve(library.entries()[0].template)
        path = str(tmp_path / "templates.sql")
        library.save(path)
        loaded = TemplateLibrary.load(path)
        assert len(loaded) == len(library)
        assert loaded.counts() == library.counts()
        original = {e.key for e in library}
        restored = {e.key for e in loaded}
        assert original == restored

    def test_roundtrip_preserves_support_and_description(self, tmp_path, fig3_graph):
        from repro.audit import event_user_template

        # reuse the hand-crafted builder against Figure 3's schema
        template = event_user_template(fig3_graph, "Appointments", "Doctor")
        library = TemplateLibrary()
        library.add(template, ReviewStatus.APPROVED, support=42)
        path = str(tmp_path / "t.sql")
        library.save(path)
        loaded = TemplateLibrary.load(path)
        entry = loaded.entries()[0]
        assert entry.support == 42
        assert entry.status is ReviewStatus.APPROVED
        assert entry.template.description is not None
        assert "appointment" in entry.template.description

    def test_loads_empty(self):
        assert len(TemplateLibrary.loads("")) == 0

    def test_engine_uses_approved_only(self, library, fig3_db):
        from repro.core import ExplanationEngine

        library.approve(library.entries()[0].template)
        engine = ExplanationEngine(fig3_db, library.approved_templates())
        assert len(engine.templates) == 1
