"""Tests for the command-line interface (generate/groups/mine/explain/
audit/evaluate) driving a real round-trip through the CSV store."""

import os

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def dbdir(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "hospital")
    code = main(["generate", "--out", path, "--scale", "tiny", "--seed", "5"])
    assert code == 0
    code = main(["groups", "--db", path])
    assert code == 0
    return path


class TestGenerate:
    def test_creates_database_dir(self, dbdir):
        assert os.path.exists(os.path.join(dbdir, "_schema.json"))
        assert os.path.exists(os.path.join(dbdir, "Log.csv"))

    def test_output_mentions_log(self, dbdir, capsys):
        main(["generate", "--out", dbdir + "2", "--scale", "tiny"])
        out = capsys.readouterr().out
        assert "log=" in out and "saved to" in out


class TestGroups:
    def test_groups_table_persisted(self, dbdir):
        assert os.path.exists(os.path.join(dbdir, "Groups.csv"))

    def test_reports_depths(self, dbdir, capsys):
        main(["groups", "--db", dbdir])
        out = capsys.readouterr().out
        assert "depth 0" in out and "group rows" in out


class TestMine:
    def test_one_way(self, dbdir, capsys):
        code = main(
            [
                "mine",
                "--db",
                dbdir,
                "--support",
                "0.02",
                "--max-length",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "templates" in out
        assert "SELECT DISTINCT L.Lid" in out

    def test_bridge(self, dbdir, capsys):
        code = main(
            [
                "mine",
                "--db",
                dbdir,
                "--support",
                "0.05",
                "--max-length",
                "2",
                "--algorithm",
                "bridge",
            ]
        )
        assert code == 0
        assert "bridge-2" in capsys.readouterr().out


class TestExplain:
    def test_explain_lid(self, dbdir, capsys):
        code = main(["explain", "--db", dbdir, "--lid", "1"])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "access 1" in out

    def test_explain_patient_report(self, dbdir, capsys):
        # find a patient from the CSV log
        with open(os.path.join(dbdir, "Log.csv")) as fh:
            next(fh)
            patient = next(fh).strip().split(",")[3]
        code = main(["explain", "--db", dbdir, "--patient", patient])
        assert code == 0
        assert f"patient {patient}" in capsys.readouterr().out

    def test_explain_requires_target(self, dbdir, capsys):
        assert main(["explain", "--db", dbdir]) == 2


class TestAuditAndEvaluate:
    def test_audit_summary(self, dbdir, capsys):
        assert main(["audit", "--db", dbdir]) == 0
        out = capsys.readouterr().out
        assert "review queue" in out
        assert "unexplained" in out

    def test_audit_batch_toggle_identical_output(self, dbdir, capsys):
        """--batch (semijoin) and --no-batch (point path) agree exactly."""
        assert main(["audit", "--db", dbdir, "--batch"]) == 0
        batch_out = capsys.readouterr().out
        assert main(["audit", "--db", dbdir, "--no-batch"]) == 0
        point_out = capsys.readouterr().out
        assert batch_out == point_out
        assert "review queue" in batch_out

    def test_evaluate_coverage(self, dbdir, capsys):
        assert main(["evaluate", "--db", dbdir]) == 0
        out = capsys.readouterr().out
        assert "explained" in out and "%" in out


class TestTemplateLibraryFlow:
    def test_mine_save_then_audit_with_library(self, dbdir, tmp_path, capsys):
        lib_path = str(tmp_path / "templates.sql")
        code = main(
            [
                "mine",
                "--db",
                dbdir,
                "--support",
                "0.02",
                "--max-length",
                "2",
                "--save",
                lib_path,
            ]
        )
        assert code == 0
        assert os.path.exists(lib_path)
        text = open(lib_path).read()
        assert "-- status: suggested" in text
        # approve everything by editing the artifact (the admin's action)
        with open(lib_path, "w") as fh:
            fh.write(text.replace("-- status: suggested", "-- status: approved"))
        capsys.readouterr()
        code = main(["audit", "--db", dbdir, "--templates", lib_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "review queue" in out
        assert "note: no approved" not in out

    def test_explain_with_library_renders_descriptions(
        self, dbdir, tmp_path, capsys
    ):
        """Library templates get CareWeb natural-language descriptions in
        explain output (not the generic join-chain fallback)."""
        lib_path = str(tmp_path / "desc.sql")
        main(
            [
                "mine", "--db", dbdir, "--support", "0.02",
                "--max-length", "2", "--save", lib_path,
            ]
        )
        text = open(lib_path).read()
        with open(lib_path, "w") as fh:
            fh.write(text.replace("-- status: suggested", "-- status: approved"))
        capsys.readouterr()
        for lid in range(1, 40):
            code = main(
                ["explain", "--db", dbdir, "--lid", str(lid),
                 "--templates", lib_path]
            )
            out = capsys.readouterr().out
            if code == 0:
                assert "because" in out, out
                assert "connection:" not in out, out
                return
        pytest.fail("no explained access found in the first 40 lids")

    def test_unapproved_library_falls_back_with_note(self, dbdir, tmp_path, capsys):
        lib_path = str(tmp_path / "raw.sql")
        main(
            [
                "mine", "--db", dbdir, "--support", "0.05",
                "--max-length", "2", "--save", lib_path,
            ]
        )
        capsys.readouterr()
        code = main(["evaluate", "--db", dbdir, "--templates", lib_path])
        assert code == 0
        assert "note: no approved" in capsys.readouterr().out


class TestJsonOutput:
    """--json prints the typed response's to_dict() form."""

    def test_audit_json(self, dbdir, capsys):
        import json

        assert main(["audit", "--db", dbdir, "--json", "--limit", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {"total", "explained", "unexplained", "coverage", "queue",
                "user_risk"} <= set(payload)
        assert len(payload["queue"]) <= 3

    def test_explain_lid_json(self, dbdir, capsys):
        import json

        code = main(["explain", "--db", dbdir, "--lid", "1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["lid"] == 1
        assert code == (0 if payload["explained"] else 1)

    def test_explain_patient_json(self, dbdir, capsys):
        import json
        import os

        with open(os.path.join(dbdir, "Log.csv")) as fh:
            next(fh)
            patient = next(fh).strip().split(",")[3]
        assert main(["explain", "--db", dbdir, "--patient", patient, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["patient"] == patient
        assert payload["entries"]

    def test_evaluate_json(self, dbdir, capsys):
        import json

        assert main(["evaluate", "--db", dbdir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert 0.0 <= payload["coverage"] <= 1.0 and payload["total"] > 0

    def test_mine_json_and_save_json(self, dbdir, tmp_path, capsys):
        import json

        lib_path = str(tmp_path / "mined.json")
        code = main(
            [
                "mine", "--db", dbdir, "--support", "0.05",
                "--max-length", "2", "--json", "--save-json", lib_path,
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "one-way"
        assert all({"sql", "support", "length"} <= set(t)
                   for t in payload["templates"])
        from repro.api import TemplateLibrary

        loaded = TemplateLibrary.load(lib_path)
        assert len(loaded) == len(payload["templates"])


class TestReproduce:
    def test_writes_markdown_report(self, tmp_path, capsys):
        out = str(tmp_path / "report.md")
        code = main(["reproduce", "--out", out, "--scale", "tiny", "--seed", "3"])
        assert code == 0
        text = open(out).read()
        assert text.startswith("# Explanation-Based Auditing")
        for heading in ("Figure 6", "Figure 9", "Figure 12", "Figure 14",
                        "Table 1", "Headline"):
            assert heading in text
        # Figure 13 omitted unless explicitly requested
        assert "Figure 13" not in text


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
