"""Shared fixtures: the paper's running-example databases.

``fig3_db``     — exactly Figure 3 (Log, Appointments, Doctor_Info).
``fig3_graph``  — its explanation graph with the Example 3.2 edge set.
``hospital_db`` — a slightly larger hand-built hospital with groups,
                  used by template/engine/mining tests that need richer
                  structure without the full synthetic generator.
"""

import pytest

from repro.api.locks import (
    LockSanitizerError,
    consume_fork_violations,
    held_locks_in_thread,
)
from repro.core import SchemaAttr, SchemaGraph
from repro.db import ColumnType, Database, TableSchema


@pytest.fixture(autouse=True)
def _lock_sanitizer_check():
    """Fail any test that leaks an RWLock hold or forked while holding
    one.  Both tables are only populated under ``REPRO_SANITIZE=1``, so
    this is free in a normal run and is the teeth of the sanitized CI
    job."""
    yield
    leaked = held_locks_in_thread()
    assert not leaked, f"test leaked RWLock holds: {leaked}"
    violations = consume_fork_violations()
    if violations:
        raise LockSanitizerError("; ".join(violations))


@pytest.fixture
def fig3_db():
    db = Database("fig3")
    log = db.create_table(
        TableSchema.build(
            "Log",
            [("Lid", ColumnType.INT), ("Date", ColumnType.INT), "User", "Patient"],
            primary_key=["Lid"],
        )
    )
    appts = db.create_table(
        TableSchema.build(
            "Appointments", ["Patient", "Doctor", ("Date", ColumnType.INT)]
        )
    )
    info = db.create_table(TableSchema.build("Doctor_Info", ["Doctor", "Department"]))
    log.insert_many([(1, 1, "Dave", "Alice"), (2, 2, "Dave", "Bob")])
    appts.insert_many([("Alice", "Dave", 1), ("Bob", "Mike", 2)])
    info.insert_many([("Mike", "Pediatrics"), ("Dave", "Pediatrics")])
    return db


@pytest.fixture
def fig3_graph(fig3_db):
    graph = SchemaGraph(fig3_db)
    graph.add_relationship(
        SchemaAttr("Log", "Patient"), SchemaAttr("Appointments", "Patient")
    )
    graph.add_relationship(
        SchemaAttr("Appointments", "Doctor"), SchemaAttr("Log", "User")
    )
    graph.add_relationship(
        SchemaAttr("Appointments", "Doctor"), SchemaAttr("Doctor_Info", "Doctor")
    )
    graph.add_relationship(
        SchemaAttr("Doctor_Info", "Doctor"), SchemaAttr("Log", "User")
    )
    graph.allow_self_join("Doctor_Info", "Department")
    return graph


@pytest.fixture
def hospital_db():
    """Log + Appointments + Groups, with repeat accesses and group links."""
    db = Database("hospital")
    log = db.create_table(
        TableSchema.build(
            "Log",
            [("Lid", ColumnType.INT), ("Date", ColumnType.INT), "User", "Patient"],
            primary_key=["Lid"],
        )
    )
    appts = db.create_table(
        TableSchema.build(
            "Appointments", ["Patient", "Doctor", ("Date", ColumnType.INT)]
        )
    )
    groups = db.create_table(
        TableSchema.build(
            "Groups", [("Group_Depth", ColumnType.INT), ("Group_id", ColumnType.INT), "User"]
        )
    )
    # Dr. Dave sees Alice (appt); Nurse Nick is in Dave's group and also
    # accesses Alice; Dave re-reads Alice later; Eve snoops on Bob.
    log.insert_many(
        [
            (100, 1, "Nick", "Alice"),
            (116, 2, "Dave", "Alice"),
            (127, 3, "Ron", "Alice"),
            (130, 9, "Dave", "Alice"),
            (900, 4, "Eve", "Bob"),
        ]
    )
    appts.insert_many([("Alice", "Dave", 1), ("Bob", "Sam", 2)])
    groups.insert_many(
        [
            (1, 10, "Dave"),
            (1, 10, "Nick"),
            (1, 10, "Ron"),
            (1, 11, "Sam"),
            (1, 12, "Eve"),
        ]
    )
    return db


@pytest.fixture
def hospital_graph(hospital_db):
    graph = SchemaGraph(hospital_db)
    graph.add_relationship(
        SchemaAttr("Log", "Patient"), SchemaAttr("Appointments", "Patient")
    )
    graph.add_relationship(
        SchemaAttr("Appointments", "Doctor"), SchemaAttr("Log", "User")
    )
    graph.add_relationship(
        SchemaAttr("Appointments", "Doctor"), SchemaAttr("Groups", "User")
    )
    graph.add_relationship(SchemaAttr("Groups", "User"), SchemaAttr("Log", "User"))
    graph.allow_self_join("Groups", "Group_id")
    graph.allow_self_join("Log", "Patient")
    graph.allow_self_join("Log", "User")
    return graph
