"""The repro-lint suite linting itself: fixture modules under
``tests/fixtures/lint/`` seed one violation per rule (plus a clean
twin); these tests pin the exact codes and positions, the suppression
comment, the CLI surface, and — the acceptance bar — that the real
tree lints clean."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import CHECKERS, run_lint
from repro.analysis.cli import main as lint_main

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = "tests/fixtures/lint"


def lint(*paths, **kwargs):
    return run_lint(ROOT, tuple(paths), **kwargs)


def findings(*paths, **kwargs):
    return [
        (d.path, d.line, d.col, d.code)
        for d in lint(*paths, **kwargs).diagnostics
    ]


# ----------------------------------------------------------------------
# one seeded violation per rule, exact code and position
# ----------------------------------------------------------------------
class TestSeededViolations:
    def test_rl001_reader_path_mutation(self):
        assert findings(f"{FIXTURES}/rl001_bad.py") == [
            (f"{FIXTURES}/rl001_bad.py", 20, 13, "RL001")
        ]

    def test_rl001_message_names_the_call_chain(self):
        (diag,) = lint(f"{FIXTURES}/rl001_bad.py").diagnostics
        assert "'lookup'" in diag.message
        assert "'_fetch'" in diag.message
        assert "'self._cache'" in diag.message

    def test_rl002_missing_from_dict_and_unregistered_kind(self):
        assert findings(f"{FIXTURES}/rl002_messages_bad.py") == [
            (f"{FIXTURES}/rl002_messages_bad.py", 20, 1, "RL002"),
            (f"{FIXTURES}/rl002_messages_bad.py", 28, 1, "RL002"),
        ]
        first, second = lint(f"{FIXTURES}/rl002_messages_bad.py").diagnostics
        assert "NoFromDict" in first.message and "from_dict" in first.message
        assert "Unregistered" in second.message and "WIRE_KINDS" in second.message

    def test_rl003_swallow_and_bare_raise(self):
        assert findings(f"{FIXTURES}/rl003_bad.py") == [
            (f"{FIXTURES}/rl003_bad.py", 7, 5, "RL003"),
            (f"{FIXTURES}/rl003_bad.py", 12, 5, "RL003"),
        ]

    def test_rl004_lock_closure_and_blocking_call(self):
        # the direct blocking call on line 16 moved to RL008's
        # jurisdiction when the transitive check subsumed RL004's
        assert findings(f"{FIXTURES}/rl004_bad.py") == [
            (f"{FIXTURES}/rl004_bad.py", 7, 8, "RL004"),
            (f"{FIXTURES}/rl004_bad.py", 12, 22, "RL004"),
            (f"{FIXTURES}/rl004_bad.py", 16, 5, "RL008"),
        ]

    def test_rl005_missing_envelope_and_smoke(self):
        result = lint(f"{FIXTURES}/bench_rl005_bad.py")
        assert [
            (d.line, d.col, d.code) for d in result.diagnostics
        ] == [(1, 1, "RL005"), (1, 1, "RL005")]
        blob = " ".join(d.message for d in result.diagnostics)
        assert "REPRO_BENCH_SMOKE" in blob
        assert "benchlib" in blob

    @pytest.mark.parametrize(
        "twin",
        [
            "rl001_clean.py",
            "rl002_messages_clean.py",
            "rl003_clean.py",
            "rl004_clean.py",
            "bench_rl005_clean.py",
            "rl006_clean.py",
            "rl007_clean.py",
            "rl008_clean.py",
            "rl009_clean.py",
        ],
    )
    def test_clean_twins(self, twin):
        assert findings(f"{FIXTURES}/{twin}") == []

    def test_each_violation_is_nonzero_exit(self):
        for bad in (
            "rl001_bad.py",
            "rl002_messages_bad.py",
            "rl003_bad.py",
            "rl004_bad.py",
            "bench_rl005_bad.py",
            "rl006_bad.py",
            "rl007_bad.py",
            "rl008_bad.py",
            "rl009_bad.py",
        ):
            assert lint(f"{FIXTURES}/{bad}").exit_code == 1


# ----------------------------------------------------------------------
# the flow-sensitive rules: call graph + CFG dataflow
# ----------------------------------------------------------------------
class TestFlowRules:
    def test_rl006_all_four_violation_shapes(self):
        assert findings(f"{FIXTURES}/rl006_bad.py") == [
            (f"{FIXTURES}/rl006_bad.py", 31, 17, "RL006"),
            (f"{FIXTURES}/rl006_bad.py", 37, 17, "RL006"),
            (f"{FIXTURES}/rl006_bad.py", 41, 20, "RL006"),
            (f"{FIXTURES}/rl006_bad.py", 46, 18, "RL006"),
        ]

    def test_rl006_messages_name_the_chain_and_the_lock(self):
        mutate, upgrade_chain, fork, upgrade = lint(
            f"{FIXTURES}/rl006_bad.py", select=frozenset({"RL006"})
        ).diagnostics
        assert "'warm_cache'" in mutate.message
        assert "'self._cache'" in mutate.message
        assert "'rebuild'" in upgrade_chain.message
        assert "write lock" in upgrade_chain.message
        assert "ProcessPoolExecutor" in fork.message
        assert "upgrading the read lock" in upgrade.message
        assert "'self._lock'" in upgrade.message

    def test_rl007_taint_reaches_every_sink_spelling(self):
        assert findings(f"{FIXTURES}/rl007_bad.py") == [
            (f"{FIXTURES}/rl007_bad.py", 6, 18, "RL007"),
            (f"{FIXTURES}/rl007_bad.py", 11, 24, "RL007"),
            (f"{FIXTURES}/rl007_bad.py", 15, 20, "RL007"),
            (f"{FIXTURES}/rl007_bad.py", 19, 22, "RL007"),
        ]

    def test_rl007_message_points_at_the_fix(self):
        diag = lint(f"{FIXTURES}/rl007_bad.py").diagnostics[0]
        assert "quote_ident()" in diag.message
        assert "parameters" in diag.message

    def test_rl008_transitive_and_direct_blocking(self):
        assert findings(f"{FIXTURES}/rl008_bad.py") == [
            (f"{FIXTURES}/rl008_bad.py", 22, 12, "RL008"),
            (f"{FIXTURES}/rl008_bad.py", 26, 5, "RL008"),
        ]
        transitive, direct = lint(f"{FIXTURES}/rl008_bad.py").diagnostics
        assert "'load_page -> fetch_rows'" in transitive.message
        assert "sqlite3.connect" in transitive.message
        assert "time.sleep" in direct.message

    def test_rl009_route_path_and_kind_drift(self):
        assert findings(f"{FIXTURES}/rl009_bad.py") == [
            (f"{FIXTURES}/rl009_bad.py", 19, 13, "RL009"),
            (f"{FIXTURES}/rl009_bad.py", 35, 48, "RL009"),
            (f"{FIXTURES}/rl009_bad.py", 35, 64, "RL009"),
        ]
        route, path, kind = lint(f"{FIXTURES}/rl009_bad.py").diagnostics
        assert "/v1/orphan" in route.message
        assert "/v1/missing" in path.message
        assert "'Ghost'" in kind.message


# ----------------------------------------------------------------------
# suppression comments
# ----------------------------------------------------------------------
class TestSuppression:
    def test_coded_and_bare_ignores_silence_wrong_code_does_not(self):
        result = lint(f"{FIXTURES}/suppressed.py")
        assert [(d.line, d.code) for d in result.diagnostics] == [(21, "RL003")]
        assert result.suppressed == 2

    def test_suppressed_findings_do_not_fail_the_run(self):
        result = lint(f"{FIXTURES}/suppressed.py", select=frozenset({"RL001"}))
        assert result.exit_code == 0

    def test_ignore_for_the_wrong_code_is_reported_unused(self):
        result = lint(f"{FIXTURES}/suppressed.py")
        assert result.unused_suppressions == (
            (f"{FIXTURES}/suppressed.py", 21, "RL001"),
        )

    def test_unused_suppressions_never_affect_the_exit_code(self):
        # With only RL001 active, nothing fires: the bare ignore and the
        # RL001-coded ignore both silence nothing, yet the run is clean.
        result = lint(f"{FIXTURES}/suppressed.py", select=frozenset({"RL001"}))
        assert result.unused_suppressions == (
            (f"{FIXTURES}/suppressed.py", 14, ""),
            (f"{FIXTURES}/suppressed.py", 21, "RL001"),
        )
        assert result.exit_code == 0

    def test_coded_ignore_for_an_inactive_rule_is_not_judged(self):
        # ignore[RL001] cannot be called unused by a run that never ran
        # RL001; the bare/RL003 ignores are used by the RL003 findings.
        result = lint(f"{FIXTURES}/suppressed.py", select=frozenset({"RL003"}))
        assert result.unused_suppressions == ()

    def test_doc_mentions_of_the_syntax_are_not_suppressions(self):
        # The linter's own diagnostics module *documents* the ignore
        # comment in docstrings and doc-comments; only genuine comment
        # tokens opening with the directive may count.
        result = lint("src/repro/analysis/diagnostics.py")
        assert result.unused_suppressions == ()
        assert result.suppressed == 0


# ----------------------------------------------------------------------
# the incremental result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_warm_hit_reproduces_the_result_without_parsing(
        self, tmp_path, monkeypatch
    ):
        cdir = tmp_path / "cache"
        cold = lint(f"{FIXTURES}/rl003_bad.py", cache_dir=cdir)
        assert cold.diagnostics

        from repro.analysis.project import Project

        def no_parse(self, rel, explicit):  # pragma: no cover - must not run
            raise AssertionError("a cache hit must not parse any file")

        monkeypatch.setattr(Project, "_parse", no_parse)
        warm = lint(f"{FIXTURES}/rl003_bad.py", cache_dir=cdir)
        assert warm == cold

    def test_editing_a_file_invalidates_the_entry(self, tmp_path):
        mod = tmp_path / "src" / "broken.py"
        mod.parent.mkdir()
        mod.write_text("def f(:\n", encoding="utf-8")
        cdir = tmp_path / ".cache"

        first = run_lint(tmp_path, ("src/broken.py",), cache_dir=cdir)
        assert [d.code for d in first.diagnostics] == ["RL000"]
        assert run_lint(tmp_path, ("src/broken.py",), cache_dir=cdir) == first

        mod.write_text("def f():\n    return 1\n", encoding="utf-8")
        fixed = run_lint(tmp_path, ("src/broken.py",), cache_dir=cdir)
        assert fixed.diagnostics == ()

    def test_rule_selection_is_part_of_the_key(self, tmp_path):
        cdir = tmp_path / "cache"
        full = lint(f"{FIXTURES}/rl003_bad.py", cache_dir=cdir)
        narrow = lint(
            f"{FIXTURES}/rl003_bad.py",
            select=frozenset({"RL001"}),
            cache_dir=cdir,
        )
        assert full.diagnostics and not narrow.diagnostics

    def test_corrupt_entry_is_treated_as_a_miss(self, tmp_path):
        cdir = tmp_path / "cache"
        cold = lint(f"{FIXTURES}/rl003_bad.py", cache_dir=cdir)
        for entry in cdir.glob("*.json"):
            entry.write_text("not json", encoding="utf-8")
        rerun = lint(f"{FIXTURES}/rl003_bad.py", cache_dir=cdir)
        assert rerun == cold


# ----------------------------------------------------------------------
# select / ignore / registry
# ----------------------------------------------------------------------
class TestRuleSelection:
    def test_registry_has_the_nine_rules(self):
        assert sorted(CHECKERS) == [
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
            "RL008",
            "RL009",
        ]

    def test_select_restricts(self):
        result = lint(f"{FIXTURES}/rl003_bad.py", select=frozenset({"RL001"}))
        assert result.diagnostics == ()
        assert result.rules == ("RL001",)

    def test_ignore_drops(self):
        result = lint(f"{FIXTURES}/rl003_bad.py", ignore=frozenset({"RL003"}))
        assert result.diagnostics == ()

    def test_unknown_code_raises(self):
        with pytest.raises(ValueError, match="RL999"):
            lint(f"{FIXTURES}/rl003_bad.py", select=frozenset({"RL999"}))


# ----------------------------------------------------------------------
# the CLI surface
# ----------------------------------------------------------------------
class TestCli:
    @pytest.fixture(autouse=True)
    def _cache_in_tmp(self, tmp_path, monkeypatch):
        """Keep the default-on result cache out of the real checkout."""
        monkeypatch.setattr(
            "repro.analysis.cli.DEFAULT_CACHE_DIR", str(tmp_path / "cache")
        )

    def test_exit_codes(self, monkeypatch):
        monkeypatch.chdir(ROOT)
        assert lint_main([f"{FIXTURES}/rl003_clean.py"]) == 0
        assert lint_main([f"{FIXTURES}/rl003_bad.py"]) == 1
        assert lint_main(["--select", "NOPE"]) == 2

    def test_text_output_is_ruff_style(self, monkeypatch, capsys):
        monkeypatch.chdir(ROOT)
        lint_main([f"{FIXTURES}/rl003_bad.py"])
        out = capsys.readouterr().out
        assert f"{FIXTURES}/rl003_bad.py:7:5 RL003 " in out

    def test_json_output_shape(self, monkeypatch, capsys):
        monkeypatch.chdir(ROOT)
        lint_main(["--output", "json", f"{FIXTURES}/rl003_bad.py"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert [f["code"] for f in payload["findings"]] == ["RL003", "RL003"]
        assert payload["findings"][0]["line"] == 7
        assert payload["stats"]["findings_by_code"] == {"RL003": 2}

    def test_github_output_renders_error_annotations(self, monkeypatch, capsys):
        monkeypatch.chdir(ROOT)
        lint_main(["--output", "github", f"{FIXTURES}/rl003_bad.py"])
        out = capsys.readouterr().out
        assert (
            f"::error file={FIXTURES}/rl003_bad.py,line=7,col=5,title=RL003::"
            in out
        )

    def test_stats_mode_emits_machine_readable_summary(
        self, monkeypatch, capsys
    ):
        monkeypatch.chdir(ROOT)
        lint_main(["--stats", f"{FIXTURES}/suppressed.py"])
        stats = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert stats["files_scanned"] == 1
        assert stats["rules"] == [
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
            "RL008",
            "RL009",
        ]
        assert stats["findings"] == 1
        assert stats["suppressed"] == 2
        assert stats["unused_suppressions"] == [
            f"{FIXTURES}/suppressed.py:21 [RL001]"
        ]

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in CHECKERS:
            assert code in out

    def test_cache_dir_flag_and_no_cache(self, monkeypatch, tmp_path):
        monkeypatch.chdir(ROOT)
        cdir = tmp_path / "lint-cache"
        args = ["--cache-dir", str(cdir), f"{FIXTURES}/rl003_bad.py"]
        assert lint_main(args) == 1
        assert any(p.name != "stat.json" for p in cdir.glob("*.json"))
        assert lint_main(args) == 1  # warm hit, same verdict
        assert lint_main(["--no-cache", f"{FIXTURES}/rl003_bad.py"]) == 1

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            cwd=ROOT,
            env={**os.environ, "PYTHONPATH": "src"},
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0
        assert "RL001" in proc.stdout

    def test_repro_audit_lint_subcommand(self, monkeypatch, capsys):
        from repro.cli import main as cli_main

        monkeypatch.chdir(ROOT)
        assert cli_main(["lint", "--", "--list-rules"]) == 0
        assert "RL005" in capsys.readouterr().out


# ----------------------------------------------------------------------
# the acceptance bar: the shipped tree is clean
# ----------------------------------------------------------------------
class TestRealTree:
    def test_src_and_benchmarks_lint_clean(self):
        result = lint()  # default paths: src + benchmarks
        assert result.diagnostics == ()
        assert result.exit_code == 0
        assert result.files_scanned > 90

    def test_discovery_skips_the_seeded_fixtures(self):
        result = lint("tests")
        assert all(FIXTURES not in d.path for d in result.diagnostics)
