"""The repro-lint suite linting itself: fixture modules under
``tests/fixtures/lint/`` seed one violation per rule (plus a clean
twin); these tests pin the exact codes and positions, the suppression
comment, the CLI surface, and — the acceptance bar — that the real
tree lints clean."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import CHECKERS, run_lint
from repro.analysis.cli import main as lint_main

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = "tests/fixtures/lint"


def lint(*paths, **kwargs):
    return run_lint(ROOT, tuple(paths), **kwargs)


def findings(*paths, **kwargs):
    return [
        (d.path, d.line, d.col, d.code)
        for d in lint(*paths, **kwargs).diagnostics
    ]


# ----------------------------------------------------------------------
# one seeded violation per rule, exact code and position
# ----------------------------------------------------------------------
class TestSeededViolations:
    def test_rl001_reader_path_mutation(self):
        assert findings(f"{FIXTURES}/rl001_bad.py") == [
            (f"{FIXTURES}/rl001_bad.py", 20, 13, "RL001")
        ]

    def test_rl001_message_names_the_call_chain(self):
        (diag,) = lint(f"{FIXTURES}/rl001_bad.py").diagnostics
        assert "'lookup'" in diag.message
        assert "'_fetch'" in diag.message
        assert "'self._cache'" in diag.message

    def test_rl002_missing_from_dict_and_unregistered_kind(self):
        assert findings(f"{FIXTURES}/rl002_messages_bad.py") == [
            (f"{FIXTURES}/rl002_messages_bad.py", 20, 1, "RL002"),
            (f"{FIXTURES}/rl002_messages_bad.py", 28, 1, "RL002"),
        ]
        first, second = lint(f"{FIXTURES}/rl002_messages_bad.py").diagnostics
        assert "NoFromDict" in first.message and "from_dict" in first.message
        assert "Unregistered" in second.message and "WIRE_KINDS" in second.message

    def test_rl003_swallow_and_bare_raise(self):
        assert findings(f"{FIXTURES}/rl003_bad.py") == [
            (f"{FIXTURES}/rl003_bad.py", 7, 5, "RL003"),
            (f"{FIXTURES}/rl003_bad.py", 12, 5, "RL003"),
        ]

    def test_rl004_lock_closure_and_blocking_call(self):
        assert findings(f"{FIXTURES}/rl004_bad.py") == [
            (f"{FIXTURES}/rl004_bad.py", 7, 8, "RL004"),
            (f"{FIXTURES}/rl004_bad.py", 12, 22, "RL004"),
            (f"{FIXTURES}/rl004_bad.py", 16, 5, "RL004"),
        ]

    def test_rl005_missing_envelope_and_smoke(self):
        result = lint(f"{FIXTURES}/bench_rl005_bad.py")
        assert [
            (d.line, d.col, d.code) for d in result.diagnostics
        ] == [(1, 1, "RL005"), (1, 1, "RL005")]
        blob = " ".join(d.message for d in result.diagnostics)
        assert "REPRO_BENCH_SMOKE" in blob
        assert "benchlib" in blob

    @pytest.mark.parametrize(
        "twin",
        [
            "rl001_clean.py",
            "rl002_messages_clean.py",
            "rl003_clean.py",
            "rl004_clean.py",
            "bench_rl005_clean.py",
        ],
    )
    def test_clean_twins(self, twin):
        assert findings(f"{FIXTURES}/{twin}") == []

    def test_each_violation_is_nonzero_exit(self):
        for bad in (
            "rl001_bad.py",
            "rl002_messages_bad.py",
            "rl003_bad.py",
            "rl004_bad.py",
            "bench_rl005_bad.py",
        ):
            assert lint(f"{FIXTURES}/{bad}").exit_code == 1


# ----------------------------------------------------------------------
# suppression comments
# ----------------------------------------------------------------------
class TestSuppression:
    def test_coded_and_bare_ignores_silence_wrong_code_does_not(self):
        result = lint(f"{FIXTURES}/suppressed.py")
        assert [(d.line, d.code) for d in result.diagnostics] == [(21, "RL003")]
        assert result.suppressed == 2

    def test_suppressed_findings_do_not_fail_the_run(self):
        result = lint(f"{FIXTURES}/suppressed.py", select=frozenset({"RL001"}))
        assert result.exit_code == 0


# ----------------------------------------------------------------------
# select / ignore / registry
# ----------------------------------------------------------------------
class TestRuleSelection:
    def test_registry_has_the_five_rules(self):
        assert sorted(CHECKERS) == ["RL001", "RL002", "RL003", "RL004", "RL005"]

    def test_select_restricts(self):
        result = lint(f"{FIXTURES}/rl003_bad.py", select=frozenset({"RL001"}))
        assert result.diagnostics == ()
        assert result.rules == ("RL001",)

    def test_ignore_drops(self):
        result = lint(f"{FIXTURES}/rl003_bad.py", ignore=frozenset({"RL003"}))
        assert result.diagnostics == ()

    def test_unknown_code_raises(self):
        with pytest.raises(ValueError, match="RL999"):
            lint(f"{FIXTURES}/rl003_bad.py", select=frozenset({"RL999"}))


# ----------------------------------------------------------------------
# the CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_codes(self, monkeypatch):
        monkeypatch.chdir(ROOT)
        assert lint_main([f"{FIXTURES}/rl003_clean.py"]) == 0
        assert lint_main([f"{FIXTURES}/rl003_bad.py"]) == 1
        assert lint_main(["--select", "NOPE"]) == 2

    def test_text_output_is_ruff_style(self, monkeypatch, capsys):
        monkeypatch.chdir(ROOT)
        lint_main([f"{FIXTURES}/rl003_bad.py"])
        out = capsys.readouterr().out
        assert f"{FIXTURES}/rl003_bad.py:7:5 RL003 " in out

    def test_json_output_shape(self, monkeypatch, capsys):
        monkeypatch.chdir(ROOT)
        lint_main(["--output", "json", f"{FIXTURES}/rl003_bad.py"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert [f["code"] for f in payload["findings"]] == ["RL003", "RL003"]
        assert payload["findings"][0]["line"] == 7
        assert payload["stats"]["findings_by_code"] == {"RL003": 2}

    def test_github_output_renders_error_annotations(self, monkeypatch, capsys):
        monkeypatch.chdir(ROOT)
        lint_main(["--output", "github", f"{FIXTURES}/rl003_bad.py"])
        out = capsys.readouterr().out
        assert (
            f"::error file={FIXTURES}/rl003_bad.py,line=7,col=5,title=RL003::"
            in out
        )

    def test_stats_mode_emits_machine_readable_summary(
        self, monkeypatch, capsys
    ):
        monkeypatch.chdir(ROOT)
        lint_main(["--stats", f"{FIXTURES}/suppressed.py"])
        stats = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert stats["files_scanned"] == 1
        assert stats["rules"] == ["RL001", "RL002", "RL003", "RL004", "RL005"]
        assert stats["findings"] == 1
        assert stats["suppressed"] == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in CHECKERS:
            assert code in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            cwd=ROOT,
            env={**os.environ, "PYTHONPATH": "src"},
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0
        assert "RL001" in proc.stdout

    def test_repro_audit_lint_subcommand(self, monkeypatch, capsys):
        from repro.cli import main as cli_main

        monkeypatch.chdir(ROOT)
        assert cli_main(["lint", "--", "--list-rules"]) == 0
        assert "RL005" in capsys.readouterr().out


# ----------------------------------------------------------------------
# the acceptance bar: the shipped tree is clean
# ----------------------------------------------------------------------
class TestRealTree:
    def test_src_and_benchmarks_lint_clean(self):
        result = lint()  # default paths: src + benchmarks
        assert result.diagnostics == ()
        assert result.exit_code == 0
        assert result.files_scanned > 90

    def test_discovery_skips_the_seeded_fixtures(self):
        result = lint("tests")
        assert all(FIXTURES not in d.path for d in result.diagnostics)
