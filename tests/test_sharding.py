"""Unit tests for the patient-hash partitioner, the sharding config
knobs, the engine's shard-local entry points, and the CI benchmark
regression gate (``benchmarks/compare_bench.py``)."""

import json
import os
import sys

import pytest

from repro.api import AuditConfig
from repro.core import ExplanationEngine
from repro.db import partition_by_patient, shard_of, shard_row_counts

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")
)
import benchlib  # noqa: E402
import compare_bench  # noqa: E402


# ----------------------------------------------------------------------
# shard_of
# ----------------------------------------------------------------------
def test_shard_of_is_stable_and_in_range():
    for n in (1, 2, 7, 16):
        for value in ("p00017", "p99999", 42, None, "Alice"):
            s = shard_of(value, n)
            assert 0 <= s < n
            assert s == shard_of(value, n)  # deterministic


def test_shard_of_single_shard_is_zero():
    assert shard_of("anything", 1) == 0


def test_shard_of_rejects_bad_counts():
    with pytest.raises(ValueError):
        shard_of("x", 0)


def test_shard_of_spreads_keys():
    hit = {shard_of(f"p{i:05d}", 7) for i in range(200)}
    assert hit == set(range(7))


# ----------------------------------------------------------------------
# partition_by_patient
# ----------------------------------------------------------------------
def test_partition_preserves_rows_and_shares_tables(fig3_db):
    shards = partition_by_patient(fig3_db, 2)
    assert len(shards) == 2
    all_rows = []
    for i, shard in enumerate(shards):
        # non-log tables are shared by reference
        assert shard.table("Appointments") is fig3_db.table("Appointments")
        assert shard.table("Doctor_Info") is fig3_db.table("Doctor_Info")
        # log is a private table, never the original
        assert shard.table("Log") is not fig3_db.table("Log")
        patient_i = shard.table("Log").schema.column_index("Patient")
        for row in shard.table("Log").rows():
            assert shard_of(row[patient_i], 2) == i
            all_rows.append(row)
    assert sorted(all_rows) == sorted(fig3_db.table("Log").rows())


def test_partition_single_shard_still_copies_log(fig3_db):
    (shard,) = partition_by_patient(fig3_db, 1)
    assert shard.table("Log") is not fig3_db.table("Log")
    assert shard.table("Log").rows() == fig3_db.table("Log").rows()


def test_shard_row_counts_matches_partition(fig3_db):
    counts = shard_row_counts(fig3_db, 3)
    shards = partition_by_patient(fig3_db, 3)
    assert counts == [len(s.table("Log")) for s in shards]
    assert sum(counts) == len(fig3_db.table("Log"))


# ----------------------------------------------------------------------
# config knobs
# ----------------------------------------------------------------------
def test_config_sharding_defaults_round_trip():
    config = AuditConfig(shards=4, executor_kind="process", parallelism=2)
    assert AuditConfig.from_dict(config.to_dict()) == config


@pytest.mark.parametrize(
    "kwargs",
    [
        {"shards": 0},
        {"executor_kind": "fiber"},
        {"parallelism": 0},
    ],
)
def test_config_rejects_bad_sharding_knobs(kwargs):
    with pytest.raises(ValueError):
        AuditConfig(**kwargs)


def test_effective_parallelism_caps_at_shards():
    assert AuditConfig(shards=4).effective_parallelism == 4
    assert AuditConfig(shards=4, parallelism=2).effective_parallelism == 2
    assert AuditConfig(shards=2, parallelism=16).effective_parallelism == 2


# ----------------------------------------------------------------------
# engine shard-local entry points
# ----------------------------------------------------------------------
def test_engine_coverage_counts_and_support_counts(fig3_db, fig3_graph):
    from repro.audit.handcrafted import event_user_template

    template = event_user_template(fig3_graph, "Appointments", "Doctor")
    engine = ExplanationEngine(fig3_db, [template])
    total, unexplained = engine.coverage_counts()
    assert total == len(engine.all_lids())
    assert unexplained == len(engine.unexplained_lids())
    if total:
        assert engine.coverage() == (total - unexplained) / total
    (count,) = engine.support_counts([template])
    assert count == len(engine.explained_lids(template))


# ----------------------------------------------------------------------
# the benchmark-regression gate
# ----------------------------------------------------------------------
def _record(name, throughput, **overrides):
    record = benchlib.make_record(name, {"anything": 1}, throughput)
    record.update(overrides)
    return record


def _write(dirpath, record):
    path = os.path.join(dirpath, f"BENCH_{record['name']}.json")
    with open(path, "w") as fh:
        json.dump(record, fh)
    return path


def _gate(fresh, base, *extra):
    args = ["--fresh", str(fresh), "--baselines", str(base)]
    return compare_bench.main(args + list(extra))


def test_gate_passes_on_identical_records(tmp_path):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir()
    fresh.mkdir()
    record = _record("demo", {"x_speedup": 10.0})
    _write(base, record)
    _write(fresh, record)
    assert _gate(fresh, base) == 0


def test_gate_fails_on_degraded_throughput(tmp_path):
    """The acceptance demo: a synthetically degraded BENCH JSON (>30%
    down) must fail the gate."""
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir()
    fresh.mkdir()
    _write(base, _record("demo", {"x_speedup": 10.0}))
    _write(fresh, _record("demo", {"x_speedup": 6.9}))  # -31%
    assert _gate(fresh, base) == 1


def test_gate_tolerates_within_threshold_and_improvements(tmp_path):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir()
    fresh.mkdir()
    _write(base, _record("demo", {"x_speedup": 10.0, "y_speedup": 5.0}))
    _write(fresh, _record("demo", {"x_speedup": 7.5, "y_speedup": 50.0}))
    assert _gate(fresh, base) == 0


def test_gate_skips_missing_fresh_and_smoke_mismatch(tmp_path):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir()
    fresh.mkdir()
    _write(base, _record("notrun", {"x_speedup": 10.0}))
    _write(base, _record("other", {"x_speedup": 10.0}, smoke=True))
    _write(fresh, _record("other", {"x_speedup": 1.0}, smoke=False))
    assert _gate(fresh, base) == 0


def test_gate_fails_on_schema_version_mismatch(tmp_path):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir()
    fresh.mkdir()
    _write(base, _record("demo", {"x_speedup": 10.0}, schema_version=1))
    _write(fresh, _record("demo", {"x_speedup": 10.0}))
    assert _gate(fresh, base) == 1


def test_gate_skips_rates_across_machines_but_gates_ratios(tmp_path):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir()
    fresh.mkdir()
    baseline = _record("demo", {"ops_per_second": 1000.0, "x_speedup": 10.0})
    baseline["machine"] = dict(baseline["machine"], cpu_count=64)
    _write(base, baseline)
    # rate collapsed but machine differs -> skipped; ratio held -> pass
    _write(fresh, _record("demo", {"ops_per_second": 10.0, "x_speedup": 9.9}))
    assert _gate(fresh, base) == 0


def test_gate_gives_ratios_double_slack_across_machines(tmp_path):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir()
    fresh.mkdir()
    baseline = _record("demo", {"x_speedup": 10.0})
    baseline["machine"] = dict(baseline["machine"], cpu_count=64)
    _write(base, baseline)
    # -50% would fail same-machine (>30%) but passes cross-machine (<=60%)
    _write(fresh, _record("demo", {"x_speedup": 5.0}))
    assert _gate(fresh, base) == 0
    # beyond even the doubled slack still fails cross-machine
    _write(fresh, _record("demo", {"x_speedup": 3.0}))
    assert _gate(fresh, base) == 1


def test_gate_update_mode_copies_gated_records(tmp_path):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    fresh.mkdir()
    _write(fresh, _record("gated", {"x_speedup": 10.0}))
    _write(fresh, _record("ungated", {}))
    assert _gate(fresh, base, "--update") == 0
    assert (base / "BENCH_gated.json").exists()
    assert not (base / "BENCH_ungated.json").exists()


def test_gate_passes_with_no_baselines(tmp_path):
    fresh = tmp_path / "fresh"
    fresh.mkdir()
    assert _gate(fresh, tmp_path / "none") == 0


def test_committed_baselines_are_valid_records():
    """Every committed baseline parses, carries the current schema
    version, and declares at least one gated metric."""
    baselines = os.path.join(
        os.path.dirname(__file__), os.pardir, "benchmarks", "baselines"
    )
    paths = [p for p in os.listdir(baselines) if p.endswith(".json")]
    assert paths, "no committed baselines"
    for name in paths:
        record = benchlib.load_record(os.path.join(baselines, name))
        assert record["schema_version"] == benchlib.BENCH_SCHEMA_VERSION
        assert benchlib.throughput_of(record), name
        assert record["machine"]["cpu_count"] >= 1
