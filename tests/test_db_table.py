"""Unit tests for repro.db.table: storage, indexes, distinct projections."""

import pytest

from repro.db import ColumnType, IntegrityError, Table, TableSchema, UnknownColumnError


@pytest.fixture
def table():
    schema = TableSchema.build(
        "Appointments",
        ["Patient", "Doctor", ("Day", ColumnType.INT)],
    )
    t = Table(schema)
    t.insert_many(
        [
            ("Alice", "Dave", 1),
            ("Bob", "Mike", 2),
            ("Alice", "Dave", 3),
            ("Carol", "Dave", 1),
        ]
    )
    return t


class TestInsert:
    def test_positional(self, table):
        table.insert(("Dan", "Mike", 9))
        assert len(table) == 5

    def test_mapping(self, table):
        table.insert({"Patient": "Dan", "Doctor": "Mike", "Day": 9})
        assert table.rows()[-1] == ("Dan", "Mike", 9)

    def test_mapping_missing_defaults_null(self, table):
        table.insert({"Patient": "Dan"})
        assert table.rows()[-1] == ("Dan", None, None)

    def test_mapping_unknown_column(self, table):
        with pytest.raises(UnknownColumnError):
            table.insert({"Nope": 1})

    def test_arity_mismatch(self, table):
        with pytest.raises(IntegrityError):
            table.insert(("onlyone",))

    def test_type_violation(self, table):
        with pytest.raises(IntegrityError):
            table.insert(("Dan", "Mike", "not-an-int"))

    def test_not_null_enforced(self):
        from repro.db import Column

        strict = TableSchema.build("S", [Column("a", nullable=False)])
        t = Table(strict)
        with pytest.raises(IntegrityError):
            t.insert((None,))

    def test_insert_many_returns_count(self, table):
        assert table.insert_many([("X", "Y", 1), ("Z", "W", 2)]) == 2


class TestAccess:
    def test_len(self, table):
        assert len(table) == 4

    def test_iteration(self, table):
        assert list(table)[0] == ("Alice", "Dave", 1)

    def test_column_values(self, table):
        assert table.column_values("Patient") == ["Alice", "Bob", "Alice", "Carol"]

    def test_distinct_values(self, table):
        assert table.distinct_values("Doctor") == {"Dave", "Mike"}

    def test_distinct_excludes_null(self, table):
        table.insert(("Dan", None, 5))
        assert table.distinct_values("Doctor") == {"Dave", "Mike"}

    def test_ndv(self, table):
        assert table.ndv("Patient") == 3
        assert table.ndv("Day") == 3

    def test_row_by_position(self, table):
        assert table.row(1) == ("Bob", "Mike", 2)


class TestIndexes:
    def test_index_lookup(self, table):
        idx = table.index_for("Doctor")
        assert sorted(idx["Dave"]) == [0, 2, 3]

    def test_lookup_rows(self, table):
        rows = table.lookup("Patient", "Alice")
        assert len(rows) == 2
        assert all(r[0] == "Alice" for r in rows)

    def test_lookup_missing_value(self, table):
        assert table.lookup("Patient", "Nobody") == []

    def test_index_invalidated_on_insert(self, table):
        table.index_for("Doctor")
        table.insert(("Eve", "Dave", 7))
        assert len(table.lookup("Doctor", "Dave")) == 4


class TestDistinctProjection:
    def test_projection(self, table):
        proj = table.project_distinct(("Patient", "Doctor"))
        assert proj == {("Alice", "Dave"), ("Bob", "Mike"), ("Carol", "Dave")}

    def test_projection_cached(self, table):
        first = table.project_distinct(("Patient",))
        second = table.project_distinct(("Patient",))
        assert first is second

    def test_cache_invalidated_on_insert(self, table):
        table.project_distinct(("Patient",))
        table.insert(("New", "Dave", 8))
        assert ("New",) in table.project_distinct(("Patient",))

    def test_clear(self, table):
        table.clear()
        assert len(table) == 0
        assert table.project_distinct(("Patient",)) == set()


class TestColumnarStore:
    def test_column_array_live_and_cached(self, table):
        arr = table.column_array("Patient")
        assert arr == ["Alice", "Bob", "Alice", "Carol"]
        assert table.column_array("Patient") is arr

    def test_column_array_delta_maintained(self, table):
        arr = table.column_array("Doctor")
        table.insert(("Dan", "Mike", 9))
        assert arr[-1] == "Mike"
        assert arr == [r[1] for r in table.rows()]

    def test_column_values_returns_copy(self, table):
        values = table.column_values("Patient")
        values.append("mutated")
        assert table.column_values("Patient") == [
            "Alice", "Bob", "Alice", "Carol"
        ]

    def test_cleared_on_destructive_ops(self, table):
        table.column_array("Patient")
        table.clear()
        assert table._column_store == {}
        assert table.column_array("Patient") == []


class TestBatchProbes:
    def test_probe_many_groups_positions(self, table):
        out = table.probe_many("Doctor", ["Dave", "Mike", "Nobody"])
        assert out == {"Dave": [0, 2, 3], "Mike": [1]}

    def test_probe_many_skips_null(self, table):
        table.insert((None, "Dave", 4))
        assert None not in table.probe_many("Patient", [None, "Bob"])
        assert table.probe_many("Patient", [None]) == {}

    def test_lookup_many_full_multiplicity(self, table):
        rows = table.lookup_many("Patient", ["Alice", "Carol"])
        assert sorted(rows) == sorted(
            [("Alice", "Dave", 1), ("Alice", "Dave", 3), ("Carol", "Dave", 1)]
        )
        assert table.lookup_many("Patient", []) == []

    def test_probe_many_delta_maintained(self, table):
        table.probe_many("Doctor", ["Dave"])  # warm the index
        table.insert(("Zoe", "Dave", 5))
        assert table.probe_many("Doctor", ["Dave"])["Dave"] == [0, 2, 3, 4]

    def test_projection_probe_many(self, table):
        out = table.projection_probe_many(
            ("Patient", "Doctor"), ("Doctor",), [("Dave",), ("Nobody",)]
        )
        assert set(out) == {("Dave",)}
        assert sorted(out[("Dave",)]) == [("Alice", "Dave"), ("Carol", "Dave")]

    def test_projection_probe_many_skips_null_keys(self, table):
        table.insert((None, None, 4))
        out = table.projection_probe_many(
            ("Patient", "Doctor"), ("Doctor",), [(None,), ("Mike",)]
        )
        assert set(out) == {("Mike",)}
