"""The SQLite storage backend: dialect, driver, catalog, and lifecycle.

The differential suites pin the SQL pushdown executor byte-identical to
the in-memory engine and the brute-force oracle; this module covers the
directed surfaces around that core:

* value round-trips (DATE/BOOL column decoding) and NULL semantics of
  the :class:`~repro.db.sqlbackend.SqlTable` catalog mirror;
* validation-error parity with the in-memory :class:`~repro.db.Table`
  (same exception types, same messages, same partial-insert prefix);
* the :class:`~repro.db.SqliteDriver` contract — lazy connection,
  chunked batch-``IN`` pushdown beyond ``MAX_BATCH_PARAMS``, ingest
  accounting, idempotent close;
* template-to-SQL compilation shapes (multiplicity-preserving counts,
  the ``IN``-marker semijoin) and plan-cache memoization;
* restart-reopen of file-backed databases — single-node and sharded
  (per-shard files, global log-id reconciliation);
* the memory backend's explicit row cap (:class:`~repro.db.CapacityError`)
  and the CLI path that audits past it with ``--backend sqlite``.
"""

from __future__ import annotations

import datetime as dt

import pytest

from repro.api import (
    AuditConfig,
    AuditService,
    CapacityError,
    MineRequest,
    ShardedAuditService,
    UnsupportedOperationError,
    open_service,
    open_sql_database,
    save_database,
)
from repro.db import (
    AttrRef,
    ColumnType,
    Condition,
    ConjunctiveQuery,
    Database,
    Executor,
    Literal,
    PlanCache,
    QueryError,
    SchemaError,
    SqlDatabase,
    SqlExecutor,
    SqliteDriver,
    Table,
    TableSchema,
    TupleVar,
    UnknownColumnError,
    make_executor,
    shard_db_path,
)
from repro.db.dialect import (
    IN_MARKER,
    compile_count_distinct,
    compile_distinct_values_in,
)
from repro.db.drivers.sqlite import MAX_BATCH_PARAMS
from repro.ehr import SimulationConfig, simulate

MIXED_SCHEMA = TableSchema.build(
    "T",
    [("k", ColumnType.INT), ("d", ColumnType.DATE), ("b", ColumnType.BOOL)],
)

STAMP = dt.datetime(2026, 3, 4, 5, 6, 7)


def _fresh_db():
    return simulate(SimulationConfig.tiny(seed=7)).db


def _mixed_tables():
    """The same mixed-type table on both backends."""
    mem = Database("twin").create_table(MIXED_SCHEMA)
    sql = SqlDatabase(SqliteDriver(None), name="twin").create_table(MIXED_SCHEMA)
    return mem, sql


# ----------------------------------------------------------------------
# SqlTable: value round-trips, NULL semantics, error parity
# ----------------------------------------------------------------------
class TestSqlTable:
    def test_date_and_bool_round_trip(self):
        _, sql = _mixed_tables()
        sql.insert_many([(1, STAMP, True), (2, None, False)])
        rows = sql.rows()
        assert rows == [(1, STAMP, True), (2, None, False)]
        assert isinstance(rows[0][1], dt.datetime)
        assert rows[0][2] is True and rows[1][2] is False

    def test_null_lookup_and_distinct(self):
        _, sql = _mixed_tables()
        sql.insert_many([(1, STAMP, True), (None, STAMP, None), (1, None, False)])
        # lookup(col, None) selects the NULL rows, like the in-memory index
        assert sql.lookup("k", None) == [(None, STAMP, None)]
        assert sql.lookup("k", 1) == [(1, STAMP, True), (1, None, False)]
        # distinct_values excludes NULL (the FK-validation contract)
        assert sql.distinct_values("k") == {1}
        assert sql.ndv("k") == 1
        assert sql.column_values("k") == [1, None, 1]
        assert len(sql) == 3

    def test_rows_keep_insertion_order(self):
        _, sql = _mixed_tables()
        sql.insert_many([(i, None, None) for i in (5, 3, 9)])
        assert [r[0] for r in sql] == [5, 3, 9]
        sql.clear()
        assert len(sql) == 0

    @pytest.mark.parametrize(
        "bad",
        [
            (1,),  # arity
            {"k": 1, "zzz": 2},  # unknown column
            ("x", None, None),  # type mismatch
        ],
    )
    def test_validation_errors_match_memory(self, bad):
        mem, sql = _mixed_tables()
        with pytest.raises(Exception) as from_mem:
            mem.insert(bad)
        with pytest.raises(Exception) as from_sql:
            sql.insert(bad)
        assert type(from_sql.value) is type(from_mem.value)
        assert str(from_sql.value) == str(from_mem.value)

    def test_insert_many_keeps_valid_prefix(self):
        """A mid-batch validation error persists the valid prefix on
        both backends (same rows, same error)."""
        rows = [(1, None, None), (2, None, None), ("bad", None, None)]
        mem, sql = _mixed_tables()
        with pytest.raises(Exception) as from_mem:
            mem.insert_many(rows)
        with pytest.raises(Exception) as from_sql:
            sql.insert_many(rows)
        assert str(from_sql.value) == str(from_mem.value)
        assert sql.rows() == mem.rows() == [(1, None, None), (2, None, None)]

    def test_unknown_column_errors(self):
        _, sql = _mixed_tables()
        with pytest.raises(UnknownColumnError):
            sql.lookup("nope", 1)
        with pytest.raises(UnknownColumnError):
            sql.distinct_values("nope")


class TestSqlDatabase:
    def test_catalog_mirrors_memory_database(self):
        db = SqlDatabase(SqliteDriver(None), name="cat")
        db.create_table(MIXED_SCHEMA)
        assert db.has_table("T") and "T" in db and len(db) == 1
        assert db.table_names() == ["T"]
        with pytest.raises(SchemaError, match="already exists"):
            db.create_table(MIXED_SCHEMA)
        db.drop_table("T")
        assert not db.has_table("T")
        db.close()
        db.close()  # idempotent

    def test_referential_validation(self):
        db = SqlDatabase(SqliteDriver(None))
        users = TableSchema.build("Users", ["User"], primary_key=["User"])
        from repro.db import ForeignKey

        log = TableSchema.build(
            "Log",
            [("Lid", ColumnType.INT), "User"],
            foreign_keys=[ForeignKey("User", "Users", "User")],
        )
        db.create_table(users).insert(("u1",))
        db.create_table(log).insert_many([(1, "u1"), (2, "ghost")])
        violations = db.validate_referential_integrity()
        assert len(violations) == 1 and "ghost" in violations[0]
        assert db.total_rows() == 3


# ----------------------------------------------------------------------
# driver contract
# ----------------------------------------------------------------------
class TestSqliteDriver:
    def test_lazy_connection_and_stats(self, tmp_path):
        driver = SqliteDriver(str(tmp_path / "lazy.db"))
        assert driver.snapshot_stats()["connected"] is False
        driver.execute("SELECT 1")
        stats = driver.snapshot_stats()
        assert stats["connected"] is True
        assert stats["dialect"] == "sqlite"
        driver.close()
        driver.close()

    def test_batch_in_chunks_past_max_params(self):
        db = SqlDatabase(SqliteDriver(None))
        table = db.create_table(
            TableSchema.build("N", [("k", ColumnType.INT)])
        )
        n = MAX_BATCH_PARAMS * 2 + 50
        table.insert_many([(i,) for i in range(n)])
        sql = f'SELECT DISTINCT "k" FROM "N" WHERE "k" IN ({IN_MARKER})'
        rows = db.driver.execute_batch(sql, (), list(range(n)))
        assert {r[0] for r in rows} == set(range(n))
        stats = db.driver.snapshot_stats()
        assert stats["batch_chunks"] == 3
        assert stats["rows_ingested"] == n

    def test_batch_requires_marker_and_handles_empty(self):
        driver = SqliteDriver(None)
        with pytest.raises(ValueError, match="IN-marker"):
            driver.execute_batch("SELECT 1", (), [1])
        assert driver.execute_batch(f"SELECT {IN_MARKER}", (), []) == []


# ----------------------------------------------------------------------
# compilation and executor plumbing
# ----------------------------------------------------------------------
def _single_table_query():
    tvar = TupleVar("A", "T")
    return ConjunctiveQuery.build(
        (tvar,),
        (Condition(AttrRef("A", "k"), "=", Literal(1)),),
        (AttrRef("A", "k"),),
        distinct=True,
    )


class TestCompilation:
    def test_count_distinct_counts_null_as_a_value(self):
        """COUNT(*) over a DISTINCT subquery, not COUNT(DISTINCT col) —
        the in-memory count_distinct counts NULL as a distinct value."""
        compiled = compile_count_distinct(
            _single_table_query(), {"T": MIXED_SCHEMA}, AttrRef("A", "k")
        )
        assert "COUNT(*)" in compiled.sql
        assert "DISTINCT" in compiled.sql
        assert "COUNT(DISTINCT" not in compiled.sql

    def test_semijoin_carries_in_marker(self):
        compiled = compile_distinct_values_in(
            _single_table_query(),
            {"T": MIXED_SCHEMA},
            AttrRef("A", "k"),
            AttrRef("A", "b"),
        )
        assert compiled.has_in_marker
        assert IN_MARKER in compiled.sql

    def test_plan_cache_memoizes_compiled_queries(self):
        db = SqlDatabase(SqliteDriver(None))
        db.create_table(MIXED_SCHEMA).insert_many([(1, None, None)])
        cache = PlanCache(max_size=8)
        executor = SqlExecutor(db, plan_cache=cache)
        query = _single_table_query()
        executor.execute(query)
        misses = cache.stats()["misses"]
        executor.execute(query)
        assert cache.stats()["misses"] == misses
        assert cache.stats()["hits"] >= 1
        assert executor.queries_executed == 2

    def test_disconnected_join_graph_error_parity(self):
        mem_db = Database("d")
        mem_db.create_table(MIXED_SCHEMA).insert((1, None, None))
        sql_db = open_sql_database(mem_db, None)
        query = ConjunctiveQuery.build(
            (TupleVar("A", "T"), TupleVar("B", "T")),
            (),
            (AttrRef("A", "k"),),
            distinct=True,
        )
        with pytest.raises(QueryError) as from_mem:
            Executor(mem_db).execute(query)
        with pytest.raises(QueryError) as from_sql:
            SqlExecutor(sql_db).execute(query)
        assert str(from_sql.value) == str(from_mem.value)
        assert (
            SqlExecutor(sql_db, allow_cartesian=True).execute(query).rows
            == Executor(mem_db, allow_cartesian=True).execute(query).rows
        )

    def test_make_executor_dispatches_on_database_type(self):
        mem_db = Database("d")
        mem_db.create_table(MIXED_SCHEMA)
        assert isinstance(make_executor(mem_db), Executor)
        assert isinstance(
            make_executor(open_sql_database(mem_db, None)), SqlExecutor
        )


# ----------------------------------------------------------------------
# open_sql_database lifecycle and sharded file layout
# ----------------------------------------------------------------------
class TestOpenSqlDatabase:
    def test_reopen_without_source(self, tmp_path):
        path = str(tmp_path / "world.db")
        mem_db = Database("world")
        mem_db.create_table(MIXED_SCHEMA).insert_many(
            [(1, STAMP, True), (None, None, None)]
        )
        open_sql_database(mem_db, path).close()
        reopened = open_sql_database(None, path)
        assert reopened.name == "world"
        assert reopened.table_names() == ["T"]
        assert reopened.table("T").rows() == [(1, STAMP, True), (None, None, None)]
        reopened.close()

    def test_missing_file_without_source_is_an_error(self, tmp_path):
        with pytest.raises(SchemaError, match="no audited database"):
            open_sql_database(None, str(tmp_path / "absent.db"))

    def test_shard_db_path_derivation(self):
        assert shard_db_path(None, 3) is None
        assert shard_db_path("a/audit.db", 1) == "a/audit.shard1.db"
        assert shard_db_path("audit", 0) == "audit.shard0.db"


# ----------------------------------------------------------------------
# service lifecycle: restart-reopen, writers, capacity
# ----------------------------------------------------------------------
class TestServiceLifecycle:
    def test_single_node_restart_reopen(self, tmp_path):
        db_dir = str(tmp_path / "hospital")
        save_database(_fresh_db(), db_dir)
        config = AuditConfig(backend="sqlite", db_path=str(tmp_path / "audit.db"))
        with AuditService.open(db_dir, config=config) as first:
            ghost = first.ingest("zz-nobody", "zz-ghost")
            assert ghost.suspicious
            queue_before = {v.lid for v in first.report().queue}
        with AuditService.open(db_dir, config=config) as second:
            # the ingested access survived process death…
            assert {v.lid for v in second.report().queue} == queue_before
            assert ghost.lid in queue_before
            # …and the log-id sequence continues past it
            assert second.ingest("zz-nobody", "zz-ghost-2").lid == ghost.lid + 1

    def test_sharded_restart_reopen(self, tmp_path):
        db_dir = str(tmp_path / "hospital")
        save_database(_fresh_db(), db_dir)
        config = AuditConfig(
            backend="sqlite", db_path=str(tmp_path / "audit.db"), shards=2
        )
        with open_service(db_dir, config=config) as first:
            a = first.ingest("zz-nobody", "zz-ghost-a")
            b = first.ingest("zz-nobody", "zz-ghost-b")
            queue_before = {v.lid for v in first.report().queue}
        for index in (0, 1):
            assert (tmp_path / f"audit.shard{index}.db").exists()
        with open_service(db_dir, config=config) as second:
            assert {v.lid for v in second.report().queue} == queue_before
            assert {a.lid, b.lid} <= queue_before
            # the parent reconciles its id sequence with the shard files
            assert second.ingest("zz-nobody", "zz-ghost-c").lid == b.lid + 1

    def test_mine_and_groups_raise_on_sqlite(self):
        config = AuditConfig(backend="sqlite", eager_warm=False)
        with AuditService.open(_fresh_db(), config=config) as service:
            with pytest.raises(UnsupportedOperationError) as excinfo:
                service.mine(MineRequest())
            assert "memory backend" in excinfo.value.hint
            with pytest.raises(UnsupportedOperationError):
                service.build_groups()

    def test_sharded_rejects_sql_database_source(self):
        sql_db = open_sql_database(_fresh_db(), None)
        with pytest.raises(UnsupportedOperationError, match="partition"):
            ShardedAuditService.open(sql_db, config=AuditConfig(shards=2))
        sql_db.close()

    def test_capacity_error_points_at_sqlite(self):
        table = Table(MIXED_SCHEMA, max_rows=2)
        table.insert((1, None, None))
        table.insert((2, None, None))
        with pytest.raises(CapacityError, match="--backend sqlite"):
            table.insert((3, None, None))
        assert len(table) == 2


# ----------------------------------------------------------------------
# CLI: auditing a log larger than the in-memory row cap
# ----------------------------------------------------------------------
class TestCliBeyondCap:
    @pytest.fixture(scope="class")
    def db_dir(self, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("clidb") / "hospital")
        save_database(_fresh_db(), out)
        return out

    def test_memory_backend_hits_the_cap(self, db_dir):
        from repro.cli import main

        with pytest.raises(CapacityError, match="--backend sqlite"):
            main(["audit", "--db", db_dir, "--json", "--max-table-rows", "100"])

    def test_sqlite_backend_audits_past_the_cap(self, db_dir, tmp_path, capsys):
        from repro.cli import main

        assert main(["audit", "--db", db_dir, "--json"]) == 0
        reference = capsys.readouterr().out
        code = main(
            [
                "audit",
                "--db",
                db_dir,
                "--json",
                "--backend",
                "sqlite",
                "--db-path",
                str(tmp_path / "cli-audit.db"),
                "--max-table-rows",
                "100",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == reference
