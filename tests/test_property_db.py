"""Property-based tests (hypothesis) for the relational substrate.

The central oracle: the hash-join executor must agree with naive
nested-loop SQL semantics on arbitrary small databases and conjunctive
queries of the shapes the mining layer generates.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    AttrRef,
    ColumnType,
    Condition,
    ConjunctiveQuery,
    Database,
    Executor,
    Literal,
    TableSchema,
    TupleVar,
    canonical_query_signature,
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
values = st.integers(min_value=0, max_value=4)


@st.composite
def small_db(draw):
    """Log(Lid, User, Patient) + T1(a, b) + T2(b, c) with tiny domains so
    joins actually hit."""
    db = Database("prop")
    log = db.create_table(
        TableSchema.build(
            "Log",
            [("Lid", ColumnType.INT), ("User", ColumnType.INT), ("Patient", ColumnType.INT)],
        )
    )
    t1 = db.create_table(
        TableSchema.build("T1", [("a", ColumnType.INT), ("b", ColumnType.INT)])
    )
    t2 = db.create_table(
        TableSchema.build("T2", [("b", ColumnType.INT), ("c", ColumnType.INT)])
    )
    n_log = draw(st.integers(1, 8))
    for i in range(n_log):
        log.insert((i, draw(values), draw(values)))
    for _ in range(draw(st.integers(0, 8))):
        t1.insert((draw(values), draw(values)))
    for _ in range(draw(st.integers(0, 8))):
        t2.insert((draw(values), draw(values)))
    return db


@st.composite
def chain_query(draw):
    """A chain query L.Patient=T1.a [, T1.b=T2.b [, T2.c=L.User]] with an
    optional inequality decoration."""
    L, T1, T2 = TupleVar("L", "Log"), TupleVar("T1", "T1"), TupleVar("T2", "T2")
    variant = draw(st.integers(0, 2))
    tuple_vars = [L, T1]
    conds = [Condition(AttrRef("L", "Patient"), "=", AttrRef("T1", "a"))]
    if variant >= 1:
        tuple_vars.append(T2)
        conds.append(Condition(AttrRef("T1", "b"), "=", AttrRef("T2", "b")))
    if variant == 2:
        conds.append(Condition(AttrRef("T2", "c"), "=", AttrRef("L", "User")))
    if draw(st.booleans()):
        conds.append(
            Condition(
                AttrRef("T1", "b"),
                draw(st.sampled_from(["<", "<=", ">", ">=", "!="])),
                Literal(draw(values)),
            )
        )
    return ConjunctiveQuery.build(tuple_vars, conds, [AttrRef("L", "Lid")])


def brute_force_lids(db, query):
    tables = [list(db.table(v.table).rows()) for v in query.tuple_vars]
    schemas = [db.table(v.table).schema for v in query.tuple_vars]
    out = set()
    ops = {
        "=": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }
    for combo in itertools.product(*tables):
        env = {}
        for var, schema, row in zip(query.tuple_vars, schemas, combo):
            for i, col in enumerate(schema.column_names):
                env[(var.alias, col)] = row[i]
        ok = True
        for cond in query.conditions:
            lval = env[(cond.left.alias, cond.left.attr)]
            rval = (
                env[(cond.right.alias, cond.right.attr)]
                if isinstance(cond.right, AttrRef)
                else cond.right.value
            )
            if lval is None or rval is None or not ops[cond.op](lval, rval):
                ok = False
                break
        if ok:
            out.add(env[("L", "Lid")])
    return out


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(db=small_db(), query=chain_query())
def test_executor_matches_nested_loop_oracle(db, query):
    assert Executor(db).distinct_values(query) == brute_force_lids(db, query)


@settings(max_examples=60, deadline=None)
@given(db=small_db(), query=chain_query())
def test_count_distinct_consistent_with_values(db, query):
    ex = Executor(db)
    assert ex.count_distinct(query) == len(ex.distinct_values(query))


@settings(max_examples=60, deadline=None)
@given(db=small_db(), query=chain_query())
def test_distinct_reduction_is_semantics_preserving(db, query):
    """The paper's multiplicity-reduction rewrite never changes the
    distinct-lid answer (Section 3.2.1)."""
    with_opt = Executor(db, distinct_reduction=True).distinct_values(query)
    without = Executor(db, distinct_reduction=False).distinct_values(query)
    assert with_opt == without


@settings(max_examples=60, deadline=None)
@given(db=small_db(), query=chain_query(), data=st.data())
def test_condition_order_irrelevant(db, query, data):
    """Support is a function of the condition *set* (the cache's premise)."""
    perm = data.draw(st.permutations(list(query.conditions)))
    shuffled = ConjunctiveQuery.build(
        query.tuple_vars, perm, query.projection
    )
    ex = Executor(db)
    assert ex.distinct_values(query) == ex.distinct_values(shuffled)
    assert canonical_query_signature(query) == canonical_query_signature(shuffled)


@settings(max_examples=60, deadline=None)
@given(db=small_db(), query=chain_query(), extra=values)
def test_adding_condition_shrinks_result(db, query, extra):
    """Monotonicity: more conditions can only remove explained lids — the
    property that justifies bottom-up pruning (Section 3.2)."""
    ex = Executor(db)
    base = ex.distinct_values(query)
    stricter = ConjunctiveQuery.build(
        query.tuple_vars,
        list(query.conditions)
        + [Condition(AttrRef("T1", "a"), "=", Literal(extra))],
        query.projection,
    )
    assert ex.distinct_values(stricter) <= base


@settings(max_examples=60, deadline=None)
@given(db=small_db(), query=chain_query())
def test_non_distinct_multiplicity_matches_oracle(db, query):
    """With distinct=False the executor must preserve multiplicities —
    the row count equals the nested-loop satisfying-combination count."""
    bag_query = ConjunctiveQuery.build(
        query.tuple_vars, query.conditions, query.projection, distinct=False
    )
    result = Executor(db).execute(bag_query)
    # oracle: count satisfying combinations
    tables = [list(db.table(v.table).rows()) for v in query.tuple_vars]
    schemas = [db.table(v.table).schema for v in query.tuple_vars]
    ops = {
        "=": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }
    count = 0
    for combo in itertools.product(*tables):
        env = {}
        for var, schema, row in zip(query.tuple_vars, schemas, combo):
            for i, col in enumerate(schema.column_names):
                env[(var.alias, col)] = row[i]
        ok = True
        for cond in query.conditions:
            lval = env[(cond.left.alias, cond.left.attr)]
            rval = (
                env[(cond.right.alias, cond.right.attr)]
                if isinstance(cond.right, AttrRef)
                else cond.right.value
            )
            if lval is None or rval is None or not ops[cond.op](lval, rval):
                ok = False
                break
        if ok:
            count += 1
    assert len(result.rows) == count


@settings(max_examples=40, deadline=None)
@given(db=small_db())
def test_estimator_positive_and_bounded(db):
    from repro.db import CardinalityEstimator

    L, T1 = TupleVar("L", "Log"), TupleVar("T1", "T1")
    query = ConjunctiveQuery.build(
        [L, T1],
        [Condition(AttrRef("L", "Patient"), "=", AttrRef("T1", "a"))],
        [AttrRef("L", "Lid")],
    )
    est = CardinalityEstimator(db)
    assert est.estimate_rows(query) >= 0
    distinct = est.estimate_distinct(query, AttrRef("L", "Lid"))
    assert 0 <= distinct <= max(1, len(db.table("Log"))) + 1e-9
