"""Tests for explanation templates, instances, and NL rendering."""

import pytest

from repro.core import (
    EdgeKind,
    ExplanationInstance,
    ExplanationTemplate,
    Path,
    SchemaAttr,
    SchemaEdge,
    dedupe_templates,
    rank_instances,
)
from repro.db import AttrRef, Condition, Executor, Literal


def edge(t1, a1, t2, a2, kind=EdgeKind.ADMIN):
    return SchemaEdge(SchemaAttr(t1, a1), SchemaAttr(t2, a2), kind)


@pytest.fixture
def appt_template(fig3_graph):
    path = Path.forward_seed(
        fig3_graph, edge("Log", "Patient", "Appointments", "Patient")
    ).extend_forward(edge("Appointments", "Doctor", "Log", "User"))
    return ExplanationTemplate(
        path=path,
        description=(
            "[L.Patient] had an appointment with [L.User] on "
            "[Appointments_1.Date]."
        ),
        name="appt-with-dr",
    )


class TestTemplateBasics:
    def test_requires_closed_path(self, fig3_graph):
        partial = Path.forward_seed(
            fig3_graph, edge("Log", "Patient", "Appointments", "Patient")
        )
        with pytest.raises(ValueError):
            ExplanationTemplate(path=partial)

    def test_simple_vs_decorated(self, appt_template):
        assert appt_template.is_simple and not appt_template.is_decorated
        decorated = ExplanationTemplate(
            path=appt_template.path,
            decorations=(
                Condition(
                    AttrRef("Appointments_1", "Date"), ">", Literal(0)
                ),
            ),
        )
        assert decorated.is_decorated and not decorated.is_simple

    def test_length_ignores_decorations(self, appt_template):
        decorated = ExplanationTemplate(
            path=appt_template.path,
            decorations=(
                Condition(AttrRef("Appointments_1", "Date"), ">", Literal(0)),
            ),
        )
        assert decorated.length == appt_template.length == 2

    def test_signature_distinguishes_decorations(self, appt_template):
        decorated = ExplanationTemplate(
            path=appt_template.path,
            decorations=(
                Condition(AttrRef("Appointments_1", "Date"), ">", Literal(0)),
            ),
        )
        assert decorated.signature() != appt_template.signature()

    def test_tables_referenced(self, appt_template):
        assert appt_template.tables_referenced() == {"Log", "Appointments"}

    def test_display_name_custom_and_auto(self, appt_template):
        assert appt_template.display_name() == "appt-with-dr"
        anonymous = ExplanationTemplate(path=appt_template.path)
        assert "len2" in anonymous.display_name()
        assert "Appointments" in anonymous.display_name()

    def test_to_sql_both_forms(self, appt_template):
        plain = appt_template.to_sql()
        assert "FROM Log L, Appointments Appointments_1" in plain
        reduced = appt_template.to_sql(reduced=True)
        assert "SELECT DISTINCT" in reduced and "FROM Appointments)" in reduced


class TestQueries:
    def test_support_query_counts(self, fig3_db, appt_template):
        ex = Executor(fig3_db)
        assert ex.count_distinct(appt_template.support_query()) == 1

    def test_instance_query_projection_covers_placeholders(self, appt_template):
        q = appt_template.instance_query()
        assert AttrRef("L", "Lid") in q.projection
        assert AttrRef("Appointments_1", "Date") in q.projection
        assert AttrRef("L", "Patient") in q.projection

    def test_instance_query_lid_restriction(self, fig3_db, appt_template):
        ex = Executor(fig3_db)
        assert ex.execute(appt_template.instance_query(lid=1)).rows
        assert not ex.execute(appt_template.instance_query(lid=2)).rows

    def test_decorations_restrict_support(self, fig3_db, appt_template):
        ex = Executor(fig3_db)
        decorated = ExplanationTemplate(
            path=appt_template.path,
            decorations=(
                Condition(AttrRef("Appointments_1", "Date"), ">", Literal(99)),
            ),
        )
        assert ex.count_distinct(decorated.support_query()) == 0


class TestDescriptionsAndInstances:
    def test_placeholders_parsed(self, appt_template):
        refs = appt_template.placeholders()
        assert AttrRef("L", "Patient") in refs
        assert AttrRef("Appointments_1", "Date") in refs

    def test_auto_description_generated(self, appt_template):
        anonymous = ExplanationTemplate(path=appt_template.path)
        text = anonymous.describe_template()
        assert "[L.User]" in text and "[L.Patient]" in text

    def test_instance_render(self, appt_template):
        inst = ExplanationInstance(
            template=appt_template,
            lid=1,
            bindings={"L.Patient": "Alice", "L.User": "Dave", "Appointments_1.Date": 1},
        )
        assert inst.render() == "Alice had an appointment with Dave on 1."

    def test_unbound_placeholder_left_intact(self, appt_template):
        inst = ExplanationInstance(
            template=appt_template, lid=1, bindings={"L.Patient": "Alice"}
        )
        assert "[L.User]" in inst.render()

    def test_rank_ascending_by_length(self, fig3_graph, appt_template):
        long_path = (
            Path.forward_seed(
                fig3_graph, edge("Log", "Patient", "Appointments", "Patient")
            )
            .extend_forward(
                edge("Appointments", "Doctor", "Doctor_Info", "Doctor")
            )
            .extend_forward(
                edge(
                    "Doctor_Info",
                    "Department",
                    "Doctor_Info",
                    "Department",
                    EdgeKind.SELF_JOIN,
                )
            )
            .extend_forward(edge("Doctor_Info", "Doctor", "Log", "User"))
        )
        long_template = ExplanationTemplate(path=long_path, name="dept")
        a = ExplanationInstance(template=long_template, lid=1, bindings={})
        b = ExplanationInstance(template=appt_template, lid=1, bindings={})
        ranked = rank_instances([a, b])
        assert ranked[0].template is appt_template
        assert ranked[0].path_length == 2 and ranked[1].path_length == 4

    def test_str_forms(self, appt_template):
        inst = ExplanationInstance(template=appt_template, lid=1, bindings={})
        assert "lid=1" in str(inst)
        assert "appt-with-dr" in str(appt_template)


class TestDedupe:
    def test_dedupe_by_signature(self, fig3_graph, appt_template):
        # same path built backwards => same signature => deduped
        bwd = Path.backward_seed(
            fig3_graph, edge("Appointments", "Doctor", "Log", "User")
        ).extend_backward(edge("Log", "Patient", "Appointments", "Patient"))
        twin = ExplanationTemplate(path=bwd)
        out = dedupe_templates([appt_template, twin])
        assert len(out) == 1 and out[0] is appt_template

    def test_dedupe_keeps_distinct(self, appt_template, fig3_graph):
        other_path = Path.forward_seed(
            fig3_graph, edge("Log", "Patient", "Appointments", "Patient")
        ).extend_forward(edge("Appointments", "Doctor", "Log", "User"))
        decorated = ExplanationTemplate(
            path=other_path,
            decorations=(
                Condition(AttrRef("Appointments_1", "Date"), ">", Literal(0)),
            ),
        )
        assert len(dedupe_templates([appt_template, decorated])) == 2
