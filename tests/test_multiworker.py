"""Multi-worker fleet differential: N workers must be indistinguishable
from the in-process facade.

A 2-worker :class:`~repro.server.FleetSupervisor` (SO_REUSEPORT sibling
sockets on Linux) serves replicas built by the same deterministic
factory as an in-process twin, so every ``/v1/`` read endpoint can be
pinned byte-identical to the facade — including cursor-paginated
``unexplained`` walks (stateless key cursors survive landing on a
different worker per connection) and NDJSON ``explain/batch`` streams.
Mutating endpoints must answer a typed 501 (independent replicas would
silently diverge), ``/v1/metrics`` must aggregate the whole fleet, and
SIGTERM must drain gracefully: the in-flight NDJSON stream runs to
completion while new dials are refused.

The reservoir-sampling metrics and their fleet merge
(:func:`~repro.server.metrics.merge_snapshots`) are pinned here too.
"""

import datetime as dt
import socket
import time
from types import SimpleNamespace

import pytest

from repro.api import AuditConfig, open_service, to_wire
from repro.api.errors import InvalidRequestError, UnsupportedOperationError
from repro.client import AuditClient
from repro.ehr import SimulationConfig, simulate
from repro.server import (
    FleetSupervisor,
    ServerMetrics,
    dump_json,
    envelope,
    merge_snapshots,
)

FROZEN_NOW = dt.datetime(2010, 1, 9, 12, 0, 0)


def _make_service():
    """Deterministic replica factory: every worker (and the in-process
    twin) opens an identical service over the same simulated hospital."""
    db = simulate(SimulationConfig.tiny(seed=7)).db
    return open_service(
        db, config=AuditConfig(shards=1), clock=lambda: FROZEN_NOW
    )


@pytest.fixture(scope="module")
def fleet():
    supervisor = FleetSupervisor(_make_service, workers=2).start()
    client = AuditClient(supervisor.host, supervisor.port, timeout=30)
    twin = _make_service()
    world = SimpleNamespace(supervisor=supervisor, client=client, twin=twin)
    try:
        yield world
    finally:
        client.close()
        supervisor.stop()
        twin.close()


def _sample_lids(twin, count=20):
    queue = [v.lid for v in twin.report().queue]
    explained = sorted(set(twin.explain_all().explained), key=str)
    return queue[:8] + explained[: count - len(queue[:8])] + [10**9]


# ----------------------------------------------------------------------
# read endpoints: typed and byte identity across the fleet
# ----------------------------------------------------------------------
class TestFleetReadDifferential:
    def test_healthz(self, fleet):
        assert fleet.client.healthz() == {"status": "ok"}

    def test_explain(self, fleet):
        for lid in _sample_lids(fleet.twin):
            wire = fleet.client.explain(lid)
            local = fleet.twin.explain(lid)
            assert wire.to_dict() == local.to_dict()

    def test_report(self, fleet):
        assert (
            fleet.client.report().to_dict() == fleet.twin.report().to_dict()
        )

    def test_summary(self, fleet):
        assert fleet.client.summary() == fleet.twin.summary()

    def test_coverage(self, fleet):
        assert fleet.client.coverage() == fleet.twin.coverage()

    def test_patient_report(self, fleet):
        patient = fleet.twin.report().queue[0].patient
        assert (
            fleet.client.patient_report(patient).to_dict()
            == fleet.twin.patient_report(patient).to_dict()
        )

    def test_stats_static_fields(self, fleet):
        wire = fleet.client.stats()
        local = fleet.twin.stats()
        for key in ("log_rows", "templates", "config"):
            assert wire[key] == local[key]
        assert set(wire) == set(local)

    def test_templates_list(self, fleet):
        listed = fleet.client.templates()
        local = fleet.twin.templates()
        assert [t["sql"] for t in listed] == [t.to_sql() for t in local]

    def _raw(self, fleet, path):
        response = fleet.client._raw_request("GET", path)
        body = response.read()
        assert response.status == 200
        return body

    def test_explain_bytes(self, fleet):
        lid = _sample_lids(fleet.twin)[0]
        expected = dump_json(to_wire(fleet.twin.explain(lid)))
        assert self._raw(fleet, f"/v1/explain?lid={lid}") == expected

    def test_report_bytes(self, fleet):
        expected = dump_json(to_wire(fleet.twin.report()))
        assert self._raw(fleet, "/v1/report") == expected

    def test_coverage_bytes(self, fleet):
        expected = dump_json(
            envelope("Coverage", {"coverage": fleet.twin.coverage()})
        )
        assert self._raw(fleet, "/v1/coverage") == expected


class TestFleetCursorAndStreaming:
    def test_cursor_walk_equals_one_shot(self, fleet):
        """Page requests land on whichever worker accepts each
        connection; the stateless cursor must not care."""
        one_shot = [v.to_dict() for v in fleet.twin.report().queue]
        for page_size in (1, 3, 500):
            walked = [
                v.to_dict() for v in fleet.client.unexplained(page_size)
            ]
            assert walked == one_shot

    def test_unexplained_lids_matches_twin(self, fleet):
        assert (
            fleet.client.unexplained_lids(page_size=5)
            == fleet.twin.unexplained_lids()
        )

    def test_explain_batch_stream_matches_twin(self, fleet):
        lids = _sample_lids(fleet.twin)
        streamed = list(fleet.client.explain_batch(lids))
        assert [r.lid for r in streamed] == lids
        for result in streamed:
            assert (
                result.to_dict() == fleet.twin.explain(result.lid).to_dict()
            )


# ----------------------------------------------------------------------
# fleet semantics: read-only writes, aggregated metrics
# ----------------------------------------------------------------------
class TestFleetSemantics:
    def test_ingest_is_rejected_typed(self, fleet):
        with pytest.raises(UnsupportedOperationError) as err:
            fleet.client.ingest("uNEW", "pNEW")
        assert "multi-worker" in str(err.value)

    def test_batch_ingest_is_rejected_typed(self, fleet):
        with pytest.raises(UnsupportedOperationError):
            fleet.client.ingest_many([("uNEW", "pNEW", None)])

    def test_template_add_is_rejected_typed(self, fleet):
        with pytest.raises(UnsupportedOperationError):
            fleet.client.add_templates(fleet.client.template_library())

    def test_metrics_aggregate_the_fleet(self, fleet):
        fleet.client.coverage()  # at least one request on the books
        merged = fleet.client.metrics()
        assert merged["scope"] == "fleet"
        assert merged["workers"] == 2
        assert merged["requests_total"] >= 1
        assert merged["latency_seconds"]["count"] >= 1
        assert "GET /v1/coverage" in merged["routes"]


# ----------------------------------------------------------------------
# SIGTERM drain: in-flight stream completes, new dials are refused
# ----------------------------------------------------------------------
def test_sigterm_drains_in_flight_ndjson():
    import os
    import signal

    supervisor = FleetSupervisor(_make_service, workers=1).start()
    try:
        twin = _make_service()
        lids = [v.lid for v in twin.report().queue]
        lids = (lids * (3000 // max(len(lids), 1) + 1))[:3000]
        twin.close()
        client = AuditClient(supervisor.host, supervisor.port, timeout=60)
        stream = client.explain_batch(lids)
        first = next(stream)  # the request is now in flight
        assert first.lid == lids[0]

        worker = supervisor.processes[0]
        os.kill(worker.pid, signal.SIGTERM)

        # the listener must close: new dials refused while we still hold
        # an in-flight stream
        deadline = time.monotonic() + 10.0
        refused = False
        while time.monotonic() < deadline:
            try:
                probe = socket.create_connection(
                    (supervisor.host, supervisor.port), timeout=1.0
                )
                probe.close()
                time.sleep(0.05)
            except (ConnectionRefusedError, socket.timeout, OSError):
                refused = True
                break
        assert refused, "listener still accepting after SIGTERM"

        # ... and the in-flight NDJSON stream must run to completion
        rest = list(stream)
        assert [first.lid] + [r.lid for r in rest] == lids
        client.close()

        worker.join(timeout=30)
        assert worker.exitcode == 0
    finally:
        supervisor.stop(force=True)


# ----------------------------------------------------------------------
# supervisor and config validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_live_service_instance_is_rejected(self):
        service = _make_service()
        try:
            with pytest.raises(InvalidRequestError) as err:
                FleetSupervisor(service, workers=2)
            assert "factory" in str(err.value)
        finally:
            service.close()

    def test_workers_must_be_positive(self):
        with pytest.raises(InvalidRequestError):
            FleetSupervisor(_make_service, workers=0)

    def test_config_workers_validation(self):
        with pytest.raises(ValueError):
            AuditConfig(workers=0)
        with pytest.raises(ValueError):
            AuditConfig(workers=-2)
        assert AuditConfig().effective_workers == 1
        assert AuditConfig(workers=None).effective_workers == 1
        assert AuditConfig(workers=3).effective_workers == 3

    def test_config_vectorized_default(self):
        assert AuditConfig().vectorized is True
        assert AuditConfig(vectorized=False).vectorized is False


# ----------------------------------------------------------------------
# reservoir sampling and snapshot merging
# ----------------------------------------------------------------------
def _fill(metrics, latencies, route="GET /v1/explain"):
    for seconds in latencies:
        metrics.request_started()
        metrics.request_finished(route, seconds, error=False)


class TestReservoir:
    def test_exhaustive_percentiles_are_exact(self):
        metrics = ServerMetrics(reservoir=1000, seed=0)
        _fill(metrics, [i / 100 for i in range(1, 101)])
        latency = metrics.snapshot()["latency_seconds"]
        assert latency["count"] == 100
        assert latency["sampled"] == 100
        assert latency["p50"] == 0.50
        assert latency["p90"] == 0.90
        assert latency["p99"] == 0.99
        assert latency["max"] == 1.00
        assert latency["mean"] == pytest.approx(0.505)

    def test_overflow_keeps_constant_memory_and_exact_extremes(self):
        metrics = ServerMetrics(reservoir=16, seed=1)
        _fill(metrics, [float(i) for i in range(1000)])
        latency = metrics.snapshot(include_samples=True)["latency_seconds"]
        assert latency["count"] == 1000
        assert latency["sampled"] == 16
        assert len(latency["samples"]) == 16
        assert latency["max"] == 999.0  # exact, not sampled
        assert latency["mean"] == pytest.approx(499.5)  # exact, not sampled
        assert set(latency["samples"]) <= {float(i) for i in range(1000)}

    def test_seeded_sampling_is_deterministic(self):
        runs = []
        for _ in range(2):
            metrics = ServerMetrics(reservoir=8, seed=42)
            _fill(metrics, [float(i) for i in range(200)])
            runs.append(
                metrics.snapshot(include_samples=True)["latency_seconds"][
                    "samples"
                ]
            )
        assert runs[0] == runs[1]


class TestMergeSnapshots:
    def _snapshot(self, latencies, seed=0, reservoir=1000):
        metrics = ServerMetrics(reservoir=reservoir, seed=seed)
        _fill(metrics, latencies)
        return metrics.snapshot(include_samples=True)

    def test_exhaustive_merge_is_exact_concatenation(self):
        a = self._snapshot([0.1, 0.2, 0.3])
        b = self._snapshot([0.4, 0.5])
        merged = merge_snapshots([a, b])
        latency = merged["latency_seconds"]
        assert merged["workers"] == 2
        assert merged["requests_total"] == 5
        assert latency["count"] == 5
        assert latency["sampled"] == 5
        assert latency["mean"] == pytest.approx(0.3)
        assert latency["p50"] == 0.3
        assert latency["max"] == 0.5
        route = merged["routes"]["GET /v1/explain"]
        assert route == {"count": 5, "errors": 0}

    def test_weighted_merge_is_bounded_and_keeps_exact_scalars(self):
        a = self._snapshot([float(i) for i in range(500)], reservoir=32)
        b = self._snapshot([float(i) for i in range(1000, 1100)], reservoir=32)
        merged = merge_snapshots([a, b], reservoir=64, seed=7)
        latency = merged["latency_seconds"]
        assert latency["count"] == 600
        assert latency["sampled"] == 64  # re-sampled, bounded
        assert latency["max"] == 1099.0  # exact across the fleet
        expected_mean = (249.5 * 500 + 1049.5 * 100) / 600
        assert latency["mean"] == pytest.approx(expected_mean)

    def test_merge_is_deterministic(self):
        a = self._snapshot([float(i) for i in range(300)], reservoir=16)
        b = self._snapshot([float(i) for i in range(300, 600)], reservoir=16)
        first = merge_snapshots([a, b], reservoir=24, seed=3)
        second = merge_snapshots([a, b], reservoir=24, seed=3)
        assert (
            first["latency_seconds"]["p90"] == second["latency_seconds"]["p90"]
        )

    def test_counters_and_errors_sum(self):
        a = ServerMetrics(seed=0)
        a.request_started()
        a.request_finished("GET /v1/report", 0.1, error=True)
        b = ServerMetrics(seed=0)
        _fill(b, [0.2, 0.3], route="GET /v1/report")
        merged = merge_snapshots(
            [a.snapshot(include_samples=True), b.snapshot(include_samples=True)]
        )
        assert merged["requests_total"] == 3
        assert merged["errors_total"] == 1
        assert merged["routes"]["GET /v1/report"] == {"count": 3, "errors": 1}
        assert merged["in_flight"] == 0

    def test_empty_input_is_rejected(self):
        with pytest.raises(ValueError):
            merge_snapshots([])
