"""Tests for the ExplanationEngine facade: explaining accesses, coverage,
and the misuse-detection (unexplained) queue — paper Example 1.1."""

import pytest

from repro.core import (
    EdgeKind,
    ExplanationEngine,
    ExplanationTemplate,
    Path,
    SchemaAttr,
    SchemaEdge,
)
from repro.db import AttrRef, Condition


def edge(t1, a1, t2, a2, kind=EdgeKind.ADMIN):
    return SchemaEdge(SchemaAttr(t1, a1), SchemaAttr(t2, a2), kind)


@pytest.fixture
def templates(hospital_graph):
    appt = ExplanationTemplate(
        path=Path.forward_seed(
            hospital_graph, edge("Log", "Patient", "Appointments", "Patient")
        ).extend_forward(edge("Appointments", "Doctor", "Log", "User")),
        description="[L.Patient] had an appointment with [L.User].",
        name="appt-with-dr",
    )
    group = ExplanationTemplate(
        path=(
            Path.forward_seed(
                hospital_graph, edge("Log", "Patient", "Appointments", "Patient")
            )
            .extend_forward(edge("Appointments", "Doctor", "Groups", "User"))
            .extend_forward(
                edge("Groups", "Group_id", "Groups", "Group_id", EdgeKind.SELF_JOIN)
            )
            .extend_forward(edge("Groups", "User", "Log", "User"))
        ),
        description=(
            "[L.Patient] had an appointment with [Groups_2.User], and "
            "[L.User] works with [Groups_2.User]."
        ),
        name="appt-with-group",
    )
    repeat = ExplanationTemplate(
        path=Path.forward_seed(
            hospital_graph,
            edge("Log", "Patient", "Log", "Patient", EdgeKind.SELF_JOIN),
        ).extend_forward(edge("Log", "User", "Log", "User", EdgeKind.SELF_JOIN)),
        decorations=(
            Condition(AttrRef("L", "Date"), ">", AttrRef("Log_1", "Date")),
        ),
        description="[L.User] previously accessed [L.Patient]'s record.",
        name="repeat-access",
    )
    return [appt, group, repeat]


@pytest.fixture
def engine(hospital_db, templates):
    return ExplanationEngine(hospital_db, templates)


class TestExplainedSets:
    def test_appt_template_lids(self, engine, templates):
        # Dave accessed Alice twice (116, 130); Alice had appt with Dave
        assert engine.explained_lids(templates[0]) == {116, 130}

    def test_group_template_lids(self, engine, templates):
        # Nick and Ron are in Dave's group; Dave's own accesses also covered
        assert engine.explained_lids(templates[1]) == {100, 116, 127, 130}

    def test_repeat_template_lids(self, engine, templates):
        # only lid 130 is a strictly-later re-access by the same user
        assert engine.explained_lids(templates[2]) == {130}

    def test_all_explained_and_unexplained(self, engine):
        assert engine.all_explained_lids() == {100, 116, 127, 130}
        # Eve's access to Bob (900) has no explanation: the misuse queue
        assert engine.unexplained_lids() == {900}

    def test_coverage(self, engine):
        assert engine.coverage() == pytest.approx(4 / 5)

    def test_coverage_empty_log(self, hospital_db, templates):
        hospital_db.table("Log").clear()
        engine = ExplanationEngine(hospital_db, templates)
        assert engine.coverage() == 0.0


class TestExplain:
    def test_explained_access_ranked_by_length(self, engine):
        instances = engine.explain(116)
        assert instances
        # shortest explanation (appt, length 2) ranks first
        assert instances[0].template.name == "appt-with-dr"
        assert instances[0].path_length == 2
        lengths = [i.path_length for i in instances]
        assert lengths == sorted(lengths)

    def test_nurse_access_explained_via_group(self, engine):
        instances = engine.explain(100)
        assert {i.template.name for i in instances} == {"appt-with-group"}
        text = instances[0].render()
        assert "Alice" in text and "Dave" in text and "Nick" in text

    def test_unexplained_access_yields_empty(self, engine):
        assert engine.explain(900) == []

    def test_explain_or_flag(self, engine):
        _, suspicious = engine.explain_or_flag(900)
        assert suspicious
        _, suspicious = engine.explain_or_flag(116)
        assert not suspicious

    def test_repeat_decoration_respected(self, engine):
        # lid 116 (Dave's first access) must NOT be explained by repeat
        names = {i.template.name for i in engine.explain(116)}
        assert "repeat-access" not in names
        names130 = {i.template.name for i in engine.explain(130)}
        assert "repeat-access" in names130


class TestEngineManagement:
    def test_duplicate_templates_deduped(self, hospital_db, templates):
        engine = ExplanationEngine(hospital_db, templates + templates)
        assert len(engine.templates) == len(templates)

    def test_cache_invalidation(self, engine, hospital_db, templates):
        assert engine.explained_lids(templates[0]) == {116, 130}
        hospital_db.table("Log").insert((131, 10, "Dave", "Alice"))
        engine.invalidate_cache()
        assert 131 in engine.explained_lids(templates[0])
