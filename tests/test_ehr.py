"""Tests for the synthetic CareWeb substrate: topology, simulation,
schema/graph wiring, and fake-log generation."""

import pytest

from repro.db import Executor
from repro.ehr import (
    DATASET_A,
    DATASET_B,
    EPOCH,
    PATIENT_COLUMNS,
    Role,
    SimulationConfig,
    USER_COLUMNS,
    build_careweb_graph,
    build_empty_careweb_db,
    build_hospital,
    combined_log_db,
    generate_fake_accesses,
    is_fake_lid,
    simulate,
)


@pytest.fixture(scope="module")
def sim():
    return simulate(SimulationConfig.tiny())


class TestHospitalTopology:
    def test_team_count(self):
        hospital = build_hospital(SimulationConfig.tiny())
        assert len(hospital.teams) == 2

    def test_every_team_has_doctor_and_nurse(self):
        hospital = build_hospital(SimulationConfig.small())
        for team in hospital.teams.values():
            assert team.doctor_ids and team.nurse_ids

    def test_doctor_and_nurse_departments_differ(self):
        hospital = build_hospital(SimulationConfig.small())
        for team in hospital.teams.values():
            doc_dept = hospital.department_of(team.doctor_ids[0])
            nurse_dept = hospital.department_of(team.nurse_ids[0])
            assert doc_dept != nurse_dept
            assert "Nursing" in nurse_dept

    def test_service_users_span_teams(self):
        hospital = build_hospital(SimulationConfig.small())
        rads = hospital.users_by_role(Role.RADIOLOGIST)
        assigned = [hospital.users[r].team_ids for r in rads]
        assert any(len(t) >= 1 for t in assigned)

    def test_patients_have_pcp_in_team(self):
        hospital = build_hospital(SimulationConfig.tiny())
        for patient in hospital.patients.values():
            team = hospital.teams[patient.team_id]
            assert patient.pcp in team.doctor_ids

    def test_deterministic(self):
        h1 = build_hospital(SimulationConfig.tiny(seed=3))
        h2 = build_hospital(SimulationConfig.tiny(seed=3))
        assert sorted(h1.users) == sorted(h2.users)
        assert h1.summary() == h2.summary()

    def test_seed_changes_topology(self):
        h1 = build_hospital(SimulationConfig.tiny(seed=1))
        h2 = build_hospital(SimulationConfig.tiny(seed=2))
        assert h1.patients.keys() != h2.patients.keys() or (
            h1.summary() != h2.summary()
        )


class TestSchemas:
    def test_all_tables_created(self):
        db = build_empty_careweb_db()
        for name in ("Log", "Users") + DATASET_A + DATASET_B:
            assert db.has_table(name)

    def test_user_columns_exist(self):
        db = build_empty_careweb_db()
        for table, column in USER_COLUMNS:
            assert db.table(table).schema.has_column(column)

    def test_patient_columns_exist(self):
        db = build_empty_careweb_db()
        for table, column in PATIENT_COLUMNS:
            assert db.table(table).schema.has_column(column)

    def test_fk_targets_users(self):
        db = build_empty_careweb_db()
        for _table, fk in db.foreign_keys():
            assert fk.ref_table == "Users"

    def test_graph_self_joins(self):
        db = build_empty_careweb_db()
        graph = build_careweb_graph(db)
        assert graph.self_join_allowed("Users", "Department")
        assert not graph.self_join_allowed("Log", "Patient")
        graph2 = build_careweb_graph(db, allow_log_self_joins=True)
        assert graph2.self_join_allowed("Log", "Patient")
        assert graph2.self_join_allowed("Log", "User")

    def test_graph_start_edges_reach_all_event_tables(self):
        db = build_empty_careweb_db()
        graph = build_careweb_graph(db)
        reached = {e.dst.table for e in graph.start_edges()}
        for table in DATASET_A + DATASET_B:
            assert table in reached


class TestSimulation:
    def test_referential_integrity(self, sim):
        assert sim.db.validate_referential_integrity() == []

    def test_log_sorted_and_sequential(self, sim):
        log = sim.db.table("Log")
        lids = log.column_values("Lid")
        assert lids == list(range(1, len(log) + 1))
        dates = log.column_values("Date")
        assert dates == sorted(dates)

    def test_every_access_has_reason(self, sim):
        assert set(sim.reasons) == set(
            sim.db.table("Log").distinct_values("Lid")
        )

    def test_reason_tags_valid(self, sim):
        valid = {"appt-doctor", "care-team", "consult", "repeat", "noise", "snoop"}
        assert set(sim.reasons.values()) <= valid

    def test_dates_within_window(self, sim):
        for date in sim.db.table("Log").column_values("Date"):
            day = (date.date() - EPOCH.date()).days + 1
            assert 1 <= day <= sim.config.n_days

    def test_snooping_incidents_present(self, sim):
        assert len(sim.lids_tagged("snoop")) >= 1

    def test_deterministic(self):
        a = simulate(SimulationConfig.tiny(seed=11))
        b = simulate(SimulationConfig.tiny(seed=11))
        assert a.db.table("Log").rows() == b.db.table("Log").rows()
        assert a.reasons == b.reasons

    def test_appointments_reference_team_doctors(self, sim):
        hospital = sim.hospital
        for patient, doctor, _date in sim.db.table("Appointments").rows():
            team = hospital.team_of_patient(patient)
            assert doctor in team.doctor_ids

    def test_repeat_majority_at_benchmark_scale(self):
        sim = simulate(SimulationConfig.small())
        log = sim.db.table("Log")
        seen, repeats = set(), 0
        for row in log.rows():
            key = (row[2], row[3])
            if key in seen:
                repeats += 1
            else:
                seen.add(key)
        assert repeats / len(log) > 0.5

    def test_summary_mentions_counts(self, sim):
        assert "log=" in sim.summary()


class TestFakeLog:
    def test_fake_lids_flagged(self, sim):
        rows = generate_fake_accesses(sim.db, n=10, seed=1)
        assert len(rows) == 10
        assert all(is_fake_lid(r[0]) for r in rows)

    def test_fake_defaults_to_log_size(self, sim):
        rows = generate_fake_accesses(sim.db, seed=1)
        assert len(rows) == len(sim.db.table("Log"))

    def test_fake_values_from_population(self, sim):
        users = sim.db.table("Users").distinct_values("User")
        patients = sim.db.table("Log").distinct_values("Patient")
        for _lid, _date, user, patient in generate_fake_accesses(sim.db, n=50, seed=2):
            assert user in users and patient in patients

    def test_combined_db_shares_event_tables(self, sim):
        combined, real, fake = combined_log_db(sim.db, n_fake=20, seed=3)
        assert combined.table("Appointments") is sim.db.table("Appointments")
        assert combined.table("Log") is not sim.db.table("Log")
        assert len(combined.table("Log")) == len(real) + len(fake)
        assert len(fake) == 20
        assert real == sim.db.table("Log").distinct_values("Lid")

    def test_combined_db_queryable(self, sim):
        combined, _real, _fake = combined_log_db(sim.db, n_fake=5, seed=4)
        assert Executor(combined)  # construction suffices; no error

    def test_fake_deterministic(self, sim):
        a = generate_fake_accesses(sim.db, n=25, seed=9)
        b = generate_fake_accesses(sim.db, n=25, seed=9)
        assert a == b
        c = generate_fake_accesses(sim.db, n=25, seed=10)
        assert a != c
