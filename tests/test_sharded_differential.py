"""Differential suite: the sharded service must be indistinguishable
from the single-node service.

For every shard count in {1, 2, 7} and both executor kinds
("thread", "process"), `ShardedAuditService` must return results
byte-identical (via ``to_dict()`` / set equality) to ``AuditService``
over the same database — for explain_all, coverage, reports, per-access
explanation, mining support — and stay identical after incremental
``ingest_many``/``ingest`` with parent-assigned global log ids.

The SQLite storage backend rides the same treatment: at shards {1, 2}
(``open_service`` builds the single-node service at 1) every read and
ingest surface must match the in-memory reference byte-identically.
"""

import datetime as dt

import pytest

from repro.api import (
    AuditConfig,
    AuditService,
    ShardedAuditService,
    UnsupportedOperationError,
    open_service,
)
from repro.ehr import SimulationConfig, simulate

SHARD_COUNTS = (1, 2, 7)
EXECUTOR_KINDS = ("thread", "process")


def _fresh_db():
    return simulate(SimulationConfig.tiny(seed=7)).db


_CLOCK_START = dt.datetime(2026, 7, 1)


def _ticking_clock(start=_CLOCK_START):
    state = {"n": 0}

    def clock():
        state["n"] += 1
        return start + dt.timedelta(minutes=state["n"])

    return clock


def _sample_patients(db, k=3):
    log = db.table("Log")
    patient_i = log.schema.column_index("Patient")
    seen = []
    for row in log.rows():
        if row[patient_i] not in seen:
            seen.append(row[patient_i])
        if len(seen) >= k:
            break
    return seen


@pytest.fixture(scope="module")
def reference():
    """The single-node service over the shared read-only world."""
    return AuditService.open(_fresh_db())


@pytest.mark.parametrize("kind", EXECUTOR_KINDS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_reads_identical(reference, shards, kind):
    config = AuditConfig(shards=shards, executor_kind=kind)
    with ShardedAuditService.open(_fresh_db(), config=config) as sharded:
        # aggregate views
        assert sharded.coverage() == reference.coverage()
        assert sharded.unexplained_lids() == reference.unexplained_lids()
        assert sharded.summary() == reference.summary()
        # whole-log partition
        ours = sharded.explain_all()
        theirs = reference.explain_all()
        assert ours.explained == theirs.explained
        assert ours.unexplained == theirs.unexplained
        # full compliance artifact, including queue order and user risk
        assert sharded.report().to_dict() == reference.report().to_dict()
        assert sharded.report(limit=5).to_dict() == reference.report(limit=5).to_dict()
        # patient portal screens route to one shard
        for patient in _sample_patients(reference.db):
            assert (
                sharded.patient_report(patient).to_dict()
                == reference.patient_report(patient).to_dict()
            )
            ours_text = sharded.render_patient_report(patient)
            assert ours_text == reference.render_patient_report(patient)
        # per-access explanation (present and absent ids)
        for lid in (1, 2, 3, 10**9):
            assert sharded.explain(lid).to_dict() == reference.explain(lid).to_dict()
        # batch partition with ids no shard holds
        some = sorted(reference.unexplained_lids())[:5] + [10**9]
        ours = sharded.explain_batch(some)
        theirs = reference.explain_batch(some)
        assert ours.explained == theirs.explained
        assert ours.unexplained == theirs.unexplained
        # mining support counts are per-shard sums
        templates = list(reference.templates())[:4]
        assert sharded.support_many(templates) == reference.support_many(templates)
        # template sets agree
        assert sharded.templates() == reference.templates()


@pytest.mark.parametrize("kind", EXECUTOR_KINDS)
@pytest.mark.parametrize("shards", (1, 2))
def test_sqlite_backend_sharded_reads_identical(reference, shards, kind):
    """The SQLite backend under sharding: every shard converts its
    partition to a private (in-memory) SQLite database, and every read
    surface stays byte-identical to the single-node memory service."""
    config = AuditConfig(shards=shards, executor_kind=kind, backend="sqlite")
    with open_service(_fresh_db(), config=config) as service:
        assert service.coverage() == reference.coverage()
        assert service.unexplained_lids() == reference.unexplained_lids()
        ours = service.explain_all()
        theirs = reference.explain_all()
        assert ours.explained == theirs.explained
        assert ours.unexplained == theirs.unexplained
        assert service.report().to_dict() == reference.report().to_dict()
        for patient in _sample_patients(reference.db, k=2):
            assert (
                service.patient_report(patient).to_dict()
                == reference.patient_report(patient).to_dict()
            )
        for lid in (1, 2, 10**9):
            assert service.explain(lid).to_dict() == reference.explain(lid).to_dict()
        templates = list(reference.templates())[:4]
        assert service.support_many(templates) == reference.support_many(templates)


@pytest.mark.parametrize("shards", (1, 2))
def test_sqlite_backend_sharded_ingest_identical(shards):
    """Ingest through the SQLite backend (single-node and sharded)
    matches the memory reference: ids, dates, explanations, alerts."""
    base = AuditService.open(_fresh_db(), clock=_ticking_clock())
    config = AuditConfig(shards=shards, backend="sqlite")
    with open_service(
        _fresh_db(), config=config, clock=_ticking_clock()
    ) as service:
        patients = _sample_patients(base.db, k=3) + ["brand-new-patient"]
        batch = [
            (f"u{i % 2:04d}", patients[i % len(patients)], None)
            for i in range(8)
        ]
        ours = [r.to_dict() for r in service.ingest_many(batch)]
        theirs = [r.to_dict() for r in base.ingest_many(batch)]
        assert ours == theirs
        assert service.coverage() == base.coverage()
        assert service.report().to_dict() == base.report().to_dict()


@pytest.mark.parametrize("kind", EXECUTOR_KINDS)
@pytest.mark.parametrize("shards", (2, 7))
def test_sharded_ingest_identical(shards, kind):
    base = AuditService.open(_fresh_db(), clock=_ticking_clock())
    config = AuditConfig(shards=shards, executor_kind=kind)
    with ShardedAuditService.open(
        _fresh_db(), config=config, clock=_ticking_clock()
    ) as sharded:
        patients = _sample_patients(base.db, k=3) + ["brand-new-patient"]
        batch = [
            (f"u{i % 2:04d}", patients[i % len(patients)], None)
            for i in range(12)
        ]
        ours = [r.to_dict() for r in sharded.ingest_many(batch)]
        theirs = [r.to_dict() for r in base.ingest_many(batch)]
        assert ours == theirs  # ids, dates, explanations, alert flags
        one_ours = sharded.ingest("u0001", patients[0]).to_dict()
        one_theirs = base.ingest("u0001", patients[0]).to_dict()
        assert one_ours == one_theirs
        # post-ingest aggregates still agree
        assert sharded.coverage() == base.coverage()
        assert sharded.report().to_dict() == base.report().to_dict()
        assert sharded.unexplained_lids() == base.unexplained_lids()


@pytest.mark.parametrize("kind", EXECUTOR_KINDS)
def test_sharded_batch_semijoin_ingest_identical(kind):
    """The forced batch-semijoin ingest strategy survives sharding."""
    config = AuditConfig(batch_ingest=True)
    base = AuditService.open(
        _fresh_db(), config=config, clock=_ticking_clock()
    )
    sharded_config = config.replace(shards=3, executor_kind=kind)
    with ShardedAuditService.open(
        _fresh_db(), config=sharded_config, clock=_ticking_clock()
    ) as sharded:
        patients = _sample_patients(base.db, k=4)
        batch = [("u0001", patients[i % 4], None) for i in range(10)]
        ours = [r.to_dict() for r in sharded.ingest_many(batch)]
        theirs = [r.to_dict() for r in base.ingest_many(batch)]
        assert ours == theirs
        assert sharded.coverage() == base.coverage()


def test_sharded_alerts_fire_in_ingest_order():
    events = []
    config = AuditConfig(shards=3)
    with ShardedAuditService.open(_fresh_db(), config=config) as sharded:
        sharded.on_alert(lambda r: events.append(r.lid))
        results = sharded.ingest_many(
            [("nobody", f"ghost-patient-{i}", None) for i in range(4)]
        )
        alerted = [r.lid for r in results if r.alerted]
        assert events == alerted
        assert len(events) == 4  # ghost patients have no explanations


def test_sharded_add_templates_broadcasts(reference):
    with ShardedAuditService.open(
        _fresh_db(), templates=(), config=AuditConfig(shards=3)
    ) as sharded:
        before = sharded.coverage()
        assert before == 0.0
        offered = sharded.add_templates(list(reference.templates()))
        assert offered == len(reference.templates())
        assert sharded.coverage() == reference.coverage()


def test_sharded_stats_aggregate(reference):
    with ShardedAuditService.open(
        _fresh_db(), config=AuditConfig(shards=4)
    ) as sharded:
        stats = sharded.stats()
        assert stats["shards"] == 4
        assert stats["executor_kind"] == "thread"
        assert stats["log_rows"] == reference.stats()["log_rows"]
        assert len(stats["per_shard"]) == 4
        assert stats["ingest"] is None  # nothing ingested yet
        per_shard_rows = sum(s["log_rows"] for s in stats["per_shard"])
        assert per_shard_rows == stats["log_rows"]
        sharded.ingest("u0001", "p-any")
        assert sharded.stats()["ingest"]["seen"] == 1


def test_sharded_lifecycle_and_unsupported_writers():
    service = ShardedAuditService.open(
        _fresh_db(), config=AuditConfig(shards=2)
    )
    # typed UnsupportedOperationError (a NotImplementedError subclass so
    # pre-wire callers keep working), carrying a remediation hint
    with pytest.raises(NotImplementedError) as excinfo:
        service.mine()
    assert isinstance(excinfo.value, UnsupportedOperationError)
    assert excinfo.value.code == "unsupported_operation"
    assert excinfo.value.http_status == 501
    assert "add_templates" in excinfo.value.hint
    with pytest.raises(UnsupportedOperationError) as excinfo:
        service.build_groups()
    assert "AuditService.open" in excinfo.value.hint
    service.close()
    service.close()  # idempotent
    with pytest.raises(RuntimeError):
        service.coverage()


def test_open_service_routes_by_shard_count():
    single = open_service(_fresh_db())
    assert isinstance(single, AuditService)
    with open_service(
        _fresh_db(), config=AuditConfig(shards=2)
    ) as sharded:
        assert isinstance(sharded, ShardedAuditService)


def test_cli_audit_json_identical_across_shards(tmp_path, capsys):
    from repro.api import save_database
    from repro.cli import main

    db_dir = str(tmp_path / "hospital")
    save_database(_fresh_db(), db_dir)
    assert main(["audit", "--db", db_dir, "--json"]) == 0
    single_out = capsys.readouterr().out
    sharded_args = ["--shards", "3", "--executor-kind", "thread"]
    assert main(["audit", "--db", db_dir, "--json"] + sharded_args) == 0
    assert capsys.readouterr().out == single_out
    assert main(["evaluate", "--db", db_dir, "--json", "--shards", "2"]) == 0
    assert "coverage" in capsys.readouterr().out
