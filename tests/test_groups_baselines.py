"""Tests for the alternative group-inference baselines and their
comparison against modularity clustering on the synthetic hospital."""

import pytest

from repro.ehr import SimulationConfig, simulate
from repro.groups import (
    access_matrix_from_log,
    cluster_graph,
    department_grouping,
    modularity,
    pair_scores,
    partition_sizes,
    similarity_graph,
    threshold_components,
)


def triangle_graph():
    return {
        0: {1: 1.0, 2: 0.05},
        1: {0: 1.0, 2: 1.0},
        2: {0: 0.05, 1: 1.0},
        3: {},
    }


class TestThresholdComponents:
    def test_no_threshold_connects_everything_linked(self):
        part = threshold_components(triangle_graph())
        assert part[0] == part[1] == part[2]
        assert part[3] != part[0]  # isolated node stays alone

    def test_threshold_cuts_weak_edges(self):
        adj = {0: {1: 0.1}, 1: {0: 0.1, 2: 0.9}, 2: {1: 0.9}}
        part = threshold_components(adj, threshold=0.5)
        assert part[1] == part[2]
        assert part[0] != part[1]

    def test_labels_dense(self):
        part = threshold_components(triangle_graph())
        labels = set(part.values())
        assert labels == set(range(len(labels)))

    def test_deterministic(self):
        adj = triangle_graph()
        assert threshold_components(adj) == threshold_components(adj)

    def test_empty(self):
        assert threshold_components({}) == {}


class TestDepartmentGrouping:
    def test_groups_by_code(self):
        part = department_grouping({"a": "Peds", "b": "Peds", "c": "Rad"})
        assert part["a"] == part["b"] != part["c"]

    def test_partition_sizes(self):
        part = department_grouping({"a": "X", "b": "X", "c": "Y"})
        sizes = partition_sizes(part)
        assert sorted(sizes.values()) == [1, 2]


class TestPairScores:
    def test_perfect_partition(self):
        truth = {u: frozenset({u // 2}) for u in range(6)}
        part = {u: u // 2 for u in range(6)}
        assert pair_scores(part, truth) == (1.0, 1.0)

    def test_all_in_one_recall_one(self):
        truth = {u: frozenset({u // 2}) for u in range(6)}
        part = {u: 0 for u in range(6)}
        precision, recall = pair_scores(part, truth)
        assert recall == 1.0 and precision < 1.0

    def test_all_singletons_vacuous(self):
        truth = {u: frozenset({0}) for u in range(4)}
        part = {u: u for u in range(4)}
        assert pair_scores(part, truth) == (0.0, 0.0)


class TestBaselineComparison:
    """Modularity clustering must beat both baselines on the synthetic
    hospital — the quantitative version of the paper's Section 4 argument
    for access-pattern groups over department codes."""

    @pytest.fixture(scope="class")
    def setting(self):
        sim = simulate(SimulationConfig.small(seed=17))
        access = access_matrix_from_log(sim.db)
        adjacency = similarity_graph(access)
        truth = {
            uid: frozenset(user.team_ids)
            for uid, user in sim.hospital.users.items()
            if uid in adjacency
        }
        return sim, adjacency, truth

    def test_modularity_beats_department_codes(self, setting):
        sim, adjacency, truth = setting
        clustered = cluster_graph(adjacency)
        dept = department_grouping(
            {u: sim.hospital.department_of(u) for u in adjacency}
        )
        _, recall_cluster = pair_scores(clustered, truth)
        _, recall_dept = pair_scores(dept, truth)
        # dept codes split doctors from their nurses: recall collapses
        assert recall_cluster > recall_dept

    def test_modularity_q_beats_components(self, setting):
        _, adjacency, _ = setting
        clustered = cluster_graph(adjacency)
        components = threshold_components(adjacency)
        assert modularity(adjacency, clustered) >= modularity(
            adjacency, components
        )

    def test_components_overmerge(self, setting):
        _, adjacency, truth = setting
        components = threshold_components(adjacency)
        clustered = cluster_graph(adjacency)
        # shared consult staff connect everything: raw components merge
        # most users into one blob, so they find no more groups than
        # modularity clustering does
        assert len(set(components.values())) <= len(set(clustered.values()))
