"""AuditConfig round-trips and the bounded LRU plan cache it governs."""

import dataclasses

import pytest

from repro.api import AuditConfig, AuditService
from repro.db.optimizer import PlanCache, QueryPlan


def _plan() -> QueryPlan:
    return QueryPlan(needed={}, pushable_idx={}, residual_idx=(), steps=())


class TestAuditConfig:
    def test_defaults_round_trip(self):
        config = AuditConfig()
        assert AuditConfig.from_dict(config.to_dict()) == config

    def test_non_default_round_trip(self):
        config = AuditConfig(
            log_table="Audit",
            log_id_attr="Id",
            use_batch_path=False,
            semijoin_batch_min=3,
            predicate_pushdown=False,
            distinct_reduction=False,
            plan_cache_size=7,
            incremental_ingest=False,
            batch_ingest=True,
            alert_on_unexplained=False,
            eager_warm=False,
        )
        data = config.to_dict()
        assert data["plan_cache_size"] == 7
        assert AuditConfig.from_dict(data) == config

    def test_to_dict_is_json_scalar_only(self):
        import json

        json.dumps(AuditConfig().to_dict())  # must not raise

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown AuditConfig fields"):
            AuditConfig.from_dict({"plan_cach_size": 10})

    def test_unknown_key_rejected_message_names_lenient_mode(self):
        with pytest.raises(ValueError, match="strict=False"):
            AuditConfig.from_dict({"plan_cach_size": 10})

    def test_lenient_mode_warns_and_ignores_unknown_keys(self):
        with pytest.warns(UserWarning, match="ignoring unknown AuditConfig"):
            config = AuditConfig.from_dict(
                {"shards": 3, "from_the_future": True}, strict=False
            )
        assert config.shards == 3

    def test_lenient_mode_still_validates_known_keys(self):
        with pytest.raises(ValueError):
            AuditConfig.from_dict({"shards": 0}, strict=False)

    def test_lenient_mode_without_unknown_keys_is_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = AuditConfig.from_dict(
                AuditConfig().to_dict(), strict=False
            )
        assert config == AuditConfig()

    def test_replace_revalidates(self):
        config = AuditConfig()
        assert config.replace(plan_cache_size=2).plan_cache_size == 2
        with pytest.raises(ValueError):
            config.replace(plan_cache_size=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"log_table": ""},
            {"log_id_attr": ""},
            {"semijoin_batch_min": 0},
            {"plan_cache_size": 0},
            {"batch_ingest": "yes"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AuditConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            AuditConfig().plan_cache_size = 5


class TestPlanCacheLRU:
    def test_hit_refreshes_recency(self):
        cache = PlanCache(max_size=2)
        cache.store(("a",), _plan())
        cache.store(("b",), _plan())
        assert cache.lookup(("a",)) is not None  # "a" is now most recent
        cache.store(("c",), _plan())  # evicts LRU = "b", not "a"
        assert cache.lookup(("a",)) is not None
        assert cache.lookup(("b",)) is None

    def test_fifo_without_hits(self):
        cache = PlanCache(max_size=2)
        cache.store(("a",), _plan())
        cache.store(("b",), _plan())
        cache.store(("c",), _plan())
        assert cache.lookup(("a",)) is None
        assert len(cache) == 2

    def test_counters_and_stats(self):
        cache = PlanCache(max_size=4)
        cache.store(("k",), _plan())
        cache.lookup(("k",))
        cache.lookup(("missing",))
        assert cache.stats() == {"hits": 1, "misses": 1, "size": 1}

    def test_max_size_validated(self):
        with pytest.raises(ValueError):
            PlanCache(max_size=0)


class TestConfigDrivesService:
    def test_plan_cache_size_from_config(self, hospital_db):
        service = AuditService.open(
            hospital_db,
            templates=(),
            config=AuditConfig(plan_cache_size=5, eager_warm=False),
        )
        assert service.plan_cache.max_size == 5
        # private per-service cache, not the process-wide shared one
        from repro.db.optimizer import shared_plan_cache

        assert service.plan_cache is not shared_plan_cache()

    def test_stats_exposes_plan_cache_counters(self, hospital_db):
        from repro.audit.handcrafted import event_user_template
        from repro.core.graph import SchemaGraph

        graph = SchemaGraph(hospital_db)
        template = event_user_template(graph, "Appointments", "Doctor")
        service = AuditService.open(hospital_db, templates=[template])
        service.explain(116)
        service.explain(130)
        stats = service.stats()["plan_cache"]
        assert set(stats) == {"hits", "misses", "size"}
        assert stats["misses"] >= 1
        assert stats["hits"] >= 1  # repeated point-query shape re-used

    def test_executor_toggles_from_config(self, hospital_db):
        service = AuditService.open(
            hospital_db,
            templates=(),
            config=AuditConfig(
                predicate_pushdown=False,
                distinct_reduction=False,
                eager_warm=False,
            ),
        )
        assert service.engine.executor.predicate_pushdown is False
        assert service.engine.executor.distinct_reduction is False

    def test_semijoin_threshold_reaches_engine(self, hospital_db):
        service = AuditService.open(
            hospital_db,
            templates=(),
            config=AuditConfig(semijoin_batch_min=3, eager_warm=False),
        )
        assert service.engine.semijoin_batch_min == 3
