"""Incremental-equivalence property tests.

The delta-maintenance contract: after *any* interleaving of appends and
cache-building reads, a delta-maintained :class:`~repro.db.table.Table`
(hash indexes, distinct projections, NDV stats, projection indexes) and a
delta-maintained :class:`~repro.core.engine.ExplanationEngine`
(explained-lid sets, unexplained queue, coverage) must be
indistinguishable from ones freshly rebuilt over the same final data.
Seeded random interleavings pin the contract down.
"""

from __future__ import annotations

import random

import pytest

from repro.audit.handcrafted import (
    event_group_template,
    event_user_template,
    repeat_access_template,
)
from repro.core import ExplanationEngine
from repro.db import ColumnType, Database, TableSchema
from repro.db.table import Table

# ----------------------------------------------------------------------
# table-level properties
# ----------------------------------------------------------------------
COLS = ("a", "b", "c")
PROJECTIONS = [("a",), ("b",), ("c",), ("a", "b"), ("b", "c"), ("a", "b", "c")]
PROJ_INDEXES = [(("a", "b"), ("a",)), (("a", "b", "c"), ("b", "c")), (("b", "c"), ("c",))]


def _random_read(rng: random.Random, table: Table) -> None:
    """Build/refresh one randomly chosen cached structure."""
    roll = rng.randrange(7)
    if roll == 0:
        table.index_for(rng.choice(COLS))
    elif roll == 1:
        table.project_distinct(rng.choice(PROJECTIONS))
    elif roll == 2:
        table.ndv(rng.choice(COLS))
    elif roll == 3:
        attrs, keys = rng.choice(PROJ_INDEXES)
        table.projection_index(attrs, keys)
    elif roll == 4:
        table.column_array(rng.choice(COLS))
    elif roll == 5:
        table.probe_many(rng.choice(COLS), [rng.randrange(4), None])
    else:
        table.lookup(rng.choice(COLS), rng.randrange(4))


def _random_row(rng: random.Random) -> list:
    return [
        rng.choice([0, 1, 2, 3, None]),
        rng.choice([0, 1, None]),
        rng.choice([0, 1, 2, 3, 4, 5]),
    ]


def _schema() -> TableSchema:
    return TableSchema.build(
        "T", [(c, ColumnType.INT) for c in COLS]
    )


def assert_structures_fresh(live: Table) -> None:
    """Every cached structure equals its from-scratch counterpart."""
    fresh = Table(_schema())
    fresh.insert_many(live.rows())
    for column, values in live._column_store.items():
        assert values == fresh.column_array(column), f"column[{column}] diverged"
    for column, mapping in live._indexes.items():
        assert mapping == fresh.index_for(column), f"index[{column}] diverged"
    for key, cache in live._distinct_cache.items():
        assert cache == fresh.project_distinct(key), f"distinct[{key}] diverged"
    for column, count in live._ndv_cache.items():
        assert count == fresh.ndv(column), f"ndv[{column}] diverged"
    for (attrs, keys), index in live._proj_index_cache.items():
        fresh_index = fresh.projection_index(attrs, keys)
        assert set(index) == set(fresh_index)
        for k, entries in index.items():
            assert set(entries) == set(fresh_index[k]), (
                f"projection_index[{attrs}, {keys}][{k}] diverged"
            )


@pytest.mark.parametrize("seed", range(12))
def test_table_delta_equals_rebuild(seed):
    rng = random.Random(4000 + seed)
    table = Table(_schema())
    for _ in range(rng.randrange(30, 80)):
        if rng.random() < 0.6:
            table.insert(_random_row(rng))
        else:
            _random_read(rng, table)
    assert_structures_fresh(table)


@pytest.mark.parametrize("seed", range(6))
def test_table_delta_equals_rebuild_after_batches(seed):
    """insert_many interleaved with reads preserves every structure."""
    rng = random.Random(4600 + seed)
    table = Table(_schema())
    for _ in range(rng.randrange(5, 12)):
        _random_read(rng, table)
        table.insert_many(_random_row(rng) for _ in range(rng.randrange(0, 9)))
    assert_structures_fresh(table)


def test_table_clear_drops_all_structures():
    table = Table(_schema())
    table.insert_many([(1, 0, 2), (2, 1, 3)])
    table.index_for("a")
    table.project_distinct(("a", "b"))
    table.ndv("c")
    table.projection_index(("a", "b"), ("a",))
    table.column_array("b")
    table.clear()
    assert len(table) == 0
    assert table._column_store == {}
    assert table._indexes == {}
    assert table._distinct_cache == {}
    assert table._ndv_cache == {}
    assert table._proj_index_cache == {}
    assert table.index_for("a") == {}
    assert table.ndv("a") == 0


def test_ndv_counts_new_distinct_values_only():
    table = Table(_schema())
    table.insert((1, 0, 0))
    assert table.ndv("a") == 1
    table.insert((1, 1, 0))  # repeat value: no change
    assert table._ndv_cache["a"] == 1
    table.insert((7, 1, 0))  # new value: +1 without rebuild
    assert table._ndv_cache["a"] == 2
    table.insert((None, 1, 0))  # NULL never counts
    assert table._ndv_cache["a"] == 2
    assert table.ndv("a") == 2


# ----------------------------------------------------------------------
# engine-level properties
# ----------------------------------------------------------------------
USERS = ["Dave", "Nick", "Ron", "Eve", "Sam", "Zed"]
PATIENTS = ["Alice", "Bob", "Carol"]


def _hospital() -> Database:
    db = Database("hospital")
    log = db.create_table(
        TableSchema.build(
            "Log",
            [("Lid", ColumnType.INT), ("Date", ColumnType.INT), "User", "Patient"],
            primary_key=["Lid"],
        )
    )
    appts = db.create_table(
        TableSchema.build(
            "Appointments", ["Patient", "Doctor", ("Date", ColumnType.INT)]
        )
    )
    groups = db.create_table(
        TableSchema.build(
            "Groups",
            [("Group_Depth", ColumnType.INT), ("Group_id", ColumnType.INT), "User"],
        )
    )
    log.insert_many(
        [
            (100, 1, "Nick", "Alice"),
            (116, 2, "Dave", "Alice"),
            (130, 9, "Dave", "Alice"),
            (900, 4, "Eve", "Bob"),
        ]
    )
    appts.insert_many([("Alice", "Dave", 1), ("Bob", "Sam", 2)])
    groups.insert_many(
        [(1, 10, "Dave"), (1, 10, "Nick"), (1, 10, "Ron"), (1, 11, "Sam")]
    )
    return db


def _templates(db: Database):
    from repro.core import SchemaGraph

    graph = SchemaGraph(db)
    graph.allow_self_join("Groups", "Group_id")
    graph.allow_self_join("Log", "Patient")
    graph.allow_self_join("Log", "User")
    return [
        event_user_template(graph, "Appointments", "Doctor"),
        event_group_template(graph, "Appointments", "Doctor"),
        repeat_access_template(graph),
    ]


def _fresh_engine(db: Database) -> ExplanationEngine:
    return ExplanationEngine(db, _templates(db))


def _append(db: Database, lid: int, date: int, user: str, patient: str) -> int:
    db.table("Log").insert((lid, date, user, patient))
    return lid


@pytest.mark.parametrize("seed", range(10))
def test_engine_delta_equals_rebuild(seed):
    """Random appends + notify_appended == a freshly built engine."""
    rng = random.Random(5000 + seed)
    db = _hospital()
    engine = ExplanationEngine(db, _templates(db))
    if rng.random() < 0.5:
        engine.coverage()  # warm the aggregate caches up front
    next_lid = 1000
    for _ in range(rng.randrange(5, 25)):
        # back-dated rows included: deltas must retro-explain older lids
        lid = _append(
            db,
            next_lid,
            rng.randrange(0, 20),
            rng.choice(USERS),
            rng.choice(PATIENTS),
        )
        next_lid += rng.choice([1, 1, 2, 7])  # non-contiguous lids
        engine.notify_appended(lid)
        if rng.random() < 0.3:
            engine.unexplained_lids()  # exercise mid-stream reads
    fresh = _fresh_engine(db)
    for template, template_fresh in zip(engine.templates, fresh.templates):
        assert engine.explained_lids(template) == fresh.explained_lids(
            template_fresh
        )
    assert engine.all_lids() == fresh.all_lids()
    assert engine.all_explained_lids() == fresh.all_explained_lids()
    assert engine.unexplained_lids() == fresh.unexplained_lids()
    assert engine.coverage() == pytest.approx(fresh.coverage())


@pytest.mark.parametrize("seed", range(6))
def test_engine_batch_delta_equals_rebuild(seed):
    """notify_appended_many over a batch == rebuild (and == per-row)."""
    rng = random.Random(6000 + seed)
    db = _hospital()
    engine = ExplanationEngine(db, _templates(db))
    engine.unexplained_lids()  # warm
    batch = []
    for i in range(rng.randrange(3, 15)):
        batch.append(
            _append(
                db,
                2000 + 3 * i,
                rng.randrange(0, 20),
                rng.choice(USERS),
                rng.choice(PATIENTS),
            )
        )
    engine.notify_appended_many(batch)
    fresh = _fresh_engine(db)
    assert engine.all_explained_lids() == fresh.all_explained_lids()
    assert engine.unexplained_lids() == fresh.unexplained_lids()


def test_notify_appended_retro_explains_older_access():
    """A back-dated repeat access explains the *older* streamed row too."""
    db = _hospital()
    engine = ExplanationEngine(db, _templates(db))
    engine.unexplained_lids()
    first = _append(db, 1500, 10, "Zed", "Carol")
    newly = engine.notify_appended(first)
    assert first not in engine.all_explained_lids()
    # Zed's *earlier* access arrives late (out-of-order delivery): the
    # repeat-access template now explains the first row, not this one.
    second = _append(db, 1501, 5, "Zed", "Carol")
    newly = engine.notify_appended(second)
    assert first in newly
    assert first in engine.all_explained_lids()
    assert second in engine.unexplained_lids()
    fresh = _fresh_engine(db)
    assert engine.all_explained_lids() == fresh.all_explained_lids()
    assert engine.unexplained_lids() == fresh.unexplained_lids()


def test_notify_appended_on_cold_engine_warms_then_patches():
    db = _hospital()
    engine = ExplanationEngine(db, _templates(db))
    lid = _append(db, 3000, 3, "Ron", "Alice")  # Ron in Dave's group
    engine.notify_appended(lid)  # caches were cold: warms over full log
    fresh = _fresh_engine(db)
    assert engine.all_explained_lids() == fresh.all_explained_lids()
    lid2 = _append(db, 3001, 4, "Ron", "Alice")  # now a repeat access
    newly = engine.notify_appended(lid2)
    assert lid2 in newly
    assert engine.unexplained_lids() == _fresh_engine(db).unexplained_lids()


def test_add_template_after_warm_resets_aggregates():
    db = _hospital()
    templates = _templates(db)
    engine = ExplanationEngine(db, templates[:1])
    before = set(engine.unexplained_lids())  # warm the aggregates
    engine.add_template(templates[2])  # repeat-access
    after = engine.unexplained_lids()
    assert after <= before
    reference = ExplanationEngine(db, [templates[0], templates[2]])
    assert engine.all_explained_lids() == reference.all_explained_lids()
    assert after == reference.unexplained_lids()


def test_invalidate_cache_still_correct_after_external_mutation():
    """The escape hatch: destructive edits + invalidate == rebuild."""
    db = _hospital()
    engine = ExplanationEngine(db, _templates(db))
    engine.coverage()
    log = db.table("Log")
    rows = [r for r in log.rows() if r[2] != "Eve"]  # delete Eve's access
    log.clear()
    log.insert_many(rows)
    engine.invalidate_cache()
    fresh = _fresh_engine(db)
    assert engine.all_lids() == fresh.all_lids()
    assert engine.unexplained_lids() == fresh.unexplained_lids()
    assert engine.coverage() == pytest.approx(fresh.coverage())
