"""Tests for Path: seeds, extension, closing, bridging, validation.

These encode the paper's restricted-simple-path rules (Section 3.2) on the
Figure 3 schema and the hospital fixture with Groups/Log self-joins.
"""


from repro.core import EdgeKind, Path, SchemaAttr, SchemaEdge
from repro.db import AttrRef


def edge(t1, a1, t2, a2, kind=EdgeKind.ADMIN):
    return SchemaEdge(SchemaAttr(t1, a1), SchemaAttr(t2, a2), kind)


E_LP_AP = edge("Log", "Patient", "Appointments", "Patient")
E_AD_LU = edge("Appointments", "Doctor", "Log", "User")
E_AD_GU = edge("Appointments", "Doctor", "Groups", "User")
E_GU_LU = edge("Groups", "User", "Log", "User")
E_GG = edge("Groups", "Group_id", "Groups", "Group_id", EdgeKind.SELF_JOIN)
E_LP_LP = edge("Log", "Patient", "Log", "Patient", EdgeKind.SELF_JOIN)
E_LU_LU = edge("Log", "User", "Log", "User", EdgeKind.SELF_JOIN)


class TestSeeds:
    def test_forward_seed(self, hospital_graph):
        p = Path.forward_seed(hospital_graph, E_LP_AP)
        assert p is not None
        assert p.anchored_start and not p.anchored_end
        assert p.length == 1
        assert p.last_table() == "Appointments"

    def test_forward_seed_wrong_edge(self, hospital_graph):
        assert Path.forward_seed(hospital_graph, E_AD_LU) is None

    def test_backward_seed(self, hospital_graph):
        p = Path.backward_seed(hospital_graph, E_AD_LU)
        assert p is not None
        assert p.anchored_end and not p.anchored_start
        assert p.first_table() == "Appointments"

    def test_backward_seed_wrong_edge(self, hospital_graph):
        assert Path.backward_seed(hospital_graph, E_LP_AP) is None

    def test_self_join_seed_creates_second_log_var(self, hospital_graph):
        p = Path.forward_seed(hospital_graph, E_LP_LP)
        assert p is not None
        assert p.var_tables == ("Log", "Log")


class TestForwardExtension:
    def test_close_at_end(self, hospital_graph):
        p = Path.forward_seed(hospital_graph, E_LP_AP).extend_forward(E_AD_LU)
        assert p is not None and p.is_explanation
        assert p.length == 2

    def test_closed_paths_cannot_extend(self, hospital_graph):
        p = Path.forward_seed(hospital_graph, E_LP_AP).extend_forward(E_AD_LU)
        assert p.extend_forward(E_AD_GU) is None

    def test_disconnected_edge_rejected(self, hospital_graph):
        p = Path.forward_seed(hospital_graph, E_LP_AP)
        assert p.extend_forward(E_GU_LU) is None  # src table Groups != Appointments

    def test_table_revisit_rejected_without_self_join(self, hospital_graph):
        p = Path.forward_seed(hospital_graph, E_LP_AP)
        # Appointments.Doctor -> Groups.User -> back into Appointments
        p = p.extend_forward(E_AD_GU)
        back = edge("Groups", "User", "Appointments", "Doctor")
        assert p.extend_forward(back) is None

    def test_self_join_revisit_allowed_once(self, hospital_graph):
        p = Path.forward_seed(hospital_graph, E_LP_AP).extend_forward(E_AD_GU)
        p2 = p.extend_forward(E_GG)
        assert p2 is not None
        assert p2.var_tables.count("Groups") == 2
        # a third Groups variable is rejected even via self-join
        assert p2.extend_forward(E_GG) is None

    def test_group_explanation_length_4(self, hospital_graph):
        p = (
            Path.forward_seed(hospital_graph, E_LP_AP)
            .extend_forward(E_AD_GU)
            .extend_forward(E_GG)
            .extend_forward(E_GU_LU)
        )
        assert p is not None and p.is_explanation and p.length == 4

    def test_repeat_access_template(self, hospital_graph):
        p = Path.forward_seed(hospital_graph, E_LP_LP).extend_forward(E_LU_LU)
        assert p is not None and p.is_explanation
        assert p.length == 2
        assert p.var_tables == ("Log", "Log")


class TestBackwardExtension:
    def test_anchor_at_start(self, hospital_graph):
        p = Path.backward_seed(hospital_graph, E_AD_LU).extend_backward(E_LP_AP)
        assert p is not None and p.is_explanation

    def test_anchored_cannot_extend_backward(self, hospital_graph):
        p = Path.backward_seed(hospital_graph, E_AD_LU).extend_backward(E_LP_AP)
        assert p.extend_backward(E_LP_AP) is None

    def test_backward_new_var(self, hospital_graph):
        p = Path.backward_seed(hospital_graph, E_GU_LU)
        p2 = p.extend_backward(E_AD_GU)
        assert p2 is not None
        assert p2.first_table() == "Appointments"

    def test_backward_disconnected(self, hospital_graph):
        p = Path.backward_seed(hospital_graph, E_GU_LU)
        assert p.extend_backward(E_LP_AP) is None  # dst Appointments != Groups


class TestBridging:
    def test_bridge_on_shared_edge(self, hospital_graph):
        # forward: L.P=A.P, A.D=G1.U ; backward: A.D=G1.U??? backward must
        # end at L.U: G.U=L.U prefixed by the shared edge A.D=G.U
        fwd = Path.forward_seed(hospital_graph, E_LP_AP).extend_forward(E_AD_GU)
        bwd = Path.backward_seed(hospital_graph, E_GU_LU).extend_backward(E_AD_GU)
        merged = Path.bridge(fwd, bwd)
        assert merged is not None and merged.is_explanation
        assert merged.length == 3  # 2 + 2 - 1

    def test_bridge_requires_shared_edge(self, hospital_graph):
        fwd = Path.forward_seed(hospital_graph, E_LP_AP)
        bwd = Path.backward_seed(hospital_graph, E_GU_LU)
        assert Path.bridge(fwd, bwd) is None

    def test_bridge_with_empty_middle(self, hospital_graph):
        # forward: L.P=A.P, A.D=G1.U ; backward: G1.gid=G2.gid, G2.U=L.U
        fwd = Path.forward_seed(hospital_graph, E_LP_AP).extend_forward(E_AD_GU)
        bwd = Path.backward_seed(hospital_graph, E_GU_LU).extend_backward(E_GG)
        merged = Path.bridge_with_middle(fwd, (), bwd)
        assert merged is not None and merged.is_explanation
        assert merged.length == 4

    def test_bridge_with_one_middle_edge(self, hospital_graph):
        fwd = Path.forward_seed(hospital_graph, E_LP_AP)  # ends at Appointments
        bwd = Path.backward_seed(hospital_graph, E_GU_LU).extend_backward(E_GG)
        merged = Path.bridge_with_middle(fwd, (E_AD_GU,), bwd)
        assert merged is not None and merged.is_explanation
        assert merged.length == 4

    def test_bridge_table_mismatch(self, hospital_graph):
        fwd = Path.forward_seed(hospital_graph, E_LP_AP)  # ends Appointments
        bwd = Path.backward_seed(hospital_graph, E_GU_LU)  # starts Groups
        assert Path.bridge_with_middle(fwd, (), bwd) is None

    def test_bridge_equivalence_with_oneway(self, hospital_graph):
        direct = (
            Path.forward_seed(hospital_graph, E_LP_AP)
            .extend_forward(E_AD_GU)
            .extend_forward(E_GG)
            .extend_forward(E_GU_LU)
        )
        fwd = Path.forward_seed(hospital_graph, E_LP_AP).extend_forward(E_AD_GU)
        bwd = Path.backward_seed(hospital_graph, E_GU_LU).extend_backward(E_GG)
        merged = Path.bridge_with_middle(fwd, (), bwd)
        assert merged.signature() == direct.signature()


class TestValidationAndQuery:
    def test_validate_clean_path(self, hospital_graph):
        p = Path.forward_seed(hospital_graph, E_LP_AP).extend_forward(E_AD_LU)
        assert p.validate() == []

    def test_query_shape(self, hospital_graph):
        p = Path.forward_seed(hospital_graph, E_LP_AP).extend_forward(E_AD_LU)
        q = p.to_query()
        assert len(q.tuple_vars) == 2
        assert len(q.conditions) == 2
        assert q.projection == (AttrRef("L", "Lid"),)

    def test_alias_of_log_is_L(self, hospital_graph):
        p = Path.forward_seed(hospital_graph, E_LP_AP)
        assert p.alias_of(0) == "L"
        assert p.alias_of(1) == "Appointments_1"

    def test_signature_ignores_direction(self, hospital_graph):
        fwd = Path.forward_seed(hospital_graph, E_LP_AP).extend_forward(E_AD_LU)
        bwd = Path.backward_seed(hospital_graph, E_AD_LU).extend_backward(E_LP_AP)
        assert fwd.signature() == bwd.signature()

    def test_str_contains_marker(self, hospital_graph):
        p = Path.forward_seed(hospital_graph, E_LP_AP)
        assert "partial" in str(p)
        closed = p.extend_forward(E_AD_LU)
        assert "explanation" in str(closed)

    def test_counted_tables(self, hospital_graph):
        p = (
            Path.forward_seed(hospital_graph, E_LP_AP)
            .extend_forward(E_AD_GU)
            .extend_forward(E_GG)
            .extend_forward(E_GU_LU)
        )
        # Log + Appointments + Groups(x2 counted once) = 3
        assert p.counted_tables(hospital_graph) == 3
