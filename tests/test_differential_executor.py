"""Differential tests: the hash-join Executor vs a brute-force reference.

The reference evaluator enumerates the full cartesian product of the
query's tuple variables with nested loops and applies SQL three-valued
comparison semantics directly — no indexes, no distinct reduction, no
pushdown, no join ordering.  Every executor configuration (with and
without ``distinct_reduction``, with and without ``predicate_pushdown``)
on every storage backend (the in-memory engine and the template-to-SQL
SQLite pushdown, via :func:`repro.db.make_executor`) must produce the
same multiset of projected rows on several hundred seeded random
conjunctive queries, including NULL join/comparison cases.

The batch-vs-point suite extends the same treatment to the set-at-a-time
path: ``Executor.distinct_values_in`` (one batch semijoin) must equal
both the brute-force reference restricted by membership and the union of
one point query per binding value, across every executor configuration —
including NULL join keys, NULLs inside the binding set, empty batches,
and single-row batches.
"""

from __future__ import annotations

import itertools
import operator
import random
from collections import Counter

import pytest

from repro.db import (
    AttrRef,
    ColumnType,
    Condition,
    ConjunctiveQuery,
    Database,
    Literal,
    TableSchema,
    TupleVar,
    make_executor,
    open_sql_database,
)

_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: (distinct_reduction, predicate_pushdown) — every pipeline configuration.
CONFIGS = [(True, True), (True, False), (False, True), (False, False)]

#: Storage backends under differential test: the in-memory columnar
#: engine and the template-to-SQL pushdown over SQLite.
BACKENDS = ["memory", "sqlite"]


def sql_twin(db: Database):
    """The same data as a private in-memory SQLite database (converted
    once per source database and cached on it)."""
    twin = getattr(db, "_sql_twin", None)
    if twin is None:
        twin = open_sql_database(db, None)
        db._sql_twin = twin
    return twin


def backend_db(db: Database, backend: str):
    return db if backend == "memory" else sql_twin(db)


def all_executors(db: Database, **kw):
    """One executor per (backend, distinct_reduction, pushdown) triple,
    each yielded with a mismatch-message label."""
    for distinct_reduction, pushdown in CONFIGS:
        for backend in BACKENDS:
            yield (
                f"backend={backend}, "
                f"distinct_reduction={distinct_reduction}, "
                f"pushdown={pushdown}",
                make_executor(
                    backend_db(db, backend),
                    distinct_reduction=distinct_reduction,
                    predicate_pushdown=pushdown,
                    **kw,
                ),
            )


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def sql_compare(op: str, left, right) -> bool:
    """SQL semantics: any comparison involving NULL is false."""
    if left is None or right is None:
        return False
    return _OPS[op](left, right)


def reference_evaluate(db: Database, query: ConjunctiveQuery) -> list[tuple]:
    """Nested-loop evaluation of a conjunctive query, no optimizations."""
    tables = [db.table(v.table) for v in query.tuple_vars]
    alias_pos = {v.alias: i for i, v in enumerate(query.tuple_vars)}

    def value(combo, ref: AttrRef):
        i = alias_pos[ref.alias]
        return combo[i][tables[i].schema.column_index(ref.attr)]

    out: list[tuple] = []
    for combo in itertools.product(*[t.rows() for t in tables]):
        ok = True
        for cond in query.conditions:
            left = value(combo, cond.left)
            right = (
                value(combo, cond.right)
                if isinstance(cond.right, AttrRef)
                else cond.right.value
            )
            if not sql_compare(cond.op, left, right):
                ok = False
                break
        if ok:
            out.append(tuple(value(combo, ref) for ref in query.projection))
    if query.distinct:
        out = list(dict.fromkeys(out))
    return out


# ----------------------------------------------------------------------
# random workload generation
# ----------------------------------------------------------------------
TABLE_SPECS = [("T0", 3), ("T1", 2), ("T2", 3), ("T3", 4)]
VALUE_DOMAIN = [0, 1, 2, 3, None]


def random_database(rng: random.Random) -> Database:
    """Small integer tables with ~20% NULLs and overlapping value domains."""
    db = Database("diff")
    for name, n_cols in TABLE_SPECS:
        cols = [(f"c{i}", ColumnType.INT) for i in range(n_cols)]
        table = db.create_table(TableSchema.build(name, cols))
        for _ in range(rng.randrange(0, 10)):
            table.insert([rng.choice(VALUE_DOMAIN) for _ in range(n_cols)])
    return db


def random_attr(rng: random.Random, tvars: list[TupleVar], db: Database) -> AttrRef:
    var = rng.choice(tvars)
    cols = db.table(var.table).schema.column_names
    return AttrRef(var.alias, rng.choice(cols))


def random_query(
    rng: random.Random, db: Database, connected: bool = True
) -> ConjunctiveQuery:
    n_vars = rng.choice([1, 1, 2, 2, 2, 3, 3, 4])
    tvars = [
        TupleVar(f"V{i}", rng.choice(TABLE_SPECS)[0]) for i in range(n_vars)
    ]
    conds: list[Condition] = []
    if connected:
        # a random spanning tree of equality joins keeps the graph connected
        for i in range(1, n_vars):
            j = rng.randrange(i)
            left = AttrRef(
                tvars[i].alias,
                rng.choice(db.table(tvars[i].table).schema.column_names),
            )
            right = AttrRef(
                tvars[j].alias,
                rng.choice(db.table(tvars[j].table).schema.column_names),
            )
            conds.append(Condition(left, "=", right))
    for _ in range(rng.randrange(0, 4)):
        roll = rng.random()
        left = random_attr(rng, tvars, db)
        if roll < 0.35:
            # point predicate (pushdown candidate), occasionally = NULL
            value = rng.choice([0, 1, 2, 3, 3, None])
            conds.append(Condition(left, "=", Literal(value)))
        elif roll < 0.65:
            op = rng.choice(["<", "<=", ">", ">=", "!="])
            conds.append(Condition(left, op, Literal(rng.choice(VALUE_DOMAIN))))
        else:
            op = rng.choice(["=", "<", "!=", ">="])
            conds.append(Condition(left, op, random_attr(rng, tvars, db)))
    projection: list[AttrRef] = []
    for _ in range(rng.randrange(1, 4)):
        ref = random_attr(rng, tvars, db)
        if ref not in projection:
            projection.append(ref)
    return ConjunctiveQuery.build(
        tvars, conds, projection, distinct=rng.random() < 0.7
    )


def assert_matches_reference(db: Database, query: ConjunctiveQuery, **kw) -> None:
    expected = Counter(reference_evaluate(db, query))
    for label, executor in all_executors(db, **kw):
        got = Counter(executor.execute(query).rows)
        assert got == expected, f"mismatch ({label}) for query:\n{query}"


# ----------------------------------------------------------------------
# randomized differential sweep: 20 seeds x ~10 queries x 4 configs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(20))
def test_random_queries_match_reference(seed):
    rng = random.Random(1000 + seed)
    db = random_database(rng)
    for _ in range(10):
        query = random_query(rng, db)
        assert_matches_reference(db, query)


@pytest.mark.parametrize("seed", range(5))
def test_random_cartesian_queries_match_reference(seed):
    """Disconnected join graphs (opt-in cartesian products) also agree."""
    rng = random.Random(2000 + seed)
    db = random_database(rng)
    for _ in range(5):
        query = random_query(rng, db, connected=False)
        assert_matches_reference(db, query, allow_cartesian=True)


@pytest.mark.parametrize("seed", range(5))
def test_random_count_distinct_matches_reference(seed):
    """The support-query shape (COUNT(DISTINCT attr)) agrees too."""
    rng = random.Random(3000 + seed)
    db = random_database(rng)
    for _ in range(8):
        query = random_query(rng, db)
        target = query.projection[0]
        expected = len(
            {
                row[0]
                for row in reference_evaluate(
                    db,
                    ConjunctiveQuery.build(
                        query.tuple_vars, query.conditions, (target,), distinct=True
                    ),
                )
            }
        )
        for label, executor in all_executors(db):
            assert executor.count_distinct(query, target) == expected, label


# ----------------------------------------------------------------------
# directed NULL-semantics cases
# ----------------------------------------------------------------------
@pytest.fixture
def null_db():
    db = Database("nulls")
    left = db.create_table(
        TableSchema.build("Left", [("k", ColumnType.INT), ("x", ColumnType.INT)])
    )
    right = db.create_table(
        TableSchema.build("Right", [("k", ColumnType.INT), ("y", ColumnType.INT)])
    )
    left.insert_many([(1, 10), (None, 20), (2, None), (2, 40), (1, 10)])
    right.insert_many([(1, 100), (None, 200), (2, 300)])
    return db


def _join_query(distinct=True, extra=()):
    tvars = [TupleVar("A", "Left"), TupleVar("B", "Right")]
    conds = [Condition(AttrRef("A", "k"), "=", AttrRef("B", "k")), *extra]
    proj = [AttrRef("A", "x"), AttrRef("B", "y")]
    return ConjunctiveQuery.build(tvars, conds, proj, distinct=distinct)


@pytest.mark.parametrize("distinct_reduction,pushdown", CONFIGS)
def test_null_join_keys_never_match(null_db, backend, distinct_reduction, pushdown):
    executor = make_executor(
        backend_db(null_db, backend),
        distinct_reduction=distinct_reduction,
        predicate_pushdown=pushdown,
    )
    rows = set(executor.execute(_join_query()).rows)
    # the NULL-keyed rows on either side must not pair up
    assert rows == {(10, 100), (None, 300), (40, 300)}
    assert rows == set(reference_evaluate(null_db, _join_query()))


@pytest.mark.parametrize("distinct_reduction,pushdown", CONFIGS)
def test_equals_null_literal_is_unsatisfiable(
    null_db, backend, distinct_reduction, pushdown
):
    executor = make_executor(
        backend_db(null_db, backend),
        distinct_reduction=distinct_reduction,
        predicate_pushdown=pushdown,
    )
    query = _join_query(extra=(Condition(AttrRef("A", "k"), "=", Literal(None)),))
    assert executor.execute(query).rows == []
    assert reference_evaluate(null_db, query) == []


@pytest.mark.parametrize("distinct_reduction,pushdown", CONFIGS)
def test_not_equals_never_matches_null(null_db, backend, distinct_reduction, pushdown):
    executor = make_executor(
        backend_db(null_db, backend),
        distinct_reduction=distinct_reduction,
        predicate_pushdown=pushdown,
    )
    query = _join_query(extra=(Condition(AttrRef("A", "x"), "!=", Literal(20)),))
    rows = set(executor.execute(query).rows)
    # (2, None) has x = NULL: `x != 20` is false under SQL semantics
    assert rows == {(10, 100), (40, 300)}
    assert rows == set(reference_evaluate(null_db, query))


@pytest.mark.parametrize("pushdown", [True, False])
def test_point_predicate_agrees_with_filter_path(null_db, backend, pushdown):
    executor = make_executor(
        backend_db(null_db, backend), predicate_pushdown=pushdown
    )
    query = _join_query(extra=(Condition(AttrRef("B", "k"), "=", Literal(2)),))
    assert set(executor.execute(query).rows) == {(None, 300), (40, 300)}


# ----------------------------------------------------------------------
# batch semijoin (distinct_values_in) vs reference and per-point union
# ----------------------------------------------------------------------
def reference_distinct_in(db, query, attr, in_attr, values) -> set:
    """Brute-force ``SELECT DISTINCT attr ... AND in_attr IN values``.

    SQL membership semantics: NULL binding values never match, rows whose
    ``in_attr`` is NULL are never selected.
    """
    probe = ConjunctiveQuery.build(
        query.tuple_vars, query.conditions, (attr, in_attr), distinct=False
    )
    wanted = {v for v in values if v is not None}
    return {
        a
        for a, b in reference_evaluate(db, probe)
        if b is not None and b in wanted
    }


def point_union_distinct(executor, query, attr, in_attr, values) -> set:
    """The per-access path: one point query per binding value, unioned."""
    out: set = set()
    for value in values:
        pinned = ConjunctiveQuery.build(
            query.tuple_vars,
            query.conditions + (Condition(in_attr, "=", Literal(value)),),
            query.projection,
            query.distinct,
        )
        out |= executor.distinct_values(pinned, attr)
    return out


def assert_batch_matches_point(db, query, attr, in_attr, values, **kw):
    expected = reference_distinct_in(db, query, attr, in_attr, values)
    for label, executor in all_executors(db, **kw):
        batch = executor.distinct_values_in(query, attr, in_attr, values)
        assert batch == expected, (
            f"batch != reference ({label}, "
            f"in={sorted(values, key=repr)}) for:\n{query}"
        )
        union = point_union_distinct(executor, query, attr, in_attr, values)
        assert batch == union, f"batch != point union ({label}) for:\n{query}"


@pytest.mark.parametrize("seed", range(12))
def test_random_batch_semijoin_matches_point_queries(seed):
    """Seeded random templates + binding sets, all four configs."""
    rng = random.Random(7000 + seed)
    db = random_database(rng)
    for _ in range(8):
        query = random_query(rng, db)
        attr = query.projection[0]
        in_attr = random_attr(rng, list(query.tuple_vars), db)
        n = rng.randrange(0, 6)
        values = {rng.choice(VALUE_DOMAIN + [7]) for _ in range(n)}
        assert_batch_matches_point(db, query, attr, in_attr, values)


@pytest.mark.parametrize("seed", range(4))
def test_random_batch_semijoin_on_projected_attr(seed):
    """The explain_batch shape: restrict the projected attribute itself."""
    rng = random.Random(8000 + seed)
    db = random_database(rng)
    for _ in range(6):
        query = random_query(rng, db)
        attr = query.projection[0]
        values = {rng.choice(VALUE_DOMAIN) for _ in range(rng.randrange(1, 5))}
        for label, executor in all_executors(db):
            batch = executor.distinct_values_in(query, attr, attr, values)
            full = executor.distinct_values(query, attr)
            assert batch == full & {v for v in values if v is not None}, label


@pytest.mark.parametrize("distinct_reduction,pushdown", CONFIGS)
def test_batch_semijoin_null_join_keys(null_db, backend, distinct_reduction, pushdown):
    """NULL join keys and NULL binding values never match."""
    executor = make_executor(
        backend_db(null_db, backend),
        distinct_reduction=distinct_reduction,
        predicate_pushdown=pushdown,
    )
    query = _join_query()
    got = executor.distinct_values_in(
        query, AttrRef("A", "x"), AttrRef("B", "k"), {2, None}
    )
    # only B.k = 2 can bind: A rows (2, None) and (2, 40)
    assert got == {None, 40}
    assert got == reference_distinct_in(
        null_db, query, AttrRef("A", "x"), AttrRef("B", "k"), {2, None}
    )


@pytest.mark.parametrize("distinct_reduction,pushdown", CONFIGS)
def test_batch_semijoin_edge_batches(null_db, backend, distinct_reduction, pushdown):
    """Empty and single-value batches (the degenerate point-query case)."""
    executor = make_executor(
        backend_db(null_db, backend),
        distinct_reduction=distinct_reduction,
        predicate_pushdown=pushdown,
    )
    query = _join_query()
    attr, in_attr = AttrRef("A", "x"), AttrRef("A", "k")
    assert executor.distinct_values_in(query, attr, in_attr, set()) == set()
    assert executor.distinct_values_in(query, attr, in_attr, {None}) == set()
    single = executor.distinct_values_in(query, attr, in_attr, {1})
    assert single == point_union_distinct(executor, query, attr, in_attr, {1})
    assert single == {10}


@pytest.mark.parametrize("distinct_reduction,pushdown", CONFIGS)
def test_batch_semijoin_composes_with_point_pushdown(
    null_db, backend, distinct_reduction, pushdown
):
    """An IN-restriction on an alias that also carries a point predicate."""
    executor = make_executor(
        backend_db(null_db, backend),
        distinct_reduction=distinct_reduction,
        predicate_pushdown=pushdown,
    )
    query = _join_query(extra=(Condition(AttrRef("A", "k"), "=", Literal(2)),))
    got = executor.distinct_values_in(
        query, AttrRef("A", "x"), AttrRef("A", "x"), {40, 10}
    )
    assert got == {40}


def test_batch_semijoin_counts_as_one_query(null_db, backend):
    executor = make_executor(backend_db(null_db, backend))
    before = executor.queries_executed
    executor.distinct_values_in(
        _join_query(), AttrRef("A", "x"), AttrRef("A", "k"), {1, 2, 3, 4}
    )
    assert executor.queries_executed == before + 1


def test_non_distinct_preserves_multiplicity(null_db):
    """distinct=False must keep duplicate projected rows in every config."""
    query = _join_query(distinct=False)
    expected = Counter(reference_evaluate(null_db, query))
    assert max(expected.values()) >= 2  # the duplicated (1, 10) row
    for label, executor in all_executors(null_db):
        assert Counter(executor.execute(query).rows) == expected, label
