"""Unit tests for repro.db.schema: column types, schemas, constraints."""

import datetime as dt

import pytest

from repro.db import Column, ColumnType, ForeignKey, SchemaError, TableSchema


class TestColumnType:
    def test_int_roundtrip(self):
        assert ColumnType.INT.parse("42") == 42
        assert ColumnType.INT.render(42) == "42"

    def test_float_roundtrip(self):
        assert ColumnType.FLOAT.parse("2.5") == 2.5
        assert ColumnType.FLOAT.render(2.5) == "2.5"

    def test_str_roundtrip(self):
        assert ColumnType.STR.parse("abc") == "abc"
        assert ColumnType.STR.render("abc") == "abc"

    def test_bool_parse_variants(self):
        for text in ("1", "true", "T", "YES"):
            assert ColumnType.BOOL.parse(text) is True
        assert ColumnType.BOOL.parse("false") is False

    def test_bool_render(self):
        assert ColumnType.BOOL.render(True) == "true"
        assert ColumnType.BOOL.render(False) == "false"

    def test_date_roundtrip(self):
        stamp = dt.datetime(2010, 1, 3, 10, 16, 57)
        assert ColumnType.DATE.parse(stamp.isoformat()) == stamp
        assert ColumnType.DATE.parse(ColumnType.DATE.render(stamp)) == stamp

    def test_empty_string_is_null(self):
        for ctype in ColumnType:
            assert ctype.parse("") is None

    def test_null_renders_empty(self):
        for ctype in ColumnType:
            assert ctype.render(None) == ""

    def test_validate_int_rejects_bool(self):
        assert not ColumnType.INT.validate(True)
        assert ColumnType.INT.validate(3)

    def test_validate_float_accepts_int(self):
        assert ColumnType.FLOAT.validate(3)
        assert ColumnType.FLOAT.validate(3.5)

    def test_validate_null_always_ok(self):
        for ctype in ColumnType:
            assert ctype.validate(None)

    def test_validate_date(self):
        assert ColumnType.DATE.validate(dt.datetime(2010, 1, 1))
        assert not ColumnType.DATE.validate("2010-01-01")


class TestColumn:
    def test_default_type_is_str(self):
        assert Column("Patient").ctype is ColumnType.STR

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("bad name")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("")

    def test_underscores_allowed(self):
        assert Column("Group_id").name == "Group_id"


class TestTableSchema:
    def make(self):
        return TableSchema.build(
            "Log",
            [("Lid", ColumnType.INT), ("Date", ColumnType.DATE), "User", "Patient"],
            primary_key=["Lid"],
        )

    def test_column_names(self):
        assert self.make().column_names == ("Lid", "Date", "User", "Patient")

    def test_column_index(self):
        schema = self.make()
        assert schema.column_index("Lid") == 0
        assert schema.column_index("Patient") == 3

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            self.make().column_index("Nope")

    def test_has_column(self):
        schema = self.make()
        assert schema.has_column("User")
        assert not schema.has_column("user")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema.build("T", ["a", "a"])

    def test_pk_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema.build("T", ["a"], primary_key=["b"])

    def test_fk_column_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema.build(
                "T", ["a"], foreign_keys=[ForeignKey("b", "Other", "x")]
            )

    def test_build_accepts_mixed_specs(self):
        schema = TableSchema.build(
            "T", [Column("a"), ("b", ColumnType.INT), "c"]
        )
        assert schema.column("a").ctype is ColumnType.STR
        assert schema.column("b").ctype is ColumnType.INT
        assert schema.column("c").ctype is ColumnType.STR

    def test_str_rendering(self):
        assert "Log(" in str(self.make())

    def test_arity(self):
        assert self.make().arity() == 4

    def test_invalid_table_name(self):
        with pytest.raises(SchemaError):
            TableSchema.build("bad name", ["a"])

    def test_foreign_key_str(self):
        fk = ForeignKey("Doctor", "Users", "User")
        assert str(fk) == "Doctor -> Users.User"
