"""Tests for the streaming access monitor (online auditing)."""

import datetime as dt

import pytest

from repro.audit import (
    AccessMonitor,
    all_event_user_templates,
    repeat_access_template,
)
from repro.core import ExplanationEngine
from repro.db import ColumnType, Database, TableSchema
from repro.ehr import EPOCH, SimulationConfig, build_careweb_graph, simulate


def build_engine(seed=13):
    sim = simulate(SimulationConfig.tiny(seed=seed))
    graph = build_careweb_graph(sim.db)
    templates = all_event_user_templates(graph)
    templates.append(repeat_access_template(graph))
    return ExplanationEngine(sim.db, templates), sim


@pytest.fixture
def engine():
    return build_engine()


class TestIngest:
    def test_appends_to_log(self, engine):
        eng, sim = engine
        before = len(sim.db.table("Log"))
        monitor = AccessMonitor(eng)
        monitor.ingest("u0000", "p00001", EPOCH + dt.timedelta(days=9))
        assert len(sim.db.table("Log")) == before + 1

    def test_lids_continue_sequence(self, engine):
        eng, sim = engine
        max_lid = max(sim.db.table("Log").distinct_values("Lid"))
        monitor = AccessMonitor(eng)
        access = monitor.ingest("u0000", "p00001")
        assert access.lid == max_lid + 1
        access2 = monitor.ingest("u0000", "p00002")
        assert access2.lid == max_lid + 2

    def test_explained_access_not_flagged(self, engine):
        eng, sim = engine
        # find a patient with an appointment; stream the doctor's access
        appt = sim.db.table("Appointments").rows()[0]
        patient, doctor = appt[0], appt[1]
        monitor = AccessMonitor(eng)
        access = monitor.ingest(doctor, patient, EPOCH + dt.timedelta(days=8))
        assert not access.suspicious
        assert "accessed" in access.headline() or access.instances

    def test_unrelated_access_alerts(self, engine):
        eng, sim = engine
        alerts = []
        monitor = AccessMonitor(eng, alert_handlers=(alerts.append,))
        # a brand-new user can have no event or prior access
        access = monitor.ingest("intruder", "p00001", EPOCH)
        assert access.suspicious
        assert alerts == [access]
        assert monitor.alerts == 1

    def test_repeat_explained_after_first_stream(self, engine):
        eng, sim = engine
        monitor = AccessMonitor(eng)
        first = monitor.ingest("intruder", "p00001", EPOCH + dt.timedelta(days=8))
        assert first.suspicious
        second = monitor.ingest(
            "intruder", "p00001", EPOCH + dt.timedelta(days=9)
        )
        # the second access is a repeat of the first streamed one
        assert not second.suspicious
        assert any(
            i.template.name == "repeat-access" for i in second.instances
        )

    def test_alert_rate(self, engine):
        eng, sim = engine
        monitor = AccessMonitor(eng)
        assert monitor.alert_rate() == 0.0
        monitor.ingest("intruder", "p00001", EPOCH)
        assert monitor.alert_rate() == 1.0

    def test_ingest_many(self, engine):
        eng, _ = engine
        monitor = AccessMonitor(eng)
        out = monitor.ingest_many(
            [
                ("intruder", "p00001", EPOCH),
                ("intruder", "p00001", EPOCH + dt.timedelta(hours=1)),
            ]
        )
        assert len(out) == 2
        assert monitor.seen == 2

    def test_on_alert_registration(self, engine):
        eng, _ = engine
        monitor = AccessMonitor(eng)
        seen = []
        monitor.on_alert(seen.append)
        monitor.ingest("intruder", "p00001", EPOCH)
        assert len(seen) == 1

    def test_coverage_cache_invalidated(self, engine):
        eng, _ = engine
        monitor = AccessMonitor(eng)
        eng.coverage()  # warm the cache
        access = monitor.ingest("intruder", "p00001", EPOCH)
        assert access.lid in eng.unexplained_lids()


def _stream(sim, n=30):
    """A deterministic mixed stream with strictly increasing timestamps."""
    appts = sim.db.table("Appointments").rows()
    out = []
    for i in range(n):
        when = EPOCH + dt.timedelta(days=8, minutes=i)
        if i % 3 == 0:
            patient, doctor = appts[i % len(appts)][0], appts[i % len(appts)][1]
            out.append((doctor, patient, when))  # explained by appointment
        elif i % 3 == 1:
            out.append((f"intruder{i % 4}", "p00001", when))  # snooping
        else:
            prev = out[-1]
            out.append((prev[0], prev[1], when))  # repeat of previous access
    return out


class TestStreamingRegression:
    """ingest_many == one-by-one ingest, at O(templates × N) point queries."""

    def test_batch_matches_one_by_one(self):
        eng_a, sim_a = build_engine()
        eng_b, sim_b = build_engine()  # identical world, separate state
        stream = _stream(sim_a)
        mon_one = AccessMonitor(eng_a)
        one_by_one = [mon_one.ingest(u, p, d) for u, p, d in stream]
        mon_batch = AccessMonitor(eng_b)
        batched = mon_batch.ingest_many(_stream(sim_b))
        assert [a.lid for a in batched] == [a.lid for a in one_by_one]
        assert [a.suspicious for a in batched] == [
            a.suspicious for a in one_by_one
        ]
        assert mon_batch.alerts == mon_one.alerts
        assert mon_batch.seen == mon_one.seen == len(stream)
        assert eng_b.unexplained_lids() == eng_a.unexplained_lids()
        assert eng_b.coverage() == pytest.approx(eng_a.coverage())

    def test_batch_headlines_match_one_by_one(self):
        eng_a, sim_a = build_engine()
        eng_b, sim_b = build_engine()
        mon_one = AccessMonitor(eng_a)
        one_by_one = [mon_one.ingest(u, p, d) for u, p, d in _stream(sim_a, 12)]
        batched = AccessMonitor(eng_b).ingest_many(_stream(sim_b, 12))
        assert [a.headline() for a in batched] == [
            a.headline() for a in one_by_one
        ]

    def test_ingest_issues_point_queries_not_rescans(self, engine):
        """Query count is O(templates × N): per access, one instance query
        per template plus one delta point query per (template, log alias) —
        never O(N²) re-joins of the whole log."""
        eng, _ = engine
        monitor = AccessMonitor(eng)
        n_templates = len(eng.templates)
        monitor.ingest("u0000", "p00001", EPOCH + dt.timedelta(days=8))
        warm = monitor.last_ingest_queries  # includes one-time cache warming
        assert warm <= 4 * n_templates
        n = 25
        before = eng.executor.queries_executed
        for i in range(n):
            monitor.ingest("u0000", "p00001", EPOCH + dt.timedelta(days=9, minutes=i))
        spent = eng.executor.queries_executed - before
        # explain: T queries; delta maintenance: <= 2 log aliases per
        # template => hard per-access ceiling of 3T, linear in N
        assert spent <= 3 * n_templates * n
        assert monitor.last_ingest_queries <= 3 * n_templates

    def test_batch_query_count_linear(self, engine):
        eng, _ = engine
        monitor = AccessMonitor(eng)
        eng.coverage()  # warm every template cache
        n = 40
        batch = [
            ("u0000", "p00001", EPOCH + dt.timedelta(days=8, minutes=i))
            for i in range(n)
        ]
        before = eng.executor.queries_executed
        out = monitor.ingest_many(batch)
        spent = eng.executor.queries_executed - before
        assert len(out) == n
        assert spent <= 3 * len(eng.templates) * n

    def test_batch_alert_handlers_fire_in_order(self, engine):
        eng, _ = engine
        seen = []
        monitor = AccessMonitor(eng, alert_handlers=(lambda a: seen.append(a.lid),))
        out = monitor.ingest_many(
            [
                ("intruderA", "p00001", EPOCH),
                ("intruderB", "p00002", EPOCH + dt.timedelta(minutes=1)),
            ]
        )
        assert seen == [a.lid for a in out if a.suspicious]
        assert len(seen) == monitor.alerts == 2

    def test_ingest_many_empty_batch(self, engine):
        eng, _ = engine
        monitor = AccessMonitor(eng)
        assert monitor.ingest_many([]) == []
        assert monitor.seen == 0


def _toy_engine(lids=((1, 1, "Dave", "Alice"),)):
    """A template-free engine over a minimal log (monitor unit tests)."""
    db = Database("toy")
    log = db.create_table(
        TableSchema.build(
            "Log",
            [("Lid", ColumnType.INT), ("Date", ColumnType.INT), "User", "Patient"],
        )
    )
    log.insert_many(lids)
    return ExplanationEngine(db)


class TestMonitorTestability:
    """Injectable clock and robust lid allocation (no hidden now())."""

    def test_clock_injected_for_missing_dates(self):
        ticks = []
        base = dt.datetime(2026, 7, 1, 9, 0, 0)

        def clock():
            ticks.append(len(ticks))
            return base + dt.timedelta(minutes=len(ticks))

        db = Database("toy")
        db.create_table(
            TableSchema.build(
                "Log",
                [("Lid", ColumnType.INT), ("Date", ColumnType.DATE), "User", "Patient"],
            )
        )
        monitor = AccessMonitor(ExplanationEngine(db), clock=clock)
        first = monitor.ingest("u", "p")
        second = monitor.ingest("u", "p")
        assert first.date == base + dt.timedelta(minutes=1)
        assert second.date == base + dt.timedelta(minutes=2)
        assert ticks == [0, 1]

    def test_explicit_date_bypasses_clock(self):
        def clock():  # pragma: no cover - must never run
            raise AssertionError("clock must not be consulted")

        monitor = AccessMonitor(_toy_engine(), clock=clock)
        access = monitor.ingest("u", "p", 7)
        assert access.date == 7

    def test_next_lid_skips_noncontiguous_gaps(self):
        monitor = AccessMonitor(_toy_engine([(5, 1, "a", "p"), (900, 2, "b", "q")]))
        assert monitor.ingest("u", "p", 3).lid == 901

    def test_next_lid_ignores_non_integer_lids(self):
        assert AccessMonitor._initial_next_lid({"ext-7", 41, "ext-9"}) == 42
        assert AccessMonitor._initial_next_lid({"ext-7", "ext-9"}) == 1
        assert AccessMonitor._initial_next_lid(set()) == 1

    def test_next_lid_ignores_bools(self):
        # True == 1 numerically; a boolean lid must not anchor the sequence
        assert AccessMonitor._initial_next_lid({True}) == 1
        assert AccessMonitor._initial_next_lid({True, 3}) == 4

    def test_empty_log_starts_at_one(self):
        monitor = AccessMonitor(_toy_engine(()))
        assert monitor.ingest("u", "p", 1).lid == 1

    def test_stats_counters(self):
        monitor = AccessMonitor(_toy_engine(()))
        assert monitor.stats()["seen"] == 0
        monitor.ingest("u", "p", 1)
        monitor.ingest_many([("v", "q", 2), ("w", "r", 3)])
        stats = monitor.stats()
        assert stats["seen"] == 3
        assert stats["alerts"] == 3  # template-free engine explains nothing
        assert stats["alert_rate"] == 1.0
        assert stats["total_seconds"] >= stats["last_ingest_seconds"] >= 0.0
        assert stats["total_queries"] >= 0

    def test_non_incremental_mode_still_correct(self):
        eng_a, sim_a = build_engine()
        eng_b, sim_b = build_engine()
        stream = _stream(sim_a, 9)
        fast = [AccessMonitor(eng_a).ingest(u, p, d) for u, p, d in stream]
        slow_monitor = AccessMonitor(eng_b, incremental=False)
        slow = [slow_monitor.ingest(u, p, d) for u, p, d in _stream(sim_b, 9)]
        assert [a.suspicious for a in fast] == [a.suspicious for a in slow]
        assert eng_a.unexplained_lids() == eng_b.unexplained_lids()
