"""Tests for the streaming access monitor (online auditing)."""

import datetime as dt

import pytest

from repro.audit import (
    AccessMonitor,
    all_event_user_templates,
    repeat_access_template,
)
from repro.core import ExplanationEngine
from repro.ehr import EPOCH, SimulationConfig, build_careweb_graph, simulate


@pytest.fixture
def engine():
    sim = simulate(SimulationConfig.tiny(seed=13))
    graph = build_careweb_graph(sim.db)
    templates = all_event_user_templates(graph)
    templates.append(repeat_access_template(graph))
    return ExplanationEngine(sim.db, templates), sim


class TestIngest:
    def test_appends_to_log(self, engine):
        eng, sim = engine
        before = len(sim.db.table("Log"))
        monitor = AccessMonitor(eng)
        monitor.ingest("u0000", "p00001", EPOCH + dt.timedelta(days=9))
        assert len(sim.db.table("Log")) == before + 1

    def test_lids_continue_sequence(self, engine):
        eng, sim = engine
        max_lid = max(sim.db.table("Log").distinct_values("Lid"))
        monitor = AccessMonitor(eng)
        access = monitor.ingest("u0000", "p00001")
        assert access.lid == max_lid + 1
        access2 = monitor.ingest("u0000", "p00002")
        assert access2.lid == max_lid + 2

    def test_explained_access_not_flagged(self, engine):
        eng, sim = engine
        # find a patient with an appointment; stream the doctor's access
        appt = sim.db.table("Appointments").rows()[0]
        patient, doctor = appt[0], appt[1]
        monitor = AccessMonitor(eng)
        access = monitor.ingest(doctor, patient, EPOCH + dt.timedelta(days=8))
        assert not access.suspicious
        assert "accessed" in access.headline() or access.instances

    def test_unrelated_access_alerts(self, engine):
        eng, sim = engine
        alerts = []
        monitor = AccessMonitor(eng, alert_handlers=(alerts.append,))
        # a brand-new user can have no event or prior access
        access = monitor.ingest("intruder", "p00001", EPOCH)
        assert access.suspicious
        assert alerts == [access]
        assert monitor.alerts == 1

    def test_repeat_explained_after_first_stream(self, engine):
        eng, sim = engine
        monitor = AccessMonitor(eng)
        first = monitor.ingest("intruder", "p00001", EPOCH + dt.timedelta(days=8))
        assert first.suspicious
        second = monitor.ingest(
            "intruder", "p00001", EPOCH + dt.timedelta(days=9)
        )
        # the second access is a repeat of the first streamed one
        assert not second.suspicious
        assert any(
            i.template.name == "repeat-access" for i in second.instances
        )

    def test_alert_rate(self, engine):
        eng, sim = engine
        monitor = AccessMonitor(eng)
        assert monitor.alert_rate() == 0.0
        monitor.ingest("intruder", "p00001", EPOCH)
        assert monitor.alert_rate() == 1.0

    def test_ingest_many(self, engine):
        eng, _ = engine
        monitor = AccessMonitor(eng)
        out = monitor.ingest_many(
            [
                ("intruder", "p00001", EPOCH),
                ("intruder", "p00001", EPOCH + dt.timedelta(hours=1)),
            ]
        )
        assert len(out) == 2
        assert monitor.seen == 2

    def test_on_alert_registration(self, engine):
        eng, _ = engine
        monitor = AccessMonitor(eng)
        seen = []
        monitor.on_alert(seen.append)
        monitor.ingest("intruder", "p00001", EPOCH)
        assert len(seen) == 1

    def test_coverage_cache_invalidated(self, engine):
        eng, _ = engine
        monitor = AccessMonitor(eng)
        eng.coverage()  # warm the cache
        access = monitor.ingest("intruder", "p00001", EPOCH)
        assert access.lid in eng.unexplained_lids()
