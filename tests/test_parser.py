"""Tests for the SQL template parser (repro.db.parser)."""

import pytest

from repro.db import (
    AttrRef,
    Executor,
    Literal,
    QueryError,
    parse_query,
    template_from_sql,
)

TEMPLATE_A = """
SELECT L.Lid, L.Patient, L.User, A.Date
FROM Log L, Appointments A
WHERE L.Patient = A.Patient
  AND A.Doctor = L.User
"""

TEMPLATE_B = """
SELECT L.Lid
FROM Log L, Appointments A, Doctor_Info I1, Doctor_Info I2
WHERE L.Patient = A.Patient
  AND A.Doctor = I1.Doctor
  AND I1.Department = I2.Department
  AND I2.Doctor = L.User
"""

REPEAT = """
SELECT COUNT(DISTINCT L1.Lid)
FROM Log L1, Log L2
WHERE L1.Patient = L2.Patient AND L2.User = L1.User AND L1.Date > L2.Date
"""


class TestParseQuery:
    def test_template_a_shape(self):
        q = parse_query(TEMPLATE_A)
        assert [v.table for v in q.tuple_vars] == ["Log", "Appointments"]
        assert len(q.conditions) == 2
        assert q.projection[0] == AttrRef("L", "Lid")
        assert len(q.projection) == 4

    def test_count_distinct_form(self):
        q = parse_query(REPEAT)
        assert q.distinct
        assert q.projection == (AttrRef("L1", "Lid"),)

    def test_select_distinct(self):
        q = parse_query("SELECT DISTINCT L.Lid FROM Log L")
        assert q.distinct and not q.conditions

    def test_string_literal(self):
        q = parse_query(
            "SELECT L.Lid FROM Log L WHERE L.User = 'O''Hara'"
        )
        cond = q.conditions[0]
        assert isinstance(cond.right, Literal)
        assert cond.right.value == "O'Hara"

    def test_numeric_literals(self):
        q = parse_query(
            "SELECT L.Lid FROM Log L WHERE L.Lid >= 5 AND L.Score < 2.5"
        )
        assert q.conditions[0].right.value == 5
        assert q.conditions[1].right.value == 2.5

    def test_diamond_not_equal(self):
        q = parse_query("SELECT L.Lid FROM Log L WHERE L.Lid <> 3")
        assert q.conditions[0].op == "!="

    def test_case_insensitive_keywords(self):
        q = parse_query("select distinct L.Lid from Log L where L.Lid > 1")
        assert q.distinct and len(q.conditions) == 1

    def test_garbage_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT FROM WHERE")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT L.Lid FROM Log L ORDER BY L.Lid")

    def test_untokenizable_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT L.Lid FROM Log L WHERE L.Lid = @")

    def test_parse_executes_identically(self, fig3_db):
        direct = parse_query(TEMPLATE_B)
        ex = Executor(fig3_db)
        assert ex.distinct_values(direct) == {1, 2}


class TestTemplateFromSql:
    def test_template_a(self):
        t = template_from_sql(TEMPLATE_A)
        assert t.length == 2 and t.is_simple
        assert t.tables_referenced() == {"Log", "Appointments"}

    def test_template_b_chain_order_found(self):
        t = template_from_sql(TEMPLATE_B)
        assert t.length == 4
        assert t.path.validate() == []

    def test_chain_order_independent(self):
        shuffled = """
        SELECT L.Lid
        FROM Log L, Doctor_Info I2, Appointments A, Doctor_Info I1
        WHERE I2.Doctor = L.User
          AND I1.Department = I2.Department
          AND L.Patient = A.Patient
          AND A.Doctor = I1.Doctor
        """
        assert (
            template_from_sql(shuffled).signature()
            == template_from_sql(TEMPLATE_B).signature()
        )

    def test_decorations_extracted(self):
        t = template_from_sql(REPEAT)
        assert t.is_decorated and t.length == 2
        decoration = t.decorations[0]
        assert decoration.op == ">"

    def test_literal_decoration(self):
        t = template_from_sql(
            TEMPLATE_A + "  AND A.Date = 1"
        )
        assert t.is_decorated
        assert t.decorations[0].right == Literal(1)

    def test_roundtrip_signature(self, fig3_db):
        t = template_from_sql(TEMPLATE_B)
        again = template_from_sql(t.to_sql())
        assert again.signature() == t.signature()

    def test_executes_like_handwritten(self, fig3_db):
        t = template_from_sql(TEMPLATE_A)
        ex = Executor(fig3_db)
        assert ex.distinct_values(t.support_query()) == {1}

    def test_no_log_var_rejected(self):
        with pytest.raises(QueryError):
            template_from_sql(
                "SELECT A.Patient FROM Appointments A WHERE A.Doctor = A.Patient"
            )

    def test_broken_chain_rejected(self):
        with pytest.raises(QueryError):
            template_from_sql(
                """
                SELECT L.Lid FROM Log L, Appointments A
                WHERE L.Patient = A.Patient
                """
            )

    def test_disconnected_decoration_alias_rejected(self):
        with pytest.raises(QueryError):
            template_from_sql(
                """
                SELECT L.Lid FROM Log L, Appointments A, Visits V
                WHERE L.Patient = A.Patient AND A.Doctor = L.User
                  AND V.Patient = V.Doctor
                """
            )

    def test_custom_endpoints(self):
        sql = """
        SELECT L.Id FROM AuditLog L, Orders O
        WHERE L.Record = O.Record AND O.Clerk = L.Actor
        """
        t = template_from_sql(
            sql,
            log_table="AuditLog",
            start_attr="Record",
            end_attr="Actor",
            log_id_attr="Id",
        )
        assert t.length == 2
        assert t.path.log_table == "AuditLog"
