"""Differential tests: the vectorized hot path vs the per-row reference.

The executor's batch pipeline (``Executor(vectorized=True)``, the
default) and the table-level batch probes (``probe_many`` /
``lookup_many`` / ``projection_probe_many`` and the scalar-keyed
variants) replace per-row dict probes with C-level keys-view set
intersections, specialized filter comprehensions, and ``itemgetter``
projections.  Every one of those paths must stay **byte-identical** to
the original per-row implementations — same multisets of projected
rows, same probe dictionaries — across NULL join keys, mixed-type
columns, and post-ingest delta states, for every pipeline
configuration.  The rowwise legs run through the exact same public
entry points with ``vectorized=False``, so this suite is the
always-on proof that the toggle is a pure performance knob.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.db import (
    AttrRef,
    ColumnType,
    Condition,
    ConjunctiveQuery,
    Database,
    Executor,
    Literal,
    TableSchema,
    TupleVar,
)
from test_differential_executor import (
    CONFIGS,
    VALUE_DOMAIN,
    random_attr,
    random_database,
    random_query,
    reference_distinct_in,
    reference_evaluate,
)


def _mixed_db() -> Database:
    """INT and STR columns side by side, NULLs in both, join keys that
    collide across types only by accident (1 vs "1" must not join)."""
    db = Database("mixed")
    users = db.create_table(
        TableSchema.build(
            "Users",
            [("uid", ColumnType.INT), ("dept", ColumnType.STR)],
        )
    )
    visits = db.create_table(
        TableSchema.build(
            "Visits",
            [("uid", ColumnType.INT), ("ward", ColumnType.STR)],
        )
    )
    users.insert_many(
        [(1, "radiology"), (2, None), (None, "icu"), (3, "icu"), (1, "icu")]
    )
    visits.insert_many(
        [(1, "icu"), (2, "icu"), (None, "er"), (4, "er"), (1, None)]
    )
    return db


def _both_executors(db, distinct_reduction, pushdown, **kw):
    return (
        Executor(
            db,
            distinct_reduction=distinct_reduction,
            predicate_pushdown=pushdown,
            vectorized=True,
            **kw,
        ),
        Executor(
            db,
            distinct_reduction=distinct_reduction,
            predicate_pushdown=pushdown,
            vectorized=False,
            **kw,
        ),
    )


def assert_vectorized_matches(db, query, **executor_kw) -> None:
    """Vectorized == rowwise == brute-force reference, all four configs."""
    expected = Counter(reference_evaluate(db, query))
    for distinct_reduction, pushdown in CONFIGS:
        fast, slow = _both_executors(
            db, distinct_reduction, pushdown, **executor_kw
        )
        got_fast = Counter(fast.execute(query).rows)
        got_slow = Counter(slow.execute(query).rows)
        assert got_fast == got_slow, (
            f"vectorized != rowwise (distinct_reduction="
            f"{distinct_reduction}, pushdown={pushdown}) for:\n{query}"
        )
        assert got_fast == expected, (
            f"vectorized != reference (distinct_reduction="
            f"{distinct_reduction}, pushdown={pushdown}) for:\n{query}"
        )


# ----------------------------------------------------------------------
# executor pipeline: random sweep + delta states
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(12))
def test_random_queries_vectorized_matches_rowwise(seed):
    rng = random.Random(42_000 + seed)
    db = random_database(rng)
    for _ in range(8):
        assert_vectorized_matches(db, random_query(rng, db))


@pytest.mark.parametrize("seed", range(6))
def test_random_cartesian_vectorized_matches_rowwise(seed):
    rng = random.Random(43_000 + seed)
    db = random_database(rng)
    for _ in range(4):
        assert_vectorized_matches(
            db, random_query(rng, db, connected=False), allow_cartesian=True
        )


@pytest.mark.parametrize("seed", range(6))
def test_post_ingest_delta_states_stay_identical(seed):
    """Warm every cache with a query, ingest more rows (delta
    maintenance patches indexes in place), re-run: both paths must see
    the new rows and still agree with a from-scratch reference."""
    rng = random.Random(44_000 + seed)
    db = random_database(rng)
    queries = [random_query(rng, db) for _ in range(4)]
    for query in queries:  # warm the caches pre-ingest
        assert_vectorized_matches(db, query)
    for name in db.table_names():
        table = db.table(name)
        width = len(table.schema.columns)
        for _ in range(rng.randrange(1, 5)):
            table.insert([rng.choice(VALUE_DOMAIN) for _ in range(width)])
    for query in queries:  # same queries over the delta-maintained caches
        assert_vectorized_matches(db, query)


def test_mixed_type_columns_vectorized_matches_rowwise():
    db = _mixed_db()
    tvars = [TupleVar("U", "Users"), TupleVar("V", "Visits")]
    queries = [
        ConjunctiveQuery.build(
            tvars,
            [Condition(AttrRef("U", "uid"), "=", AttrRef("V", "uid"))],
            [AttrRef("U", "dept"), AttrRef("V", "ward")],
            distinct=distinct,
        )
        for distinct in (True, False)
    ] + [
        ConjunctiveQuery.build(
            tvars,
            [
                Condition(AttrRef("U", "dept"), "=", AttrRef("V", "ward")),
                Condition(AttrRef("V", "ward"), "=", Literal("icu")),
            ],
            [AttrRef("U", "uid"), AttrRef("V", "uid")],
            distinct=True,
        )
    ]
    for query in queries:
        assert_vectorized_matches(db, query)


@pytest.mark.parametrize("seed", range(6))
def test_batch_semijoin_vectorized_matches_rowwise(seed):
    """distinct_values_in: the explain_batch primitive, both paths."""
    rng = random.Random(45_000 + seed)
    db = random_database(rng)
    for _ in range(6):
        query = random_query(rng, db)
        attr = query.projection[0]
        in_attr = random_attr(rng, list(query.tuple_vars), db)
        values = {
            rng.choice(VALUE_DOMAIN + [7]) for _ in range(rng.randrange(0, 6))
        }
        expected = reference_distinct_in(db, query, attr, in_attr, values)
        for distinct_reduction, pushdown in CONFIGS:
            fast, slow = _both_executors(db, distinct_reduction, pushdown)
            got_fast = fast.distinct_values_in(query, attr, in_attr, values)
            got_slow = slow.distinct_values_in(query, attr, in_attr, values)
            assert got_fast == got_slow == expected, (
                f"batch semijoin mismatch (distinct_reduction="
                f"{distinct_reduction}, pushdown={pushdown}) for:\n{query}"
            )


# ----------------------------------------------------------------------
# table-level batch probes
# ----------------------------------------------------------------------
class TestProbeMany:
    def _table(self):
        db = _mixed_db()
        return db.table("Visits")

    def test_matches_per_value_loop_with_nulls(self):
        table = self._table()
        for values in ([1, None, 4, 99], {1, None, 4, 99}, [], [None]):
            fast = table.probe_many("uid", values, vectorized=True)
            slow = table.probe_many("uid", values, vectorized=False)
            assert fast == slow
            assert None not in fast

    def test_null_probe_never_matches_null_rows(self):
        table = self._table()
        # the index has a NULL bucket (row 2); the probe must not see it
        assert None in table.index_for("uid")
        assert table.probe_many("uid", [None, 1]) == {
            1: table.index_for("uid")[1]
        }

    def test_duplicate_probe_values_collapse(self):
        table = self._table()
        assert table.probe_many("uid", [1, 1, 2, 1]) == table.probe_many(
            "uid", {1, 2}
        )

    def test_lookup_many_matches_rowwise(self):
        table = self._table()
        values = [1, None, 2, 8]
        fast = Counter(table.lookup_many("uid", values, vectorized=True))
        slow = Counter(table.lookup_many("uid", values, vectorized=False))
        assert fast == slow
        assert fast  # non-vacuous: uid 1 matches two rows

    def test_probe_after_ingest_sees_delta(self):
        table = self._table()
        before = table.probe_many("uid", [77])
        assert before == {}
        table.insert((77, "icu"))
        fast = table.probe_many("uid", [77], vectorized=True)
        slow = table.probe_many("uid", [77], vectorized=False)
        assert fast == slow == {77: [len(table.rows()) - 1]}


class TestProjectionProbes:
    def _table(self):
        return _mixed_db().table("Visits")

    def test_tuple_keys_match_rowwise(self):
        table = self._table()
        keys = [(1,), (None,), (4,), (123,)]
        fast = table.projection_probe_many(
            ("uid", "ward"), ("uid",), keys, vectorized=True
        )
        slow = table.projection_probe_many(
            ("uid", "ward"), ("uid",), keys, vectorized=False
        )
        assert fast == slow
        assert (None,) not in fast
        assert fast  # non-vacuous: uid 1 and 4 match

    def test_scalar_probe_matches_tuple_probe(self):
        table = self._table()
        values = {1, 2, None, 123}
        scalar = table.projection_probe_scalar(("uid", "ward"), "uid", values)
        tupled = table.projection_probe_many(
            ("uid", "ward"), ("uid",), {(v,) for v in values}
        )
        assert {(k,): v for k, v in scalar.items()} == tupled
        assert None not in scalar

    def test_scalar_index_is_delta_maintained(self):
        table = self._table()
        warm = table.projection_probe_scalar(("uid", "ward"), "uid", {1})
        assert set(warm) == {1}
        assert set(warm[1]) == {(1, "icu"), (1, None)}
        table.insert((1, "er"))
        table.insert((None, "morgue"))  # NULL key: must not enter the index
        after = table.projection_probe_scalar(
            ("uid", "ward"), "uid", {1, None}
        )
        assert set(after) == {1}
        assert after[1][-1] == (1, "er")  # the delta appends in place
        assert set(after[1]) == {(1, "icu"), (1, None), (1, "er")}


class TestIntColumnArray:
    def test_int_column_with_null_has_no_mirror(self):
        table = _mixed_db().table("Users")
        assert table.int_column_array("uid") is None  # NULL in column
        assert table.int_column_array("dept") is None  # STR column

    def test_mirror_tracks_ingest_and_tombstones_on_null(self):
        db = Database("ints")
        table = db.create_table(
            TableSchema.build("T", [("a", ColumnType.INT)])
        )
        table.insert_many([(1,), (2,)])
        mirror = table.int_column_array("a")
        assert list(mirror) == [1, 2]
        table.insert((3,))
        assert list(table.int_column_array("a")) == [1, 2, 3]
        table.insert((None,))  # NULL kills the typed mirror for good
        assert table.int_column_array("a") is None
        assert table.column_array("a") == [1, 2, 3, None]

    def test_overflow_tombstones_mirror(self):
        db = Database("ints")
        table = db.create_table(
            TableSchema.build("T", [("a", ColumnType.INT)])
        )
        table.insert((1,))
        assert list(table.int_column_array("a")) == [1]
        table.insert((2**80,))  # does not fit array('q')
        assert table.int_column_array("a") is None
        assert table.column_array("a") == [1, 2**80]
