"""Property tests for the set-at-a-time (batch semijoin) engine path.

The contract under test: ``ExplanationEngine.explain_batch`` — one
semijoin per template — partitions a set of accesses exactly as the
per-access/point machinery would, on arbitrary interleavings of appends;
``notify_appended_many``'s semijoin strategy computes the same delta as
the per-row point strategy; and the plan cache never re-plans a repeated
template shape while staying correct as tables grow underneath a cached
plan.
"""

from __future__ import annotations

import random

import pytest

from repro.audit import AccessMonitor
from repro.audit.handcrafted import (
    event_group_template,
    event_user_template,
    repeat_access_template,
)
from repro.core import ExplanationEngine
from repro.core.engine import BatchExplanation
from repro.db import ColumnType, Database, TableSchema
from repro.db.optimizer import PlanCache

USERS = ["Dave", "Nick", "Ron", "Eve", "Sam", "Zed"]
PATIENTS = ["Alice", "Bob", "Carol"]


def _hospital() -> Database:
    db = Database("hospital")
    log = db.create_table(
        TableSchema.build(
            "Log",
            [("Lid", ColumnType.INT), ("Date", ColumnType.INT), "User", "Patient"],
            primary_key=["Lid"],
        )
    )
    appts = db.create_table(
        TableSchema.build(
            "Appointments", ["Patient", "Doctor", ("Date", ColumnType.INT)]
        )
    )
    groups = db.create_table(
        TableSchema.build(
            "Groups",
            [("Group_Depth", ColumnType.INT), ("Group_id", ColumnType.INT), "User"],
        )
    )
    log.insert_many(
        [
            (100, 1, "Nick", "Alice"),
            (116, 2, "Dave", "Alice"),
            (130, 9, "Dave", "Alice"),
            (900, 4, "Eve", "Bob"),
        ]
    )
    appts.insert_many([("Alice", "Dave", 1), ("Bob", "Sam", 2)])
    groups.insert_many(
        [(1, 10, "Dave"), (1, 10, "Nick"), (1, 10, "Ron"), (1, 11, "Sam")]
    )
    return db


def _templates(db: Database):
    from repro.core import SchemaGraph

    graph = SchemaGraph(db)
    graph.allow_self_join("Groups", "Group_id")
    graph.allow_self_join("Log", "Patient")
    graph.allow_self_join("Log", "User")
    return [
        event_user_template(graph, "Appointments", "Doctor"),
        event_group_template(graph, "Appointments", "Doctor"),
        repeat_access_template(graph),
    ]


def _engine(db: Database, **kw) -> ExplanationEngine:
    return ExplanationEngine(db, _templates(db), **kw)


def _random_appends(rng: random.Random, db: Database, n: int) -> list[int]:
    lids = []
    next_lid = 1000
    for _ in range(n):
        row = (next_lid, rng.randrange(0, 20), rng.choice(USERS), rng.choice(PATIENTS))
        db.table("Log").insert(row)
        lids.append(next_lid)
        next_lid += rng.choice([1, 1, 2, 7])
    return lids


# ----------------------------------------------------------------------
# explain_batch == the sequential notify_appended path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(10))
def test_explain_batch_equals_sequential_notify(seed):
    """Appends maintained one-by-one vs one cold batch partition."""
    rng = random.Random(9000 + seed)
    db = _hospital()
    sequential = _engine(db)
    if rng.random() < 0.5:
        sequential.coverage()  # warm aggregates up front on some runs
    appended = []
    for _ in range(rng.randrange(3, 20)):
        appended += _random_appends(rng, db, 1)
        sequential.notify_appended(appended[-1])
        if rng.random() < 0.3:
            sequential.unexplained_lids()  # mid-stream reads
    batch_engine = _engine(db)  # cold: sees only the final log
    result = batch_engine.explain_batch(appended)
    explained = set(appended) & sequential.all_explained_lids()
    assert set(result.explained) == explained
    assert set(result.unexplained) == set(appended) - explained
    # and the whole-log partition agrees with the sequential aggregates
    whole = batch_engine.explain_all()
    assert set(whole.explained) == sequential.all_explained_lids()
    assert set(whole.unexplained) == sequential.unexplained_lids()


@pytest.mark.parametrize("seed", range(8))
def test_semijoin_delta_equals_point_delta(seed):
    """notify_appended_many: semijoin and point strategies, same delta."""
    rng = random.Random(9500 + seed)
    db_a, db_b = _hospital(), _hospital()
    point = _engine(db_a)
    semi = _engine(db_b)
    point.unexplained_lids()
    semi.unexplained_lids()
    batch_a = _random_appends(rng, db_a, rng.randrange(1, 12))
    batch_b = list(batch_a)
    for _lid, row in zip(batch_b, db_a.table("Log").rows()[-len(batch_a):]):
        db_b.table("Log").insert(row)
    newly_point = point.notify_appended_many(batch_a, use_semijoin=False)
    newly_semi = semi.notify_appended_many(batch_b, use_semijoin=True)
    assert newly_point == newly_semi
    assert point.all_explained_lids() == semi.all_explained_lids()
    assert point.unexplained_lids() == semi.unexplained_lids()
    fresh = _engine(db_a)
    assert point.all_explained_lids() == fresh.all_explained_lids()


def test_semijoin_delta_retro_explains_older_access():
    """A back-dated batch retro-explains older rows via the self-join."""
    db = _hospital()
    engine = _engine(db)
    engine.unexplained_lids()
    db.table("Log").insert((1500, 10, "Zed", "Carol"))
    engine.notify_appended(1500)
    assert 1500 in engine.unexplained_lids()
    # a big batch containing Zed's *earlier* access (out-of-order arrival)
    batch = []
    for i in range(10):
        lid = 1600 + i
        db.table("Log").insert((lid, 5, "Zed", "Carol"))
        batch.append(lid)
    newly = engine.notify_appended_many(batch, use_semijoin=True)
    assert 1500 in newly
    assert 1500 in engine.all_explained_lids()
    fresh = _engine(db)
    assert engine.all_explained_lids() == fresh.all_explained_lids()
    assert engine.unexplained_lids() == fresh.unexplained_lids()


def test_notify_auto_strategy_thresholds():
    """use_semijoin=None routes small batches to point, large to semijoin."""
    from repro.core.engine import SEMIJOIN_BATCH_MIN

    db = _hospital()
    engine = _engine(db)
    engine.unexplained_lids()
    small = _random_appends(random.Random(1), db, SEMIJOIN_BATCH_MIN - 1)
    before = engine.executor.queries_executed
    engine.notify_appended_many(small)
    point_queries = engine.executor.queries_executed - before
    large = _random_appends(random.Random(2), db, SEMIJOIN_BATCH_MIN)
    before = engine.executor.queries_executed
    engine.notify_appended_many(large)
    semijoin_queries = engine.executor.queries_executed - before
    # the semijoin pass is O(templates × log-vars), flat in batch size
    assert semijoin_queries <= 2 * len(engine.templates)
    assert point_queries >= len(small)  # point path scales with the batch


# ----------------------------------------------------------------------
# explain_batch / explain_all surface
# ----------------------------------------------------------------------
def test_explain_batch_empty_and_unknown_ids():
    engine = _engine(_hospital())
    empty = engine.explain_batch([])
    assert empty.explained == frozenset() and empty.unexplained == frozenset()
    assert empty.coverage == 0.0
    result = engine.explain_batch([116, 424242, None])
    assert 116 in result.explained  # Dave has an appointment with Alice
    assert 424242 in result.unexplained  # not in the log at all
    assert None in result.unexplained  # NULL ids never match
    assert result.is_explained(116) and not result.is_explained(424242)


def test_explain_batch_partition_tiles_batch():
    engine = _engine(_hospital())
    batch = [100, 116, 130, 900]
    result = engine.explain_batch(batch)
    assert result.explained | result.unexplained == set(batch)
    assert not result.explained & result.unexplained
    assert len(result) == len(batch)
    assert result.coverage == pytest.approx(len(result.explained) / len(batch))


def test_batch_and_point_engine_paths_agree():
    """use_batch_path True/False (the CLI toggle) yield identical state."""
    db = _hospital()
    batch_engine = _engine(db, use_batch_path=True)
    point_engine = _engine(db, use_batch_path=False)
    assert batch_engine.all_explained_lids() == point_engine.all_explained_lids()
    assert batch_engine.unexplained_lids() == point_engine.unexplained_lids()
    assert batch_engine.coverage() == pytest.approx(point_engine.coverage())


def test_explain_all_warms_per_template_caches():
    """A whole-log batch IS each template's full explained set."""
    engine = _engine(_hospital())
    engine.explain_all()
    for template in engine.templates:
        if engine._sig(template) in engine._lid_cache:
            fresh = _engine(engine.db)
            assert engine._lid_cache[engine._sig(template)] == (
                fresh.explained_lids(fresh.templates[engine.templates.index(template)])
            )


def test_batch_explanation_is_frozen():
    result = BatchExplanation(frozenset([1]), frozenset([2]))
    with pytest.raises(AttributeError):
        result.explained = frozenset()


# ----------------------------------------------------------------------
# monitor routing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("batch_mode", [None, True, False])
def test_monitor_batch_modes_match_one_by_one(batch_mode):
    db_a, db_b = _hospital(), _hospital()
    one = AccessMonitor(_engine(db_a))
    many = AccessMonitor(_engine(db_b), batch=batch_mode)
    stream = [
        ("Zed", "Carol", 30),
        ("Dave", "Alice", 31),
        ("Zed", "Carol", 32),  # repeat of the first streamed access
        ("Ron", "Alice", 33),  # Ron is in Dave's group
        ("Eve", "Carol", 34),
        ("Nick", "Bob", 35),
        ("Sam", "Bob", 36),
        ("Eve", "Carol", 37),
        ("Zed", "Bob", 38),
    ]
    singles = [one.ingest(u, p, d) for u, p, d in stream]
    batched = many.ingest_many(stream)
    assert [a.lid for a in batched] == [a.lid for a in singles]
    assert [a.suspicious for a in batched] == [a.suspicious for a in singles]
    assert many.alerts == one.alerts
    assert many.engine.unexplained_lids() == one.engine.unexplained_lids()


# ----------------------------------------------------------------------
# plan cache behavior
# ----------------------------------------------------------------------
def test_repeated_template_evaluation_never_replans():
    db = _hospital()
    cache = PlanCache()
    engine = _engine(db)
    engine.executor.plan_cache = cache
    engine.coverage()
    misses_after_warm = cache.misses
    # stream maintenance + per-access explanation: shapes repeat, plans don't
    for i in range(15):
        db.table("Log").insert((5000 + i, 12, "Zed", "Carol"))
        engine.notify_appended(5000 + i)
        engine.explain(5000 + i)
    # first streamed access introduces the point/delta shapes once
    assert cache.misses - misses_after_warm <= 4 * len(engine.templates)
    frozen = cache.misses
    for i in range(15):
        db.table("Log").insert((6000 + i, 13, "Zed", "Bob"))
        engine.notify_appended(6000 + i)
        engine.explain(6000 + i)
    assert cache.misses == frozen, "steady state must be 100% plan-cache hits"
    assert cache.hits > 0


def test_stale_plans_stay_correct_as_tables_grow():
    """A plan cached on a tiny table keeps giving exact results later."""
    db = _hospital()
    cache = PlanCache()
    engine = _engine(db)
    engine.executor.plan_cache = cache
    before = engine.explain_all()
    assert 900 in before.unexplained
    # grow every table under the cached plans
    db.table("Appointments").insert(("Carol", "Zed", 9))
    for i in range(50):
        db.table("Log").insert((7000 + i, i % 20, "Zed", "Carol"))
    engine.invalidate_cache()  # engine caches, NOT the plan cache
    misses = cache.misses
    after = engine.explain_all()
    assert cache.misses == misses, "regrown tables must not force re-planning"
    fresh = _engine(db)  # fresh engine, fresh (shared) plans
    assert set(after.explained) == fresh.all_explained_lids()
    assert set(after.unexplained) == fresh.unexplained_lids()


def test_plan_cache_eviction_and_stats():
    cache = PlanCache(max_size=2)
    engine = ExplanationEngine(_hospital())
    engine.executor.plan_cache = cache
    engine.all_lids()
    templates = _templates(engine.db)
    for t in templates:
        engine.add_template(t)
    engine.coverage()
    assert len(cache) <= 2
    stats = cache.stats()
    assert stats["misses"] >= 3
    cache.clear()
    assert len(cache) == 0 and cache.stats()["hits"] == 0
