"""The paper's hand-crafted explanation template library (Section 5.3.1).

Builders for every template family the evaluation uses:

* ``event_user_template`` — length-2 "X w/Dr."-style templates: the
  patient has an event row referencing the accessing user directly
  (Appt w/Dr., Visit w/Dr., Doc. w/Dr., and the data set B analogues);
* ``repeat_access_template`` — the decorated self-join template
  ("the same user previously accessed the data", Definition 3's example);
* ``event_group_template`` — Example 4.2: the event references a member
  of the accessing user's collaborative group, optionally restricted to
  one hierarchy depth (the Figure 12 sweep);
* ``event_same_department_template`` — template (B) of Example 2.1: the
  event references a user sharing the accessor's department code.

All builders need only a :class:`~repro.core.graph.SchemaGraph` for the
log endpoints; edges are constructed directly, so hand-crafted templates
exist independently of what the mining edge set permits.
"""

from __future__ import annotations

from ..core.edges import EdgeKind, SchemaAttr, SchemaEdge
from ..core.graph import SchemaGraph
from ..core.path import Path
from ..core.template import ExplanationTemplate
from ..db.query import AttrRef, Condition, Literal
from ..ehr.schema import DATASET_A, USER_COLUMNS
from .nl import TABLE_PHRASES


def _admin(t1: str, a1: str, t2: str, a2: str) -> SchemaEdge:
    return SchemaEdge(SchemaAttr(t1, a1), SchemaAttr(t2, a2), EdgeKind.ADMIN)


def _self(t: str, a: str) -> SchemaEdge:
    return SchemaEdge(SchemaAttr(t, a), SchemaAttr(t, a), EdgeKind.SELF_JOIN)


def event_user_template(
    graph: SchemaGraph, event_table: str, user_col: str
) -> ExplanationTemplate:
    """Length-2: the patient has an ``event_table`` row whose ``user_col``
    is the accessing user (e.g. *Appt w/Dr.*)."""
    path = Path.forward_seed(
        graph, _admin(graph.log_table, graph.start.attr, event_table, "Patient")
    ).extend_forward(_admin(event_table, user_col, graph.log_table, graph.end.attr))
    phrase = TABLE_PHRASES.get(event_table, f"a {event_table} record exists")
    description = (
        "[L.User] accessed [L.Patient]'s record because "
        + phrase.format(a=f"{event_table}_1")
        + "."
    )
    return ExplanationTemplate(
        path=path,
        description=description,
        name=f"{event_table.lower()}-{user_col.lower()}",
    )


def repeat_access_template(graph: SchemaGraph) -> ExplanationTemplate:
    """Decorated repeat-access template: same user, same patient, strictly
    earlier timestamp (paper Section 2.1, explanation (C))."""
    path = Path.forward_seed(
        graph, _self(graph.log_table, graph.start.attr)
    ).extend_forward(_self(graph.log_table, graph.end.attr))
    prior_alias = path.alias_of(1)
    decoration = Condition(
        AttrRef("L", "Date"), ">", AttrRef(prior_alias, "Date")
    )
    return ExplanationTemplate(
        path=path,
        decorations=(decoration,),
        description=(
            "[L.User] accessed [L.Patient]'s record because [L.User] "
            f"previously accessed it on [{prior_alias}.Date]."
        ),
        name="repeat-access",
    )


def event_group_template(
    graph: SchemaGraph,
    event_table: str,
    user_col: str,
    depth: int | None = None,
    groups_table: str = "Groups",
) -> ExplanationTemplate:
    """Length-4 collaborative-group template (paper Example 4.2): the
    event references a user who shares a group with the accessor.

    With ``depth`` given, the template is decorated with
    ``Group_Depth = depth`` — the knob swept in Figure 12.
    """
    path = (
        Path.forward_seed(
            graph, _admin(graph.log_table, graph.start.attr, event_table, "Patient")
        )
        .extend_forward(_admin(event_table, user_col, groups_table, "User"))
        .extend_forward(_self(groups_table, "Group_id"))
        .extend_forward(_admin(groups_table, "User", graph.log_table, graph.end.attr))
    )
    g1 = path.alias_of(2)
    decorations = ()
    name = f"{event_table.lower()}-{user_col.lower()}-group"
    if depth is not None:
        decorations = (
            Condition(AttrRef(g1, "Group_Depth"), "=", Literal(depth)),
        )
        name += f"-d{depth}"
    phrase = TABLE_PHRASES.get(event_table, f"a {event_table} record exists")
    description = (
        "[L.User] accessed [L.Patient]'s record because "
        + phrase.format(a=f"{event_table}_1")
        + f", and [L.User] works with [{g1}.User]."
    )
    return ExplanationTemplate(
        path=path, decorations=decorations, description=description, name=name
    )


def event_same_department_template(
    graph: SchemaGraph,
    event_table: str,
    user_col: str,
    users_table: str = "Users",
) -> ExplanationTemplate:
    """Length-4 department-code template (Example 2.1's template (B)): the
    event references a user with the accessor's department code."""
    path = (
        Path.forward_seed(
            graph, _admin(graph.log_table, graph.start.attr, event_table, "Patient")
        )
        .extend_forward(_admin(event_table, user_col, users_table, "User"))
        .extend_forward(_self(users_table, "Department"))
        .extend_forward(_admin(users_table, "User", graph.log_table, graph.end.attr))
    )
    u1 = path.alias_of(2)
    phrase = TABLE_PHRASES.get(event_table, f"a {event_table} record exists")
    description = (
        "[L.User] accessed [L.Patient]'s record because "
        + phrase.format(a=f"{event_table}_1")
        + f", and [L.User] and [{u1}.User] work in the "
        + f"[{u1}.Department] department."
    )
    return ExplanationTemplate(
        path=path,
        description=description,
        name=f"{event_table.lower()}-{user_col.lower()}-samedept",
    )


# ----------------------------------------------------------------------
# convenience bundles used by the experiments
# ----------------------------------------------------------------------
def dataset_a_doctor_templates(graph: SchemaGraph) -> list[ExplanationTemplate]:
    """Appt w/Dr., Visit w/Dr., Doc. w/Dr. — the Figure 7/9 hand set."""
    return [
        event_user_template(graph, "Appointments", "Doctor"),
        event_user_template(graph, "Visits", "Doctor"),
        event_user_template(graph, "Documents", "Author"),
    ]


def all_event_user_templates(graph: SchemaGraph) -> list[ExplanationTemplate]:
    """One length-2 template per (event table, user column) — data sets
    A and B combined."""
    return [
        event_user_template(graph, table, col)
        for table, col in USER_COLUMNS
        if table != graph.log_table and graph.db.has_table(table)
    ]


def group_templates(
    graph: SchemaGraph,
    depth: int | None = None,
    tables: tuple[str, ...] = DATASET_A,
) -> list[ExplanationTemplate]:
    """Group templates for the data set A events (the Figure 12 set)."""
    cols = {t: c for t, c in USER_COLUMNS}
    return [
        event_group_template(graph, table, cols[table], depth=depth)
        for table in tables
        if graph.db.has_table(table)
    ]


def same_department_templates(
    graph: SchemaGraph, tables: tuple[str, ...] = DATASET_A
) -> list[ExplanationTemplate]:
    """Same-department templates for the data set A events (Fig 12's baseline)."""
    cols = {t: c for t, c in USER_COLUMNS}
    return [
        event_same_department_template(graph, table, cols[table])
        for table in tables
        if graph.db.has_table(table)
    ]
