"""The user-centric auditing portal (paper Section 1, Example 1.1).

"Construct a portal where individual patients can login and view a list
of all accesses to their medical records ... if Alice clicks on a log
record, she should be presented with a short snippet of text."

Since the ``repro.api`` redesign this class is a thin adapter: the report
logic lives in :meth:`repro.api.AuditService.patient_report`, and
:class:`PatientPortal` remains as the engine-based compatibility surface
(new code should call the service directly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.engine import ExplanationEngine


@dataclass(frozen=True)
class AccessReportEntry:
    """One row of a patient's access report."""

    lid: Any
    date: Any
    user: Any
    explanations: tuple[str, ...]  # ranked natural-language snippets

    @property
    def suspicious(self) -> bool:
        """Unexplained accesses are candidates for a compliance inquiry."""
        return not self.explanations

    def headline(self) -> str:
        """The top-ranked explanation, or the report-this-access prompt."""
        if self.explanations:
            return self.explanations[0]
        return "No explanation found — you may report this access."


class PatientPortal:
    """Explains every access to one patient's record (adapter over
    :class:`repro.api.AuditService`)."""

    def __init__(self, engine: ExplanationEngine) -> None:
        from ..api.service import AuditService  # lazy: avoids import cycle

        self.engine = engine
        self._service = AuditService.from_engine(engine)

    def accesses_of(self, patient: Any) -> list[tuple]:
        """Raw log rows touching ``patient``, in time order."""
        log = self.engine.db.table(self.engine.log_table)
        date_i = log.schema.column_index("Date")
        lid_i = log.schema.column_index("Lid")
        rows = log.lookup("Patient", patient)
        return sorted(rows, key=lambda r: (r[date_i], r[lid_i]))

    def access_report(self, patient: Any) -> list[AccessReportEntry]:
        """The full report: one entry per access, each with ranked
        explanations (ascending path length, paper Section 2.1)."""
        report = self._service.patient_report(patient)
        return [
            AccessReportEntry(
                lid=entry.lid,
                date=entry.date,
                user=entry.user,
                explanations=entry.explanations,
            )
            for entry in report.entries
        ]

    def render(self, patient: Any, limit: int | None = None) -> str:
        """Plain-text report, one access per block (the portal screen)."""
        return self._service.render_patient_report(patient, limit=limit)
