"""The user-centric auditing portal (paper Section 1, Example 1.1).

"Construct a portal where individual patients can login and view a list
of all accesses to their medical records ... if Alice clicks on a log
record, she should be presented with a short snippet of text."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.engine import ExplanationEngine


@dataclass(frozen=True)
class AccessReportEntry:
    """One row of a patient's access report."""

    lid: Any
    date: Any
    user: Any
    explanations: tuple[str, ...]  # ranked natural-language snippets

    @property
    def suspicious(self) -> bool:
        """Unexplained accesses are candidates for a compliance inquiry."""
        return not self.explanations

    def headline(self) -> str:
        """The top-ranked explanation, or the report-this-access prompt."""
        if self.explanations:
            return self.explanations[0]
        return "No explanation found — you may report this access."


class PatientPortal:
    """Explains every access to one patient's record."""

    def __init__(self, engine: ExplanationEngine) -> None:
        self.engine = engine

    def accesses_of(self, patient: Any) -> list[tuple]:
        """Raw log rows touching ``patient``, in time order."""
        log = self.engine.db.table(self.engine.log_table)
        date_i = log.schema.column_index("Date")
        lid_i = log.schema.column_index("Lid")
        rows = log.lookup("Patient", patient)
        return sorted(rows, key=lambda r: (r[date_i], r[lid_i]))

    def access_report(self, patient: Any) -> list[AccessReportEntry]:
        """The full report: one entry per access, each with ranked
        explanations (ascending path length, paper Section 2.1)."""
        log = self.engine.db.table(self.engine.log_table)
        lid_i = log.schema.column_index("Lid")
        date_i = log.schema.column_index("Date")
        user_i = log.schema.column_index("User")
        entries = []
        for row in self.accesses_of(patient):
            instances = self.engine.explain(row[lid_i])
            entries.append(
                AccessReportEntry(
                    lid=row[lid_i],
                    date=row[date_i],
                    user=row[user_i],
                    explanations=tuple(inst.render() for inst in instances),
                )
            )
        return entries

    def render(self, patient: Any, limit: int | None = None) -> str:
        """Plain-text report, one access per block (the portal screen)."""
        entries = self.access_report(patient)
        if limit is not None:
            entries = entries[:limit]
        lines = [f"Access report for patient {patient}:"]
        if not entries:
            lines.append("  (no accesses recorded)")
        for entry in entries:
            flag = "  [!] " if entry.suspicious else "      "
            lines.append(
                f"{flag}{entry.lid}  {entry.date}  by {entry.user}"
            )
            lines.append(f"        {entry.headline()}")
        return "\n".join(lines)
