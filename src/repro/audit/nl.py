"""Natural-language rendering for CareWeb-shaped explanation templates.

The paper converts instances to text through per-template parameterized
description strings ("[L.Patient] had an appointment with [L.User] on
[A.Date]").  Hand-crafted templates carry curated strings; for *mined*
templates this module assembles a description automatically from per-table
phrase fragments, so the patient portal can narrate any template the miner
discovers over the CareWeb schema.
"""

from __future__ import annotations

from ..core.path import Path
from ..core.template import ExplanationTemplate

#: Per-table phrase fragments; ``{a}`` is replaced by the tuple-variable
#: alias.  Each fragment reads as one clause of the explanation.
TABLE_PHRASES: dict[str, str] = {
    "Appointments": (
        "[{a}.Patient] had an appointment with [{a}.Doctor] on [{a}.Date]"
    ),
    "Visits": "[{a}.Patient] had a visit with [{a}.Doctor] on [{a}.Date]",
    "Documents": (
        "[{a}.Author] produced a document for [{a}.Patient] on [{a}.Date]"
    ),
    "Labs": (
        "[{a}.Requester] ordered labs for [{a}.Patient], performed by "
        "[{a}.Performer]"
    ),
    "Medications": (
        "[{a}.Requester] ordered medication for [{a}.Patient], signed by "
        "[{a}.Signer] and administered by [{a}.Administrator]"
    ),
    "Radiology": (
        "[{a}.Requester] ordered imaging for [{a}.Patient], read by "
        "[{a}.Radiologist]"
    ),
    "Users": "[{a}.User] works in the [{a}.Department] department",
    "Groups": "[{a}.User] belongs to collaborative group [{a}.Group_id]",
    "Log": "[{a}.User] accessed [{a}.Patient]'s record on [{a}.Date]",
}


def describe_careweb_path(path: Path) -> str:
    """A readable description string for any path over the CareWeb schema.

    One clause per non-log tuple variable, joined in traversal order;
    unknown tables fall back to a neutral linking clause.
    """
    clauses: list[str] = []
    seen_vars: set[int] = set()
    for step in path.steps:
        for var in (step.src_var, step.dst_var):
            if var == 0 or var in seen_vars:
                continue
            seen_vars.add(var)
            table = path.var_tables[var]
            alias = path.alias_of(var)
            phrase = TABLE_PHRASES.get(table)
            if phrase is None:
                phrase = f"a {table} record links the access"
            clauses.append(phrase.format(a=alias))
    if not clauses:  # pure log self-join (repeat access)
        clauses.append("[L.User] previously accessed [L.Patient]'s record")
    return (
        "[L.User] accessed [L.Patient]'s record because "
        + ", and ".join(clauses)
        + "."
    )


def with_careweb_description(template: ExplanationTemplate) -> ExplanationTemplate:
    """A copy of ``template`` with an auto-generated CareWeb description
    (no-op when a curated description is already present)."""
    if template.description is not None:
        return template
    return ExplanationTemplate(
        path=template.path,
        decorations=template.decorations,
        description=describe_careweb_path(template.path),
        name=template.name,
        log_id_attr=template.log_id_attr,
    )
