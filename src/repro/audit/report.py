"""Compliance-office tooling: the misuse-detection application.

Paper Section 1: "if we are able to automatically construct explanations
for why accesses occurred, we can conceivably use this information to
reduce the set of accesses that must be examined to those that are
unexplained."  This module turns the engine's unexplained set into the
artifacts a compliance office works from: a triage queue, per-user risk
counts, and a coverage summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.engine import ExplanationEngine


@dataclass(frozen=True)
class UnexplainedAccess:
    """One unexplained access awaiting compliance review."""
    lid: Any
    date: Any
    user: Any
    patient: Any


class ComplianceAuditor:
    """Summarizes what the explanation engine could *not* explain."""

    def __init__(self, engine: ExplanationEngine) -> None:
        self.engine = engine

    def queue(self) -> list[UnexplainedAccess]:
        """Unexplained accesses, oldest first — the manual-review queue."""
        log = self.engine.db.table(self.engine.log_table)
        schema = log.schema
        lid_i = schema.column_index("Lid")
        date_i = schema.column_index("Date")
        user_i = schema.column_index("User")
        patient_i = schema.column_index("Patient")
        unexplained = self.engine.unexplained_lids()
        rows = [row for row in log.rows() if row[lid_i] in unexplained]
        rows.sort(key=lambda r: (r[date_i], r[lid_i]))
        return [
            UnexplainedAccess(
                lid=r[lid_i], date=r[date_i], user=r[user_i], patient=r[patient_i]
            )
            for r in rows
        ]

    def user_risk_ranking(self) -> list[tuple[Any, int]]:
        """Users by number of unexplained accesses, descending — the
        paper's observation that isolated bad accesses (not anomalous
        users) are the target makes this a triage aid, not a verdict."""
        counts: dict[Any, int] = {}
        for entry in self.queue():
            counts[entry.user] = counts.get(entry.user, 0) + 1
        return sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))

    def summary(self) -> str:
        """One-line coverage summary for the compliance dashboard."""
        total = len(self.engine.all_lids())
        unexplained = len(self.engine.unexplained_lids())
        coverage = self.engine.coverage()
        return (
            f"{total} accesses; {total - unexplained} explained "
            f"({coverage:.1%}); {unexplained} in the review queue"
        )
