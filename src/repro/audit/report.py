"""Compliance-office tooling: the misuse-detection application.

Paper Section 1: "if we are able to automatically construct explanations
for why accesses occurred, we can conceivably use this information to
reduce the set of accesses that must be examined to those that are
unexplained."  This module turns the engine's unexplained set into the
artifacts a compliance office works from: a triage queue, per-user risk
counts, and a coverage summary.

Since the ``repro.api`` redesign the computation lives in
:meth:`repro.api.AuditService.report`; :class:`ComplianceAuditor` remains
as the engine-based compatibility adapter (new code should call the
service directly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.engine import ExplanationEngine


@dataclass(frozen=True)
class UnexplainedAccess:
    """One unexplained access awaiting compliance review."""
    lid: Any
    date: Any
    user: Any
    patient: Any


class ComplianceAuditor:
    """Summarizes what the explanation engine could *not* explain
    (adapter over :class:`repro.api.AuditService`)."""

    def __init__(self, engine: ExplanationEngine) -> None:
        from ..api.service import AuditService  # lazy: avoids import cycle

        self.engine = engine
        self._service = AuditService.from_engine(engine)

    def queue(self) -> list[UnexplainedAccess]:
        """Unexplained accesses, oldest first — the manual-review queue."""
        return [
            UnexplainedAccess(
                lid=e.lid, date=e.date, user=e.user, patient=e.patient
            )
            for e in self._service.report().queue
        ]

    def user_risk_ranking(self) -> list[tuple[Any, int]]:
        """Users by number of unexplained accesses, descending — the
        paper's observation that isolated bad accesses (not anomalous
        users) are the target makes this a triage aid, not a verdict."""
        return list(self._service.report().user_risk)

    def summary(self) -> str:
        """One-line coverage summary for the compliance dashboard."""
        return self._service.summary()
