"""Application layer: hand-crafted templates, NL rendering, patient portal,
and compliance (misuse-detection) reporting."""

from .handcrafted import (
    all_event_user_templates,
    dataset_a_doctor_templates,
    event_group_template,
    event_same_department_template,
    event_user_template,
    group_templates,
    repeat_access_template,
    same_department_templates,
)
from .nl import TABLE_PHRASES, describe_careweb_path, with_careweb_description
from .portal import AccessReportEntry, PatientPortal
from .report import ComplianceAuditor, UnexplainedAccess
from .streaming import AccessMonitor, StreamedAccess

__all__ = [
    "AccessMonitor",
    "AccessReportEntry",
    "ComplianceAuditor",
    "StreamedAccess",
    "PatientPortal",
    "TABLE_PHRASES",
    "UnexplainedAccess",
    "all_event_user_templates",
    "dataset_a_doctor_templates",
    "describe_careweb_path",
    "event_group_template",
    "event_same_department_template",
    "event_user_template",
    "group_templates",
    "repeat_access_template",
    "same_department_templates",
    "with_careweb_description",
]
