"""Streaming auditing: explain accesses as they happen.

The paper frames auditing retrospectively (explain a log), but its
deployment story — a hospital compliance pipeline — wants the same
machinery *online*: when an access arrives, immediately attach its
explanations, and alert when none exists.  :class:`AccessMonitor` wraps
an :class:`~repro.core.engine.ExplanationEngine` with an append-only
ingest API and pluggable alert handlers.

Because explanation templates are ordinary queries over current database
state, streaming needs no new theory: each ingested access is appended to
the log and explained by the engine's per-access path queries (repeat-
access templates automatically see earlier rows, including earlier
streamed ones).
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Any, Callable

from ..core.engine import ExplanationEngine
from ..core.instance import ExplanationInstance


@dataclass(frozen=True)
class StreamedAccess:
    """The outcome of ingesting one access."""

    lid: Any
    date: Any
    user: Any
    patient: Any
    instances: tuple[ExplanationInstance, ...]

    @property
    def suspicious(self) -> bool:
        """True when the access has no explanation (alert condition)."""
        return not self.instances

    def headline(self) -> str:
        """The top-ranked explanation, or a no-explanation marker."""
        if self.instances:
            return self.instances[0].render()
        return "no explanation found"


AlertHandler = Callable[[StreamedAccess], None]


class AccessMonitor:
    """Appends accesses to the audit log and explains them immediately."""

    def __init__(
        self,
        engine: ExplanationEngine,
        alert_handlers: tuple[AlertHandler, ...] = (),
    ) -> None:
        self.engine = engine
        self.alert_handlers = list(alert_handlers)
        log = engine.db.table(engine.log_table)
        lid_values = log.distinct_values(engine.log_id_attr)
        self._next_lid = (max(lid_values) + 1) if lid_values else 1
        #: Running counters for the monitoring dashboard.
        self.seen = 0
        self.alerts = 0

    def on_alert(self, handler: AlertHandler) -> None:
        """Register a callback invoked for every unexplained access."""
        self.alert_handlers.append(handler)

    def ingest(
        self, user: Any, patient: Any, date: dt.datetime | None = None
    ) -> StreamedAccess:
        """Append one access to the log and explain it.

        Returns the :class:`StreamedAccess`; alert handlers fire before it
        is returned when no explanation exists.
        """
        log = self.engine.db.table(self.engine.log_table)
        lid = self._next_lid
        self._next_lid += 1
        stamp = date if date is not None else dt.datetime.now()
        log.insert(
            {
                self.engine.log_id_attr: lid,
                "Date": stamp,
                "User": user,
                "Patient": patient,
            }
        )
        # whole-log caches (coverage, explained-id sets) are now stale;
        # per-access explanation below queries fresh state directly
        self.engine.invalidate_cache()
        instances = tuple(self.engine.explain(lid))
        access = StreamedAccess(
            lid=lid, date=stamp, user=user, patient=patient, instances=instances
        )
        self.seen += 1
        if access.suspicious:
            self.alerts += 1
            for handler in self.alert_handlers:
                handler(access)
        return access

    def ingest_many(
        self, accesses: list[tuple[Any, Any, dt.datetime]]
    ) -> list[StreamedAccess]:
        """Ingest a batch of ``(user, patient, date)`` accesses in order."""
        return [self.ingest(u, p, d) for u, p, d in accesses]

    def alert_rate(self) -> float:
        """Fraction of streamed accesses that raised an alert."""
        if self.seen == 0:
            return 0.0
        return self.alerts / self.seen
