"""Streaming auditing: explain accesses as they happen.

The paper frames auditing retrospectively (explain a log), but its
deployment story — a hospital compliance pipeline — wants the same
machinery *online*: when an access arrives, immediately attach its
explanations, and alert when none exists.  :class:`AccessMonitor` wraps
an :class:`~repro.core.engine.ExplanationEngine` with an append-only
ingest API and pluggable alert handlers.

Because explanation templates are ordinary queries over current database
state, streaming needs no new theory: each ingested access is appended to
the log and explained by the engine's per-access path queries (repeat-
access templates automatically see earlier rows, including earlier
streamed ones).

Incremental ingest path
-----------------------
With ``incremental=True`` (the default) each append rides the delta
maintenance stack end to end: the log table patches its hash indexes and
distinct projections in place (:meth:`repro.db.table.Table.insert`), the
engine delta-evaluates every template against just the new row
(:meth:`~repro.core.engine.ExplanationEngine.notify_appended`), and the
per-access explanation itself is a point query the executor answers via
index probes.  Total work per ingest is O(templates) point queries,
independent of log size.  ``incremental=False`` restores the seed
behavior — invalidate every cache and re-derive from scratch — and exists
as the baseline for ``benchmarks/bench_streaming_ingest.py``.

Batch (set-at-a-time) ingest
----------------------------
:meth:`AccessMonitor.ingest_many` maintains the engine in ONE pass for
the whole batch.  The ``batch`` constructor toggle selects the strategy:
``True`` forces the batch-semijoin path (each template evaluated once
against the whole appended set), ``False`` forces PR 1's per-row delta
point queries, and ``None`` (default) lets the engine choose — semijoin
for large batches, delta for small latency-sensitive appends.  Both
strategies produce identical explained/unexplained sets.

The monitor takes an injectable ``clock`` (no hidden ``datetime.now()``
in the hot path) and exposes per-ingest query/latency counters via
:meth:`AccessMonitor.stats`.
"""

from __future__ import annotations

import datetime as dt
import time
from contextlib import contextmanager
from dataclasses import dataclass
from collections.abc import Callable, Iterator
from typing import Any

from ..core.engine import ExplanationEngine
from ..core.instance import ExplanationInstance


@dataclass(frozen=True)
class StreamedAccess:
    """The outcome of ingesting one access."""

    lid: Any
    date: Any
    user: Any
    patient: Any
    instances: tuple[ExplanationInstance, ...]

    @property
    def suspicious(self) -> bool:
        """True when the access has no explanation (alert condition)."""
        return not self.instances

    def headline(self) -> str:
        """The top-ranked explanation, or a no-explanation marker."""
        if self.instances:
            return self.instances[0].render()
        return "no explanation found"


AlertHandler = Callable[[StreamedAccess], None]


class AccessMonitor:
    """Appends accesses to the audit log and explains them immediately."""

    def __init__(
        self,
        engine: ExplanationEngine,
        alert_handlers: tuple[AlertHandler, ...] = (),
        clock: Callable[[], Any] | None = None,
        incremental: bool = True,
        batch: bool | None = None,
    ) -> None:
        self.engine = engine
        self.alert_handlers = list(alert_handlers)
        #: Timestamp source for accesses ingested without an explicit date.
        self.clock = clock if clock is not None else dt.datetime.now
        #: False restores the seed's invalidate-everything maintenance
        #: (the streaming benchmark's baseline).
        self.incremental = incremental
        #: ingest_many maintenance strategy: True = always batch semijoin,
        #: False = always per-row delta point queries, None = auto (the
        #: engine picks semijoin for large batches).
        self.batch = batch
        log = engine.db.table(engine.log_table)
        lid_values = log.distinct_values(engine.log_id_attr)
        self._next_lid = self._initial_next_lid(lid_values)
        #: Running counters for the monitoring dashboard.
        self.seen = 0
        self.alerts = 0
        self.total_queries = 0
        self.total_seconds = 0.0
        self.last_ingest_queries = 0
        self.last_ingest_seconds = 0.0

    @staticmethod
    def _initial_next_lid(lid_values: set) -> int:
        """The first free integer log id.

        Robust to non-contiguous and mixed-type lids: only integers count
        toward the maximum (an external log may hold string ids), and bools
        are excluded even though they subclass ``int``.
        """
        ints = [
            v
            for v in lid_values
            if isinstance(v, int) and not isinstance(v, bool)
        ]
        return (max(ints) + 1) if ints else 1

    def on_alert(self, handler: AlertHandler) -> None:
        """Register a callback invoked for every unexplained access."""
        self.alert_handlers.append(handler)

    @contextmanager
    def _measured(self) -> Iterator[None]:
        """Update the per-ingest query/latency counters around one ingest
        (single access or whole batch)."""
        started = time.perf_counter()
        queries_before = self.engine.executor.queries_executed
        yield
        self.last_ingest_queries = (
            self.engine.executor.queries_executed - queries_before
        )
        self.last_ingest_seconds = time.perf_counter() - started
        self.total_queries += self.last_ingest_queries
        self.total_seconds += self.last_ingest_seconds

    def _log_row(self, lid: Any, stamp: Any, user: Any, patient: Any) -> dict:
        """The one place an audit-log row dict is built (both ingest
        paths and both maintenance modes must append identical rows)."""
        return {
            self.engine.log_id_attr: lid,
            "Date": stamp,
            "User": user,
            "Patient": patient,
        }

    def ingest(
        self, user: Any, patient: Any, date: dt.datetime | None = None
    ) -> StreamedAccess:
        """Append one access to the log and explain it.

        Returns the :class:`StreamedAccess`; alert handlers fire before it
        is returned when no explanation exists.  One-row case of
        :meth:`ingest_prepared` (incremental mode delta-patches the
        engine's caches with just this row; non-incremental restores the
        seed's invalidate-everything behavior).
        """
        lid = self._next_lid
        self._next_lid += 1
        stamp = date if date is not None else self.clock()
        return self.ingest_prepared([(lid, stamp, user, patient)])[0]

    def ingest_many(
        self, accesses: list[tuple[Any, Any, dt.datetime]]
    ) -> list[StreamedAccess]:
        """Ingest a batch of ``(user, patient, date)`` accesses in order.

        The batch is applied atomically: all rows are appended (one table
        maintenance pass), the engine runs one maintenance pass over the
        whole batch — routed to the batch-semijoin or per-row delta
        strategy per the ``batch`` toggle — and only then is each access
        explained and alerted on, in input order.  Results are identical
        to one-by-one :meth:`ingest` whenever explanations are insensitive
        to rows arriving later in the same batch, which holds for monotone
        timestamps (the streaming case); with back-dated rows the batch
        may explain an access a strict one-by-one replay would have
        alerted on.
        """
        if not self.incremental:
            # per-item ingests instrument themselves; roll last_ingest_*
            # up to batch scope afterwards so both modes report the batch
            queries_before = self.total_queries
            seconds_before = self.total_seconds
            out = [self.ingest(u, p, d) for u, p, d in accesses]
            self.last_ingest_queries = self.total_queries - queries_before
            self.last_ingest_seconds = self.total_seconds - seconds_before
            return out
        batch = []
        for user, patient, date in accesses:
            lid = self._next_lid
            self._next_lid += 1
            stamp = date if date is not None else self.clock()
            batch.append((lid, stamp, user, patient))
        return self.ingest_prepared(batch)

    def ingest_prepared(
        self, rows: list[tuple[Any, Any, Any, Any]]
    ) -> list[StreamedAccess]:
        """Ingest ``(lid, date, user, patient)`` rows with *caller-assigned*
        log ids — the shard-local half of a scatter-gather ingest, where a
        routing layer owns the global lid sequence and each shard monitor
        appends only the rows it was dealt.

        Maintenance matches :meth:`ingest_many`: one table append pass,
        one engine maintenance pass (strategy per the ``batch`` toggle),
        then each row is explained and alerted on in input order.  The
        monitor's own lid counter is advanced past every given integer id
        so later un-prepared :meth:`ingest` calls cannot collide.
        """
        ints = [
            lid
            for lid, _, _, _ in rows
            if isinstance(lid, int) and not isinstance(lid, bool)
        ]
        if ints:
            self._next_lid = max(self._next_lid, max(ints) + 1)
        if not rows:
            return []
        if not self.incremental:
            # mirror per-item ingest(): each row is appended, caches are
            # dropped, and the row is explained before the next lands
            queries_before = self.total_queries
            seconds_before = self.total_seconds
            out = []
            log = self.engine.db.table(self.engine.log_table)
            for lid, stamp, user, patient in rows:
                with self._measured():
                    log.insert(self._log_row(lid, stamp, user, patient))
                    log.invalidate_caches()
                    self.engine.invalidate_cache()
                    out.append(self._finish(lid, stamp, user, patient))
            self.last_ingest_queries = self.total_queries - queries_before
            self.last_ingest_seconds = self.total_seconds - seconds_before
            return out
        with self._measured():
            log = self.engine.db.table(self.engine.log_table)
            log.insert_many(
                self._log_row(lid, stamp, user, patient)
                for lid, stamp, user, patient in rows
            )
            self.engine.notify_appended_many(
                [lid for lid, _, _, _ in rows], use_semijoin=self.batch
            )
            out = [self._finish(*entry) for entry in rows]
        return out

    def _finish(self, lid: Any, stamp: Any, user: Any, patient: Any) -> StreamedAccess:
        """Explain one appended row, update counters, fire alerts."""
        instances = tuple(self.engine.explain(lid))
        access = StreamedAccess(
            lid=lid, date=stamp, user=user, patient=patient, instances=instances
        )
        self.seen += 1
        if access.suspicious:
            self.alerts += 1
            for handler in self.alert_handlers:
                handler(access)
        return access

    def alert_rate(self) -> float:
        """Fraction of streamed accesses that raised an alert.

        Well-defined before any ingest: an empty stream alerts on 0.0 of
        its accesses (never a ZeroDivisionError).
        """
        if self.seen == 0:
            return 0.0
        return self.alerts / self.seen

    def stats(self) -> dict:
        """Counters for dashboards and the streaming benchmark.

        Safe to call before any ingest — every derived rate/average
        reports 0.0 over an empty stream.
        """
        seen = self.seen
        return {
            "seen": seen,
            "alerts": self.alerts,
            "alert_rate": self.alert_rate(),
            "total_queries": self.total_queries,
            "total_seconds": self.total_seconds,
            "avg_ingest_queries": self.total_queries / seen if seen else 0.0,
            "avg_ingest_seconds": self.total_seconds / seen if seen else 0.0,
            "last_ingest_queries": self.last_ingest_queries,
            "last_ingest_seconds": self.last_ingest_seconds,
        }
