"""The versioned audit wire API: routes, dispatch, and server lifecycle.

:class:`AuditAPI` binds an opened service — the single-node
:class:`~repro.api.AuditService` or the scatter-gather
:class:`~repro.api.ShardedAuditService`, transparently via
:func:`repro.api.open_service` — to the ``/v1/`` route table:

=========  ===========================  =====================================
method     path                         result
=========  ===========================  =====================================
GET        /healthz                     liveness (also under ``/v1/``)
GET        /metrics                     request counters + latency percentiles
GET/POST   /v1/explain                  one ``ExplainResult`` envelope
POST       /v1/explain/batch            NDJSON stream, one result line per lid
GET        /v1/patients/{id}/report     ``PatientReport`` envelope
GET        /v1/report                   ``AuditReport`` envelope
GET        /v1/coverage                 ``{"coverage": fraction}``
GET        /v1/stats                    operational counters
POST       /v1/ingest                   ``IngestResult`` envelope
POST       /v1/ingest/batch             all results of one batched ingest
GET        /v1/templates                registered templates (list form)
POST       /v1/templates                register a posted template library
GET        /v1/templates/dump           the versioned JSON library document
GET        /v1/unexplained              cursor-paginated review queue
GET/POST   /v1/scan                     one bounded slice of a resumable scan
=========  ===========================  =====================================

Every response is a versioned envelope (``{"v": 1, "kind": ..., "data":
...}``); every failure is a typed wire error from
:mod:`repro.api.errors` with its mapped HTTP status — including
:class:`~repro.api.errors.UnsupportedOperationError` → 501 for
operations a sharded deployment cannot host.

Service calls are blocking (they take the service's RWLock), so the
asyncio loop dispatches them to a small thread pool; concurrent readers
then genuinely overlap inside the service while the loop keeps
accepting connections.  :class:`AuditServer` owns the loop: ``serve()``
blocks a CLI process until SIGINT/SIGTERM, ``start()``/``close()`` run
the whole server on a background thread for tests and benchmarks.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import json
import logging
import re
import threading
import time
from bisect import bisect_right
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Callable
from typing import Any
from urllib.parse import unquote

from ..api.errors import (
    WIRE_VERSION,
    AuditApiError,
    InternalServerError,
    InvalidCursorError,
    InvalidRequestError,
    MethodNotAllowedError,
    NotFoundError,
    UnsupportedOperationError,
)
from ..api.messages import (
    ExplainRequest,
    ScanRequest,
    ScanState,
    jsonable,
    temporal,
    to_wire,
)
from ..core.library import TemplateLibrary
from .cursor import (
    decode_cursor,
    decode_scan_cursor,
    encode_cursor,
    encode_scan_cursor,
)
from .http import ChunkedWriter, Request, dump_json, read_request, response_bytes
from .metrics import ServerMetrics, merge_snapshots

log = logging.getLogger("repro.server")

#: Default and maximum page sizes of ``/v1/unexplained``.
DEFAULT_PAGE_LIMIT = 100
MAX_PAGE_LIMIT = 500

#: Maximum per-slice row budget of ``/v1/scan`` (the default comes from
#: the service's ``AuditConfig.scan_page_rows``).
MAX_SCAN_PAGE_ROWS = 10_000

#: Route label metrics use for requests matching no route.
UNMATCHED = "<unmatched>"


def parse_scalar(raw: str) -> Any:
    """Recover a typed id from its query/path string form: a *canonical*
    integer representation comes back as ``int`` (log ids), everything
    else stays a string — including forms like ``"0042"`` whose leading
    zeros an int round trip would destroy.  A database whose ids are
    numeric *strings* is the one shape URL typing cannot distinguish;
    such clients should use ``POST /v1/explain``, which carries JSON
    types exactly."""
    try:
        value = int(raw)
    except ValueError:
        return raw
    return value if str(value) == raw else raw


def envelope(kind: str, data: Any) -> dict:
    """A versioned wire envelope around an ad-hoc (non-dataclass) payload
    — same shape :func:`repro.api.messages.to_wire` produces."""
    return {"v": WIRE_VERSION, "kind": kind, "data": data}


def _parse_access(obj: Any) -> tuple[Any, Any, Any]:
    """One ``(user, patient, date)`` access from its wire form (an object
    with ``user``/``patient`` and an optional ISO ``date``)."""
    if not isinstance(obj, dict):
        raise InvalidRequestError(
            f"each access must be an object, got {type(obj).__name__}"
        )
    user = obj.get("user")
    patient = obj.get("patient")
    if user is None or patient is None:
        raise InvalidRequestError("an access requires 'user' and 'patient'")
    date = obj.get("date")
    if isinstance(date, str):
        parsed = temporal(date)
        if isinstance(parsed, str):
            raise InvalidRequestError(
                f"access date must be ISO-formatted, got {date!r}"
            )
        date = parsed
    return user, patient, date


def _fetch_worker_snapshot(port: int, timeout: float = 2.0) -> dict:
    """One peer worker's own metrics snapshot (with raw latency samples),
    fetched over its loopback control listener.  Blocking — runs on the
    API's worker thread pool."""
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", "/metrics?scope=worker&samples=1")
        response = conn.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()
    data = payload.get("data")
    if response.status != 200 or not isinstance(data, dict):
        raise InternalServerError(
            f"peer metrics fetch from port {port} failed: {response.status}"
        )
    return data


class AuditAPI:
    """The route table and handlers over one opened audit service."""

    def __init__(
        self,
        service: Any,
        *,
        metrics: ServerMetrics | None = None,
        max_workers: int = 8,
        read_only: bool = False,
    ) -> None:
        self.service = service
        self.metrics = metrics if metrics is not None else ServerMetrics()
        #: Multi-worker fleets serve read-only replicas: a write landing
        #: on one worker would silently diverge its copy of the log from
        #: every other worker's, so mutating endpoints answer 501.
        self.read_only = read_only
        #: Peer metrics ports (one control listener per fleet worker,
        #: this worker's own port included) — set post-start by the
        #: supervisor rendezvous; empty means single-server mode.
        self._peer_metrics_ports: list[int] = []
        self._own_metrics_port: int | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._routes: list[tuple[str, str, re.Pattern, Callable, bool]] = []
        for method, pattern, handler, streaming in (
            ("GET", "/healthz", self.h_healthz, False),
            ("GET", "/v1/healthz", self.h_healthz, False),
            ("GET", "/metrics", self.h_metrics, False),
            ("GET", "/v1/metrics", self.h_metrics, False),
            ("GET", "/v1/explain", self.h_explain_get, False),
            ("POST", "/v1/explain", self.h_explain_post, False),
            ("POST", "/v1/explain/batch", self.s_explain_batch, True),
            ("GET", "/v1/patients/{patient}/report", self.h_patient_report, False),
            ("GET", "/v1/report", self.h_report, False),
            ("GET", "/v1/coverage", self.h_coverage, False),
            ("GET", "/v1/stats", self.h_stats, False),
            ("POST", "/v1/ingest", self.h_ingest, False),
            ("POST", "/v1/ingest/batch", self.h_ingest_batch, False),
            ("GET", "/v1/templates", self.h_templates_list, False),
            ("POST", "/v1/templates", self.h_templates_add, False),
            ("GET", "/v1/templates/dump", self.h_templates_dump, False),
            ("GET", "/v1/unexplained", self.h_unexplained, False),
            ("GET", "/v1/scan", self.h_scan_get, False),
            ("POST", "/v1/scan", self.h_scan_post, False),
        ):
            regex = re.compile(
                "^"
                + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern)
                + "$"
            )
            self._routes.append((method, pattern, regex, handler, streaming))

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)

    def configure_fleet(
        self, peer_metrics_ports: list[int], own_metrics_port: int
    ) -> None:
        """Wire this worker into a fleet: the full peer control-port list
        (own port included) makes ``/v1/metrics`` aggregate across every
        worker instead of answering locally."""
        self._peer_metrics_ports = list(peer_metrics_ports)
        self._own_metrics_port = own_metrics_port

    def _check_writable(self, operation: str) -> None:
        if self.read_only:
            raise UnsupportedOperationError(
                f"{operation} is not available on a multi-worker fleet: "
                f"every worker serves an independent replica of the audit "
                f"state, so a write accepted by one worker would silently "
                f"diverge it from the others; run `repro-audit serve` "
                f"with --workers 1 (or ingest offline and restart the "
                f"fleet) to mutate"
            )

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def resolve(
        self, request: Request
    ) -> tuple[str, Callable, bool]:
        """``(route label, handler, streaming)`` — or the typed 404/405."""
        allowed: list[str] = []
        for method, pattern, regex, handler, streaming in self._routes:
            match = regex.match(request.path)
            if match is None:
                continue
            if method != request.method:
                allowed.append(method)
                continue
            request.path_params = {
                k: unquote(v) for k, v in match.groupdict().items()
            }
            return f"{method} {pattern}", handler, streaming
        if allowed:
            raise MethodNotAllowedError(
                f"{request.method} is not allowed on {request.path} "
                f"(allowed: {', '.join(sorted(set(allowed)))})"
            )
        raise NotFoundError(f"no route for {request.path}")

    async def _call(self, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        """Run one blocking service call on the worker pool."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, functools.partial(fn, *args, **kwargs)
        )

    # ------------------------------------------------------------------
    # plain handlers (return the envelope dict; dispatch serializes)
    # ------------------------------------------------------------------
    async def h_healthz(self, request: Request) -> dict:
        return envelope("Health", {"status": "ok"})

    async def h_metrics(self, request: Request) -> dict:
        """Local counters — or, on a fleet worker, the merged fleet view.

        ``?scope=worker`` always answers with this worker's own snapshot
        (what the aggregation fan-out requests, so it cannot recurse);
        ``?samples=1`` includes the raw latency reservoir (what the
        merge needs).  Unreachable peers are skipped — the ``workers``
        count in the merged payload says how many answered.
        """
        scope = request.query.get("scope")
        include_samples = request.query.get("samples") == "1"
        if scope == "worker" or not self._peer_metrics_ports:
            return envelope(
                "Metrics", self.metrics.snapshot(include_samples=include_samples)
            )
        snapshots = [self.metrics.snapshot(include_samples=True)]
        peers = [
            port
            for port in self._peer_metrics_ports
            if port != self._own_metrics_port
        ]
        fetched = await asyncio.gather(
            *[self._call(_fetch_worker_snapshot, port) for port in peers],
            return_exceptions=True,
        )
        snapshots.extend(snap for snap in fetched if isinstance(snap, dict))
        merged = merge_snapshots(snapshots)
        merged["scope"] = "fleet"
        return envelope("Metrics", merged)

    async def h_explain_get(self, request: Request) -> dict:
        raw = request.query.get("lid")
        if raw is None:
            raise InvalidRequestError("explain requires a 'lid' query parameter")
        limit = request.query_int("limit", None, minimum=1)
        explain_request = ExplainRequest(lid=parse_scalar(raw), limit=limit)
        result = await self._call(self.service.explain, explain_request)
        return to_wire(result)

    async def h_explain_post(self, request: Request) -> dict:
        payload = request.json()
        if not isinstance(payload, dict):
            raise InvalidRequestError("explain body must be a JSON object")
        data = payload.get("data") if "kind" in payload else payload
        if not isinstance(data, dict):
            raise InvalidRequestError("explain body carries no request object")
        explain_request = ExplainRequest.from_dict(data)
        result = await self._call(self.service.explain, explain_request)
        return to_wire(result)

    async def h_patient_report(self, request: Request) -> dict:
        patient = parse_scalar(request.path_params["patient"])
        limit = request.query_int("limit", None, minimum=0)
        result = await self._call(self.service.patient_report, patient, limit=limit)
        return to_wire(result)

    async def h_report(self, request: Request) -> dict:
        limit = request.query_int("limit", None, minimum=0)
        result = await self._call(self.service.report, limit=limit)
        return to_wire(result)

    async def h_coverage(self, request: Request) -> dict:
        coverage = await self._call(self.service.coverage)
        return envelope("Coverage", {"coverage": coverage})

    async def h_stats(self, request: Request) -> dict:
        stats = await self._call(self.service.stats)
        return envelope("Stats", jsonable(stats))

    async def h_ingest(self, request: Request) -> dict:
        self._check_writable("ingest")
        user, patient, date = _parse_access(request.json())
        result = await self._call(self.service.ingest, user, patient, date)
        return to_wire(result)

    async def h_ingest_batch(self, request: Request) -> dict:
        self._check_writable("batched ingest")
        payload = request.json()
        accesses = payload.get("accesses") if isinstance(payload, dict) else None
        if not isinstance(accesses, list):
            raise InvalidRequestError(
                'ingest batch body must be {"accesses": [...]}'
            )
        parsed = [_parse_access(a) for a in accesses]
        results = await self._call(self.service.ingest_many, parsed)
        return envelope(
            "IngestBatch",
            {"count": len(results), "results": [r.to_dict() for r in results]},
        )

    async def h_templates_list(self, request: Request) -> dict:
        templates = await self._call(self.service.templates)
        return envelope(
            "Templates",
            {
                "count": len(templates),
                "templates": [
                    {
                        "name": t.name,
                        "sql": t.to_sql(),
                        "description": t.description,
                    }
                    for t in templates
                ],
            },
        )

    async def h_templates_dump(self, request: Request) -> dict:
        library = await self._call(self.service.template_library)
        return envelope("TemplateLibrary", json.loads(library.dumps_json()))

    async def h_templates_add(self, request: Request) -> dict:
        self._check_writable("template registration")
        payload = request.json()
        if not isinstance(payload, dict):
            raise InvalidRequestError(
                "templates body must be a versioned library document "
                "(TemplateLibrary.dumps_json form)"
            )
        library = TemplateLibrary.loads_json(json.dumps(payload))
        added = await self._call(self.service.add_templates, library)
        return envelope("TemplatesAdded", {"added": added})

    async def h_unexplained(self, request: Request) -> dict:
        """One page of the review queue.  The cursor is the ``(date,
        lid)`` key of the last item served (in JSON form, matching the
        queue's sort order), so the walk resumes strictly after it —
        stable even when back-dated ingests or newly registered
        templates reshape the queue between pages.

        Each page re-materializes the queue from the engine's
        delta-maintained unexplained set (one log scan + sort); pages
        stay correct under concurrent writes at the cost of
        O(log rows) work per page.  A generation-tagged queue cache is
        the known next step if walks over very large queues become a
        hot path."""
        limit = request.query_int("limit", DEFAULT_PAGE_LIMIT, minimum=1)
        limit = min(limit, MAX_PAGE_LIMIT)
        cursor = request.query.get("cursor")
        after = decode_cursor(cursor) if cursor else None
        queue = await self._call(self.service.unexplained_queue)
        offset = 0
        if after is not None:
            try:
                offset = bisect_right(
                    queue,
                    after,
                    key=lambda v: (jsonable(v.date), jsonable(v.lid)),
                )
            except TypeError:
                raise InvalidCursorError(
                    "cursor key is not comparable with this queue"
                ) from None
        page = queue[offset : offset + limit]
        next_cursor = None
        if page and offset + limit < len(queue):
            last = page[-1]
            next_cursor = encode_cursor(
                (jsonable(last.date), jsonable(last.lid))
            )
        return envelope(
            "UnexplainedPage",
            {
                "items": [view.to_dict() for view in page],
                "next_cursor": next_cursor,
                "total": len(queue),
            },
        )

    # --------------------------------------------------------- scans
    @staticmethod
    def _scan_state(state_dict: dict) -> ScanState:
        """Rebuild a suspended scan state from its cursor payload; shape
        errors are cursor errors (the client cannot have minted it)."""
        try:
            return ScanState.from_dict(state_dict)
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidCursorError(f"malformed scan state: {exc}") from exc

    async def _scan(
        self,
        state: ScanState | None,
        page_rows: int | None,
        quantum_seconds: float | None,
    ) -> dict:
        page = await self._call(
            self.service.scan,
            ScanRequest(
                state=state,
                page_rows=page_rows,
                quantum_seconds=quantum_seconds,
            ),
        )
        next_cursor = (
            None if page.done else encode_scan_cursor(page.state.to_dict())
        )
        return envelope(
            "ScanSlice", {"page": page.to_dict(), "next_cursor": next_cursor}
        )

    async def h_scan_get(self, request: Request) -> dict:
        """One bounded slice of the resumable full-log scan.  A fresh
        request (no cursor) starts at the head of the stable ``(date,
        lid)`` order; the returned cursor carries the whole suspended
        scan state, so the next page may land on any replica — or on a
        freshly restarted server — and continue exactly where this one
        stopped."""
        page_rows = request.query_int("page_rows", None, minimum=1)
        if page_rows is not None:
            page_rows = min(page_rows, MAX_SCAN_PAGE_ROWS)
        quantum_ms = request.query_int("quantum_ms", None, minimum=1)
        cursor = request.query.get("cursor")
        state = (
            self._scan_state(decode_scan_cursor(cursor)) if cursor else None
        )
        return await self._scan(
            state,
            page_rows,
            None if quantum_ms is None else quantum_ms / 1000.0,
        )

    async def h_scan_post(self, request: Request) -> dict:
        """The typed-body twin of ``GET /v1/scan``: accepts a JSON
        object (optionally a ``ScanRequest`` envelope) with ``cursor``,
        ``page_rows``, and ``quantum_seconds`` fields."""
        payload = request.json()
        if not isinstance(payload, dict):
            raise InvalidRequestError("scan body must be a JSON object")
        data = payload.get("data") if "kind" in payload else payload
        if not isinstance(data, dict):
            raise InvalidRequestError("scan body carries no request object")
        cursor = data.get("cursor")
        state = None
        if cursor is not None:
            if not isinstance(cursor, str):
                raise InvalidCursorError("cursor must be a string")
            state = self._scan_state(decode_scan_cursor(cursor))
        page_rows = data.get("page_rows")
        if page_rows is not None:
            if not isinstance(page_rows, int) or page_rows < 1:
                raise InvalidRequestError(
                    "page_rows must be an integer >= 1 when given"
                )
            page_rows = min(page_rows, MAX_SCAN_PAGE_ROWS)
        quantum_seconds = data.get("quantum_seconds")
        if quantum_seconds is not None and (
            not isinstance(quantum_seconds, (int, float))
            or isinstance(quantum_seconds, bool)
            or not quantum_seconds > 0
        ):
            raise InvalidRequestError(
                "quantum_seconds must be a number > 0 when given"
            )
        return await self._scan(state, page_rows, quantum_seconds)

    # ------------------------------------------------------------------
    # streaming handlers (write the body themselves)
    # ------------------------------------------------------------------
    async def s_explain_batch(
        self, request: Request, chunks: ChunkedWriter
    ) -> None:
        """One NDJSON ``ExplainResult`` envelope per lid, in request
        order, each line flushed before the next lid is evaluated — a
        large batch streams instead of materializing."""
        payload = request.json()
        lids = payload.get("lids") if isinstance(payload, dict) else None
        if not isinstance(lids, list):
            raise InvalidRequestError('explain batch body must be {"lids": [...]}')
        limit = payload.get("limit")
        if limit is not None and (not isinstance(limit, int) or limit < 1):
            raise InvalidRequestError("limit must be an integer >= 1 when given")
        if any(lid is None for lid in lids):
            raise InvalidRequestError("lids must not contain null")
        for lid in lids:
            result = await self._call(
                self.service.explain, ExplainRequest(lid=lid, limit=limit)
            )
            await chunks.send(dump_json(to_wire(result)))
        await chunks.finish()


class AuditServer:
    """The asyncio HTTP server around one :class:`AuditAPI`.

    Two lifecycles:

    * ``await serve_async()`` inside a running loop (what :func:`serve`
      does for the CLI);
    * ``start()``/``close()`` — spin the loop on a daemon thread and
      return once the port is bound, for tests and benchmarks that need
      a live server next to blocking client code.
    """

    def __init__(
        self,
        service: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_workers: int = 8,
        sock: Any = None,
        api: AuditAPI | None = None,
    ) -> None:
        #: ``api`` lets two servers share one route table, thread pool,
        #: and metrics instance — a fleet worker's main listener and its
        #: loopback control listener are the same API on two sockets.
        self.api = api if api is not None else AuditAPI(service, max_workers=max_workers)
        self.host = host
        self.port = port
        #: A pre-bound listening socket (SO_REUSEPORT sibling or an
        #: inherited parent-bound fd); when given, host/port are taken
        #: from it and no new bind happens.
        self._sock = sock
        if sock is not None:
            name = sock.getsockname()
            self.host, self.port = name[0], name[1]
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        #: Draining: stop accepting, finish in-flight requests, close
        #: keep-alive connections (responses carry ``Connection: close``).
        self._draining = False
        self._conn_tasks: set[asyncio.Task] = set()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while not self._draining:
                try:
                    request = await read_request(reader, writer)
                except AuditApiError as exc:
                    # framing is broken; answer once and drop the link
                    writer.write(
                        response_bytes(
                            exc.http_status,
                            dump_json(exc.to_wire()),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                keep_alive = await self._dispatch(
                    request, writer, request.keep_alive
                )
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> bool:
        """Serve one request; returns whether the connection may be
        kept alive (an unframed HTTP/1.0 stream must close — the body
        has no other delimiter than EOF)."""
        keep_alive = keep_alive and not self._draining
        metrics = self.api.metrics
        metrics.request_started()
        started = time.perf_counter()
        route = UNMATCHED
        error = False
        chunks: ChunkedWriter | None = None
        chunked = request.version != "HTTP/1.0"
        try:
            route, handler, streaming = self.api.resolve(request)
            if streaming:
                chunks = ChunkedWriter(
                    writer, keep_alive=keep_alive, chunked=chunked
                )
                keep_alive = keep_alive and chunked
                await handler(request, chunks)
            else:
                payload = await handler(request)
                writer.write(
                    response_bytes(
                        200, dump_json(payload), keep_alive=keep_alive
                    )
                )
                await writer.drain()
        except Exception as exc:  # noqa: BLE001 - the wire boundary
            error = True
            wire_error = self._as_wire_error(exc)
            if chunks is not None and chunks.started:
                # mid-stream failure: emit a final error line, then end
                # the chunked body so the client sees a complete frame
                await chunks.send(dump_json(wire_error.to_wire()))
                await chunks.finish()
            else:
                writer.write(
                    response_bytes(
                        wire_error.http_status,
                        dump_json(wire_error.to_wire()),
                        keep_alive=keep_alive,
                    )
                )
                await writer.drain()
        finally:
            metrics.request_finished(
                route, time.perf_counter() - started, error
            )
        return keep_alive

    @staticmethod
    def _as_wire_error(exc: Exception) -> AuditApiError:
        """Every failure leaves as a typed wire error: API errors pass
        through (501 for unsupported operations included), bad values
        from request construction map to 400, anything else to 500."""
        if isinstance(exc, AuditApiError):
            return exc
        if isinstance(exc, ValueError):
            return InvalidRequestError(str(exc))
        log.exception("unhandled error serving request")
        return InternalServerError(f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start_async(self) -> None:
        """Bind the listening socket inside the running loop (or adopt
        the pre-bound one)."""
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self._sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop_async(
        self,
        drain: bool = False,
        grace_seconds: float = 10.0,
        close_api: bool = True,
    ) -> None:
        """Stop the listener.  With ``drain=True`` this is the graceful
        SIGTERM path: close the listening socket first (new dials are
        refused), let every in-flight request — streaming responses
        included — run to completion (bounded by ``grace_seconds``),
        then close idle keep-alive connections.  Responses sent while
        draining carry ``Connection: close``.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain:
            self._draining = True
            loop = asyncio.get_running_loop()
            deadline = loop.time() + grace_seconds
            while self.api.metrics.in_flight > 0 and loop.time() < deadline:
                await asyncio.sleep(0.02)
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(
                    *list(self._conn_tasks), return_exceptions=True
                )
        if close_api:
            self.api.close()

    # --- background-thread mode (tests, benchmarks) -------------------
    def start(self) -> "AuditServer":
        """Run the server on a daemon thread; returns once bound."""
        if self._thread is not None:
            raise RuntimeError("server already started")

        def runner() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start_async())
            except BaseException as exc:  # surface bind errors to start()
                self._startup_error = exc
                self._started.set()
                loop.close()
                return
            self._started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.stop_async())
                # open keep-alive connections idle in read_request();
                # cancel them so the loop closes without leaked tasks
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def close(self) -> None:
        """Stop the background-thread server and release the executor."""
        loop, thread = self._loop, self._thread
        self._loop = self._thread = None
        if loop is not None and thread is not None:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
        else:
            self.api.close()

    def __enter__(self) -> "AuditServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()


def serve(
    service: Any,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    print_fn: Callable[[str], None] = print,
) -> int:
    """Serve blocking until SIGINT/SIGTERM — the ``repro-audit serve``
    engine.  Prints one ``listening on http://host:port`` line once the
    socket is bound (scripts parse it to learn an ephemeral port) and
    returns 0 on a clean signal-driven shutdown."""

    async def main() -> None:
        import signal

        server = AuditServer(service, host, port)
        await server.start_async()
        print_fn(f"listening on {server.base_url}")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            # non-Unix platforms fall back to KeyboardInterrupt
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, stop.set)
        try:
            await stop.wait()
        finally:
            # Graceful drain: refuse new dials, finish in-flight work
            # (streaming responses included), close keep-alive links.
            await server.stop_async(drain=True)
        print_fn("shutdown complete")

    with contextlib.suppress(KeyboardInterrupt):  # non-Unix fallback
        asyncio.run(main())
    return 0


__all__ = [
    "DEFAULT_PAGE_LIMIT",
    "MAX_PAGE_LIMIT",
    "MAX_SCAN_PAGE_ROWS",
    "AuditAPI",
    "AuditServer",
    "envelope",
    "parse_scalar",
    "serve",
]
