"""``repro.server`` — the stdlib HTTP/NDJSON wire tier.

A dependency-free asyncio HTTP server exposing any opened audit service
(single-node or sharded, via :func:`repro.api.open_service`) as the
versioned ``/v1/`` JSON wire API; see :mod:`repro.server.app` for the
route table.  The blocking counterpart lives in :mod:`repro.client`.

Embedding (tests, benchmarks, notebooks)::

    from repro.api import open_service
    from repro.server import AuditServer

    service = open_service("hospital/")
    with AuditServer(service, port=0) as server:   # ephemeral port
        ...  # hit server.base_url with repro.client.AuditClient

Production-style (the ``repro-audit serve`` subcommand)::

    from repro.server import serve
    serve(service, host="0.0.0.0", port=8080)      # blocks until SIGINT

Multi-core (the ``repro-audit serve --workers N`` subcommand)::

    from repro.server import run_fleet
    run_fleet(lambda: open_service("hospital/"), workers=4)
"""

from .app import (
    DEFAULT_PAGE_LIMIT,
    MAX_PAGE_LIMIT,
    MAX_SCAN_PAGE_ROWS,
    AuditAPI,
    AuditServer,
    envelope,
    parse_scalar,
    serve,
)
from .cursor import (
    CURSOR_VERSION,
    decode_cursor,
    decode_scan_cursor,
    encode_cursor,
    encode_scan_cursor,
)
from .http import ChunkedWriter, Request, dump_json, read_request, response_bytes
from .metrics import ServerMetrics, merge_snapshots
from .supervisor import FleetSupervisor, reuseport_available, run_fleet

__all__ = [
    "CURSOR_VERSION",
    "DEFAULT_PAGE_LIMIT",
    "MAX_PAGE_LIMIT",
    "MAX_SCAN_PAGE_ROWS",
    "AuditAPI",
    "AuditServer",
    "ChunkedWriter",
    "FleetSupervisor",
    "Request",
    "ServerMetrics",
    "decode_cursor",
    "decode_scan_cursor",
    "dump_json",
    "encode_cursor",
    "encode_scan_cursor",
    "envelope",
    "merge_snapshots",
    "parse_scalar",
    "read_request",
    "response_bytes",
    "reuseport_available",
    "run_fleet",
    "serve",
]
