"""Multi-worker serving: one port, N worker processes, one fleet view.

:class:`FleetSupervisor` turns the single-process :class:`~repro.server.
AuditServer` into a multi-core fleet:

* **One listening port.**  Where the platform supports it, the parent
  binds a placeholder socket with ``SO_REUSEPORT`` only to resolve the
  port, and every worker then binds its *own* ``SO_REUSEPORT`` sibling —
  per-worker kernel accept queues, no shared-socket thundering herd.
  Where ``SO_REUSEPORT`` is unavailable the parent binds one listening
  socket and the workers inherit its fd across ``fork`` (a shared accept
  queue; spawn-only platforms without ``SO_REUSEPORT`` are rejected with
  a typed error, because spawned children cannot inherit the fd).
* **One service replica per worker.**  Each worker process calls the
  supplied zero-argument ``service_factory`` *after* the fork, so every
  worker owns its service outright — including process-backend
  :class:`~repro.api.sharded.ShardedAuditService` stacks, whose shard
  subprocesses then belong to that worker.  Because replicas are
  independent, fleet workers serve **read-only**: mutating endpoints
  answer a typed 501 instead of silently diverging one replica.
* **One fleet metrics view.**  Every worker runs a loopback control
  listener next to its main one (same :class:`~repro.server.app.AuditAPI`,
  same counters).  The supervisor collects the control ports at startup
  and broadcasts the list to every worker, so ``GET /v1/metrics`` on any
  worker fans out over loopback and merges the per-worker snapshots
  (counters sum, latency reservoirs merge — see
  :func:`repro.server.metrics.merge_snapshots`).
* **Graceful drain.**  SIGTERM reaches each worker, which closes its
  listener (new dials are refused), lets in-flight requests — streaming
  NDJSON responses included — run to completion, closes idle keep-alive
  connections, and exits 0.

``repro-audit serve --workers N`` routes here via :func:`run_fleet`.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import signal
import socket
import threading
import time
from collections.abc import Callable
from typing import Any

from ..api.errors import InvalidRequestError

#: Seconds the parent waits for every worker to bind and report ready.
STARTUP_TIMEOUT = 60.0


def reuseport_available() -> bool:
    """Whether this platform exposes ``SO_REUSEPORT``."""
    return hasattr(socket, "SO_REUSEPORT")


def _fork_context() -> multiprocessing.context.BaseContext | None:
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _bind_socket(host: str, port: int, *, reuseport: bool, listen: bool) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuseport:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        if listen:
            sock.listen(128)
    except BaseException:
        sock.close()
        raise
    return sock


def _worker_main(
    index: int,
    service_factory: Callable[[], Any],
    host: str,
    port: int,
    inherited_sock: socket.socket | None,
    conn: Any,
    grace_seconds: float,
    read_only: bool,
) -> None:
    """One fleet worker: open a private service replica, serve the shared
    port plus a loopback control listener, drain on SIGTERM."""
    import asyncio

    from .app import AuditAPI, AuditServer

    # The parent coordinates shutdown: a terminal Ctrl-C lands on the
    # whole process group, and the parent follows with per-worker
    # SIGTERM — ignore the direct SIGINT to avoid a KeyboardInterrupt
    # racing the drain.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    service = service_factory()

    async def run() -> None:
        if inherited_sock is not None:
            sock = inherited_sock
        else:
            sock = _bind_socket(host, port, reuseport=True, listen=True)
        api = AuditAPI(service, read_only=read_only)
        main = AuditServer(service, sock=sock, api=api)
        control = AuditServer(service, "127.0.0.1", 0, api=api)
        await main.start_async()
        await control.start_async()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        loop.add_signal_handler(signal.SIGTERM, stop.set)
        await loop.run_in_executor(None, conn.send, (main.port, control.port))
        peer_ports = await loop.run_in_executor(None, conn.recv)
        api.configure_fleet(peer_ports, control.port)
        await stop.wait()
        await main.stop_async(
            drain=True, grace_seconds=grace_seconds, close_api=False
        )
        await control.stop_async(
            drain=True, grace_seconds=grace_seconds, close_api=False
        )
        api.close()

    asyncio.run(run())


class FleetSupervisor:
    """Binds the port, forks the workers, runs the rendezvous, reaps.

    ``service_factory`` must be a zero-argument callable invoked *inside*
    each worker process (picklable on spawn-only platforms; any callable
    under ``fork``).  Passing an already-open service object is rejected:
    a live service carries thread pools, locks, and possibly per-shard
    subprocesses that cannot be shared across worker processes.
    """

    def __init__(
        self,
        service_factory: Callable[[], Any],
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        *,
        grace_seconds: float = 10.0,
    ) -> None:
        if not callable(service_factory) or hasattr(service_factory, "explain"):
            raise InvalidRequestError(
                "multi-worker serving needs a zero-argument service "
                "*factory*, not an open service instance: a live "
                "in-process service (thread pools, RW locks, per-shard "
                "worker processes) cannot be shared across server "
                "processes. Pass e.g. `lambda: open_service(db, "
                "templates, config=config)` so each worker opens its own "
                "replica."
            )
        if workers < 1:
            raise InvalidRequestError("workers must be >= 1")
        self._context = _fork_context()
        self._reuseport = reuseport_available()
        if not self._reuseport and self._context is None:
            raise InvalidRequestError(
                "multi-worker serving needs SO_REUSEPORT or a fork start "
                "method: this platform offers neither (spawned workers "
                "cannot inherit the parent-bound listening socket), so "
                "run a single server instead (--workers 1)"
            )
        if self._context is None:
            self._context = multiprocessing.get_context()
        self.service_factory = service_factory
        self.host = host
        self.port = port
        self.workers = workers
        self.grace_seconds = grace_seconds
        self.processes: list[Any] = []
        self.control_ports: list[int] = []
        self._pipes: list[Any] = []
        self._parent_sock: socket.socket | None = None

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def start(self) -> "FleetSupervisor":
        """Bind, fork every worker, run the rendezvous; returns once all
        workers are accepting (raises after cleanup if any fails)."""
        if self.processes:
            raise RuntimeError("fleet already started")
        if self._reuseport:
            # Placeholder bind resolves an ephemeral port without ever
            # listening (a bound-but-not-listening SO_REUSEPORT socket
            # receives no connections); workers bind their own siblings.
            self._parent_sock = _bind_socket(
                self.host, self.port, reuseport=True, listen=False
            )
            inherited: socket.socket | None = None
        else:
            # Fallback: one parent-bound listening socket whose fd every
            # forked worker inherits (shared accept queue).
            self._parent_sock = _bind_socket(
                self.host, self.port, reuseport=False, listen=True
            )
            inherited = self._parent_sock
        self.port = self._parent_sock.getsockname()[1]
        # Workers >1 over one replica each is read-only (see module doc).
        read_only = self.workers > 1
        try:
            for index in range(self.workers):
                parent_conn, child_conn = self._context.Pipe()
                process = self._context.Process(
                    target=_worker_main,
                    args=(
                        index,
                        self.service_factory,
                        self.host,
                        self.port,
                        inherited,
                        child_conn,
                        self.grace_seconds,
                        read_only,
                    ),
                    name=f"repro-serve-worker-{index}",
                )
                process.start()
                child_conn.close()
                self.processes.append(process)
                self._pipes.append(parent_conn)
            self.control_ports = self._rendezvous()
        except BaseException:
            self.stop(force=True)
            raise
        if self._reuseport:
            # Workers hold the port via their own sockets now.
            self._parent_sock.close()
            self._parent_sock = None
        return self

    def _rendezvous(self) -> list[int]:
        """Collect every worker's (main, control) ports, then broadcast
        the full control-port list so workers can aggregate metrics."""
        deadline = time.monotonic() + STARTUP_TIMEOUT
        ports: list[tuple[int, int]] = []
        for process, pipe in zip(self.processes, self._pipes):
            while not pipe.poll(0.05):
                if not process.is_alive():
                    raise RuntimeError(
                        f"fleet worker {process.name} exited with code "
                        f"{process.exitcode} before binding"
                    )
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"fleet worker {process.name} did not report "
                        f"ready within {STARTUP_TIMEOUT:.0f}s"
                    )
            ports.append(pipe.recv())
        control_ports = [control for _main, control in ports]
        for pipe in self._pipes:
            pipe.send(control_ports)
        return control_ports

    # ------------------------------------------------------------------
    def stop(self, force: bool = False) -> None:
        """SIGTERM every worker (graceful drain) and reap; ``force``
        escalates to ``terminate()`` without waiting for the drain."""
        for process in self.processes:
            if process.is_alive():
                with contextlib.suppress(ProcessLookupError, OSError):
                    if force:
                        process.terminate()
                    else:
                        os.kill(process.pid, signal.SIGTERM)
        join_timeout = 5.0 if force else self.grace_seconds + 10.0
        for process in self.processes:
            process.join(timeout=join_timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for pipe in self._pipes:
            pipe.close()
        if self._parent_sock is not None:
            self._parent_sock.close()
            self._parent_sock = None
        self.processes = []
        self._pipes = []
        self.control_ports = []

    def any_worker_dead(self) -> bool:
        return any(not p.is_alive() for p in self.processes)

    def __enter__(self) -> "FleetSupervisor":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def run_fleet(
    service_factory: Callable[[], Any],
    host: str = "127.0.0.1",
    port: int = 8080,
    workers: int = 2,
    *,
    grace_seconds: float = 10.0,
    print_fn: Callable[[str], None] = print,
) -> int:
    """Serve a worker fleet, blocking until SIGINT/SIGTERM — the
    ``repro-audit serve --workers N`` engine.  Prints the same
    ``listening on http://host:port`` line as single-worker ``serve()``
    (scripts parse it for ephemeral ports), plus the fleet shape.
    Returns 0 on a signal-driven drain, 1 if a worker died unexpectedly.
    """
    supervisor = FleetSupervisor(
        service_factory, host, port, workers, grace_seconds=grace_seconds
    )
    supervisor.start()
    mode = "SO_REUSEPORT" if supervisor._reuseport else "inherited fd"
    print_fn(f"listening on {supervisor.base_url}")
    print_fn(f"fleet: {workers} worker(s) sharing the port via {mode}")
    stop = threading.Event()

    def on_signal(signum: int, frame: Any) -> None:
        stop.set()

    previous = {
        signum: signal.signal(signum, on_signal)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }
    failed = False
    try:
        while not stop.is_set():
            if supervisor.any_worker_dead():
                failed = True
                print_fn("a fleet worker exited unexpectedly; shutting down")
                break
            stop.wait(0.2)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        supervisor.stop(force=failed)
    print_fn("shutdown complete")
    return 1 if failed else 0


__all__ = [
    "STARTUP_TIMEOUT",
    "FleetSupervisor",
    "reuseport_available",
    "run_fleet",
]
