"""Opaque pagination cursors for the streaming endpoints.

A cursor is a base64url-encoded, versioned JSON object — opaque on the
wire (clients must not parse it; the format may change between
releases) but cheap and dependency-free to mint and verify on the
server.  ``/v1/unexplained`` cursors are **key-based**: they carry the
``(date, lid)`` sort key of the last item served, and the next page
starts strictly after that key in the queue's stable ordering.  Unlike
an offset, a key survives concurrent mutation of the queue — a
back-dated ingest landing *before* the cursor position, or earlier
entries becoming explained after ``add_templates``, shifts no
boundaries: already-served items are never re-served and unserved
survivors are never skipped (newly inserted earlier rows are simply not
part of this walk's snapshot).

Tampered, truncated, or cross-version cursors decode to the typed
:class:`~repro.api.errors.InvalidCursorError` — never a stack trace,
never a silently wrong page.
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Any

from ..api.errors import InvalidCursorError

#: Bump when the cursor payload shape changes; old cursors then fail
#: loudly instead of decoding into the wrong position.
CURSOR_VERSION = 1


def encode_cursor(after: tuple[Any, Any]) -> str:
    """Mint the opaque cursor for a ``(date, lid)`` sort key (already in
    JSON form — what :func:`repro.api.messages.jsonable` produces)."""
    payload = {"v": CURSOR_VERSION, "after": list(after)}
    raw = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return base64.urlsafe_b64encode(raw.encode("utf-8")).decode("ascii")


def decode_cursor(cursor: str) -> tuple[Any, Any]:
    """Recover the ``(date, lid)`` key from an opaque cursor, or raise
    :class:`InvalidCursorError`."""
    try:
        raw = base64.urlsafe_b64decode(cursor.encode("ascii"))
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, binascii.Error, UnicodeError) as exc:
        raise InvalidCursorError(f"undecodable cursor: {cursor!r}") from exc
    if not isinstance(payload, dict):
        raise InvalidCursorError("cursor payload is not an object")
    if payload.get("v") != CURSOR_VERSION:
        raise InvalidCursorError(
            f"unsupported cursor version {payload.get('v')!r} "
            f"(this build mints v{CURSOR_VERSION})"
        )
    after = payload.get("after")
    if not isinstance(after, list) or len(after) != 2:
        raise InvalidCursorError("cursor key must be a [date, lid] pair")
    return tuple(after)


__all__ = ["CURSOR_VERSION", "decode_cursor", "encode_cursor"]
