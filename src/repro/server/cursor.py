"""Opaque pagination cursors for the streaming endpoints.

A cursor is a base64url-encoded, versioned JSON object — opaque on the
wire (clients must not parse it; the format may change between
releases) but cheap and dependency-free to mint and verify on the
server.  Since v2 the payload is kind-tagged, one envelope carrying two
cursor families:

* ``kind="queue"`` — ``/v1/unexplained`` position cursors.  **Key-
  based**: they carry the ``(date, lid)`` sort key of the last item
  served, and the next page starts strictly after that key in the
  queue's stable ordering.  Unlike an offset, a key survives concurrent
  mutation of the queue — a back-dated ingest landing *before* the
  cursor position, or earlier entries becoming explained after
  ``add_templates``, shifts no boundaries: already-served items are
  never re-served and unserved survivors are never skipped (newly
  inserted earlier rows are simply not part of this walk's snapshot).
* ``kind="scan"`` — ``/v1/scan`` suspended-scan cursors.  They carry a
  whole :class:`~repro.api.messages.ScanState` dict (the ``(date,
  lid)`` resume position plus the partial coverage accumulators), so a
  full-log scan suspended mid-walk resumes on **any** server replica or
  fresh service instance over the same log.

Tampered, truncated, cross-version, or cross-kind cursors decode to the
typed :class:`~repro.api.errors.InvalidCursorError` — never a stack
trace, never a silently wrong page.
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Any

from ..api.errors import InvalidCursorError

#: Bump when the cursor payload shape changes; old cursors then fail
#: loudly instead of decoding into the wrong position.  v2 added the
#: ``kind`` tag ("queue" | "scan") and the scan-state payload.
CURSOR_VERSION = 2


def _encode_payload(payload: dict) -> str:
    raw = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return base64.urlsafe_b64encode(raw.encode()).decode("ascii")


def _decode_payload(cursor: str, kind: str) -> dict:
    """Shared decode/verify half: base64url + JSON + version + kind."""
    try:
        raw = base64.urlsafe_b64decode(cursor.encode("ascii"))
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, binascii.Error, UnicodeError) as exc:
        raise InvalidCursorError(f"undecodable cursor: {cursor!r}") from exc
    if not isinstance(payload, dict):
        raise InvalidCursorError("cursor payload is not an object")
    if payload.get("v") != CURSOR_VERSION:
        raise InvalidCursorError(
            f"unsupported cursor version {payload.get('v')!r} "
            f"(this build mints v{CURSOR_VERSION})"
        )
    if payload.get("kind") != kind:
        raise InvalidCursorError(
            f"expected a {kind!r} cursor, got {payload.get('kind')!r}"
        )
    return payload


def encode_cursor(after: tuple[Any, Any]) -> str:
    """Mint the opaque queue cursor for a ``(date, lid)`` sort key
    (already in JSON form — what :func:`repro.api.messages.jsonable`
    produces)."""
    payload = {"v": CURSOR_VERSION, "kind": "queue", "after": list(after)}
    return _encode_payload(payload)


def decode_cursor(cursor: str) -> tuple[Any, Any]:
    """Recover the ``(date, lid)`` key from an opaque queue cursor, or
    raise :class:`InvalidCursorError`."""
    payload = _decode_payload(cursor, "queue")
    after = payload.get("after")
    if not isinstance(after, list) or len(after) != 2:
        raise InvalidCursorError("cursor key must be a [date, lid] pair")
    return tuple(after)


def encode_scan_cursor(state: dict) -> str:
    """Mint the opaque scan cursor for a suspended scan state (the
    ``ScanState.to_dict()`` JSON form)."""
    payload = {"v": CURSOR_VERSION, "kind": "scan", "state": state}
    return _encode_payload(payload)


def decode_scan_cursor(cursor: str) -> dict:
    """Recover the suspended ``ScanState`` dict from an opaque scan
    cursor, or raise :class:`InvalidCursorError`."""
    payload = _decode_payload(cursor, "scan")
    state = payload.get("state")
    if not isinstance(state, dict):
        raise InvalidCursorError("scan cursor carries no state object")
    return state


__all__ = [
    "CURSOR_VERSION",
    "decode_cursor",
    "decode_scan_cursor",
    "encode_cursor",
    "encode_scan_cursor",
]
