"""Operational counters of the audit HTTP server.

One :class:`ServerMetrics` instance per server, updated around every
dispatched request and served verbatim by ``GET /metrics``.  The
snapshot follows the benchlib convention: flat counters plus a
``throughput`` mapping of higher-is-better rates, so a benchmark (or an
external scraper) can lift the numbers straight into the shared
``benchmarks/benchlib.py`` record envelope.

Latency percentiles come from a bounded reservoir of the most recent
observations — constant memory under sustained traffic, exact for the
short windows benchmarks and smoke tests look at.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque


class ServerMetrics:
    """Thread-safe request counters and a latency reservoir."""

    def __init__(self, reservoir: int = 4096) -> None:
        self._lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self._started_at = time.time()
        self.requests_total = 0
        self.errors_total = 0
        self.in_flight = 0
        self._routes: dict[str, dict[str, int]] = {}
        self._latencies: deque[float] = deque(maxlen=reservoir)

    # ------------------------------------------------------------------
    def request_started(self) -> None:
        with self._lock:
            self.in_flight += 1

    def request_finished(self, route: str, seconds: float, error: bool) -> None:
        """Record one completed request under its route label
        (``"GET /v1/explain"``); unmatched requests land on ``"<404>"``."""
        with self._lock:
            self.in_flight -= 1
            self.requests_total += 1
            if error:
                self.errors_total += 1
            counts = self._routes.setdefault(route, {"count": 0, "errors": 0})
            counts["count"] += 1
            if error:
                counts["errors"] += 1
            self._latencies.append(seconds)

    # ------------------------------------------------------------------
    @staticmethod
    def _percentile(ordered: list[float], fraction: float) -> float:
        """Nearest-rank percentile over a pre-sorted sample: the
        smallest value with at least ``ceil(fraction * n)`` observations
        at or below it.  A ``round(fraction * (n - 1))`` rank would
        banker's-round off-by-one on half-way ranks (p50 of
        [1, 2, 3, 4] must be 2, the nearest-rank answer, not 3)."""
        if not ordered:
            return 0.0
        rank = math.ceil(fraction * len(ordered)) - 1
        return ordered[min(len(ordered) - 1, max(0, rank))]

    def snapshot(self) -> dict:
        """The ``GET /metrics`` payload: counters, per-route breakdown,
        latency percentiles over the reservoir, and benchlib-style
        ``throughput`` rates."""
        with self._lock:
            uptime = time.monotonic() - self._started_monotonic
            ordered = sorted(self._latencies)
            requests_total = self.requests_total
            snapshot = {
                "started_at": self._started_at,
                "uptime_seconds": uptime,
                "requests_total": requests_total,
                "errors_total": self.errors_total,
                "in_flight": self.in_flight,
                "routes": {
                    route: dict(counts)
                    for route, counts in sorted(self._routes.items())
                },
                "latency_seconds": {
                    "count": len(ordered),
                    "mean": sum(ordered) / len(ordered) if ordered else 0.0,
                    "p50": self._percentile(ordered, 0.50),
                    "p90": self._percentile(ordered, 0.90),
                    "p99": self._percentile(ordered, 0.99),
                    "max": ordered[-1] if ordered else 0.0,
                },
                "throughput": {
                    "requests_per_second": (
                        requests_total / uptime if uptime > 0 else 0.0
                    ),
                },
            }
        return snapshot


__all__ = ["ServerMetrics"]
