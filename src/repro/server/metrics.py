"""Operational counters of the audit HTTP server.

One :class:`ServerMetrics` instance per server, updated around every
dispatched request and served verbatim by ``GET /metrics``.  The
snapshot follows the benchlib convention: flat counters plus a
``throughput`` mapping of higher-is-better rates, so a benchmark (or an
external scraper) can lift the numbers straight into the shared
``benchmarks/benchlib.py`` record envelope.

Latency percentiles come from a fixed-size **reservoir sample**
(Vitter's Algorithm R): every observation is kept until the reservoir
fills, after which each new observation replaces a random slot with
probability ``capacity / observed`` — so the reservoir stays a uniform
sample over the *whole process lifetime* in constant memory, not a
recency window.  ``mean`` and ``max`` are tracked exactly alongside and
are not subject to sampling error.

Multi-worker serving aggregates one snapshot per worker into a fleet
view with :func:`merge_snapshots`: counters and per-route breakdowns
sum, exact means combine observation-weighted, and the per-worker
reservoirs merge into one fleet reservoir (weighted by how many
observations each worker's sample represents).
"""

from __future__ import annotations

import math
import random
import threading
import time


class ServerMetrics:
    """Thread-safe request counters and a latency reservoir sample.

    ``seed`` fixes the reservoir's replacement RNG (deterministic
    sampling for tests); the default seeds from entropy.
    """

    def __init__(self, reservoir: int = 4096, seed: int | None = None) -> None:
        if reservoir < 1:
            raise ValueError("reservoir must be >= 1")
        self._lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self._started_at = time.time()
        self.requests_total = 0
        self.errors_total = 0
        self.in_flight = 0
        self._routes: dict[str, dict[str, int]] = {}
        self._reservoir = reservoir
        self._samples: list[float] = []
        self._observed = 0
        self._latency_sum = 0.0
        self._latency_max = 0.0
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    def request_started(self) -> None:
        with self._lock:
            self.in_flight += 1

    def request_finished(self, route: str, seconds: float, error: bool) -> None:
        """Record one completed request under its route label
        (``"GET /v1/explain"``); unmatched requests land on ``"<404>"``."""
        with self._lock:
            self.in_flight -= 1
            self.requests_total += 1
            if error:
                self.errors_total += 1
            counts = self._routes.setdefault(route, {"count": 0, "errors": 0})
            counts["count"] += 1
            if error:
                counts["errors"] += 1
            # Algorithm R: uniform over all observations, constant memory.
            self._observed += 1
            self._latency_sum += seconds
            if seconds > self._latency_max:
                self._latency_max = seconds
            if len(self._samples) < self._reservoir:
                self._samples.append(seconds)
            else:
                slot = self._rng.randrange(self._observed)
                if slot < self._reservoir:
                    self._samples[slot] = seconds

    # ------------------------------------------------------------------
    @staticmethod
    def _percentile(ordered: list[float], fraction: float) -> float:
        """Nearest-rank percentile over a pre-sorted sample: the
        smallest value with at least ``ceil(fraction * n)`` observations
        at or below it.  A ``round(fraction * (n - 1))`` rank would
        banker's-round off-by-one on half-way ranks (p50 of
        [1, 2, 3, 4] must be 2, the nearest-rank answer, not 3)."""
        if not ordered:
            return 0.0
        rank = math.ceil(fraction * len(ordered)) - 1
        return ordered[min(len(ordered) - 1, max(0, rank))]

    def snapshot(self, include_samples: bool = False) -> dict:
        """The ``GET /metrics`` payload: counters, per-route breakdown,
        latency percentiles over the reservoir, and benchlib-style
        ``throughput`` rates.

        ``include_samples=True`` adds the raw reservoir under
        ``latency_seconds.samples`` — the form one worker ships to the
        aggregator so :func:`merge_snapshots` can merge reservoirs
        instead of guessing fleet percentiles from per-worker ones.
        """
        with self._lock:
            uptime = time.monotonic() - self._started_monotonic
            ordered = sorted(self._samples)
            observed = self._observed
            requests_total = self.requests_total
            latency: dict = {
                "count": observed,
                "sampled": len(ordered),
                "mean": self._latency_sum / observed if observed else 0.0,
                "p50": self._percentile(ordered, 0.50),
                "p90": self._percentile(ordered, 0.90),
                "p99": self._percentile(ordered, 0.99),
                "max": self._latency_max if observed else 0.0,
            }
            if include_samples:
                latency["samples"] = list(self._samples)
            snapshot = {
                "started_at": self._started_at,
                "uptime_seconds": uptime,
                "requests_total": requests_total,
                "errors_total": self.errors_total,
                "in_flight": self.in_flight,
                "routes": {
                    route: dict(counts)
                    for route, counts in sorted(self._routes.items())
                },
                "latency_seconds": latency,
                "throughput": {
                    "requests_per_second": (
                        requests_total / uptime if uptime > 0 else 0.0
                    ),
                },
            }
        return snapshot


def merge_snapshots(
    snapshots: list[dict], reservoir: int = 4096, seed: int = 0
) -> dict:
    """One fleet view from per-worker :meth:`ServerMetrics.snapshot` dicts.

    Counters and per-route breakdowns sum; ``started_at`` is the earliest
    worker start and ``uptime_seconds`` the longest (the fleet has been up
    as long as its oldest worker); means combine weighted by each worker's
    observation count (exact); ``max`` is the exact fleet max.  The
    latency reservoirs merge into one: when every worker's sample is still
    exhaustive (reservoir never overflowed) and they fit, the merge is the
    exact concatenation — otherwise a weighted re-sample (seeded, with
    replacement) draws each slot from worker *i* with probability
    proportional to the ``observed_i`` requests its reservoir represents.
    Snapshots lacking ``latency_seconds.samples`` contribute their
    counters but no samples.
    """
    if not snapshots:
        raise ValueError("merge_snapshots needs at least one snapshot")
    routes: dict[str, dict[str, int]] = {}
    for snap in snapshots:
        for route, counts in snap.get("routes", {}).items():
            agg = routes.setdefault(route, {"count": 0, "errors": 0})
            agg["count"] += counts.get("count", 0)
            agg["errors"] += counts.get("errors", 0)

    observed_total = sum(s["latency_seconds"]["count"] for s in snapshots)
    mean = (
        sum(
            s["latency_seconds"]["mean"] * s["latency_seconds"]["count"]
            for s in snapshots
        )
        / observed_total
        if observed_total
        else 0.0
    )
    contributors = [
        (s["latency_seconds"]["samples"], s["latency_seconds"]["count"])
        for s in snapshots
        if s["latency_seconds"].get("samples") and s["latency_seconds"]["count"]
    ]
    exhaustive = all(len(samples) == count for samples, count in contributors)
    total_samples = sum(len(samples) for samples, _ in contributors)
    if exhaustive and total_samples <= reservoir:
        merged = [v for samples, _ in contributors for v in samples]
    elif contributors:
        rng = random.Random(seed)
        population = [v for samples, _ in contributors for v in samples]
        # Each sample stands in for observed/len(samples) real requests.
        weights = [
            count / len(samples)
            for samples, count in contributors
            for _ in samples
        ]
        merged = rng.choices(population, weights=weights, k=reservoir)
    else:
        merged = []
    ordered = sorted(merged)

    uptime = max(s["uptime_seconds"] for s in snapshots)
    requests_total = sum(s["requests_total"] for s in snapshots)
    pct = ServerMetrics._percentile
    return {
        "started_at": min(s["started_at"] for s in snapshots),
        "uptime_seconds": uptime,
        "workers": len(snapshots),
        "requests_total": requests_total,
        "errors_total": sum(s["errors_total"] for s in snapshots),
        "in_flight": sum(s["in_flight"] for s in snapshots),
        "routes": {route: routes[route] for route in sorted(routes)},
        "latency_seconds": {
            "count": observed_total,
            "sampled": len(ordered),
            "mean": mean,
            "p50": pct(ordered, 0.50),
            "p90": pct(ordered, 0.90),
            "p99": pct(ordered, 0.99),
            "max": max(
                (s["latency_seconds"]["max"] for s in snapshots),
                default=0.0,
            )
            if observed_total
            else 0.0,
        },
        "throughput": {
            "requests_per_second": requests_total / uptime if uptime > 0 else 0.0,
        },
    }


__all__ = ["ServerMetrics", "merge_snapshots"]
