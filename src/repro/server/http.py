"""Minimal asyncio HTTP/1.1 plumbing for the audit server.

The container bakes in no web framework, so the wire tier is built on
``asyncio.start_server`` directly: a small request parser (request line,
headers, ``Content-Length`` body), a JSON response writer, and a chunked
``Transfer-Encoding`` writer for the NDJSON streaming endpoints.  The
subset implemented is exactly what the v1 API needs:

* HTTP/1.1 with keep-alive (the default) and ``Connection: close``;
* request bodies via ``Content-Length`` only (chunked *requests* are
  rejected — no v1 endpoint needs them);
* bounded request line/header/body sizes, mapped to typed 400/413 wire
  errors instead of stack traces.

Everything here is transport; routing and handlers live in
:mod:`repro.server.app`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, urlsplit

from ..api.errors import (
    InvalidRequestError,
    PayloadTooLargeError,
)

#: Upper bound on the request line plus all headers.
MAX_HEADER_BYTES = 64 * 1024
#: Upper bound on a request body (ingest batches, template libraries).
MAX_BODY_BYTES = 16 * 1024 * 1024
#: Maximum number of request headers.
MAX_HEADERS = 100

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    version: str = "HTTP/1.1"
    #: Filled by the router with ``{param: value}`` from the path pattern.
    path_params: dict[str, str] = field(default_factory=dict)

    @property
    def keep_alive(self) -> bool:
        """Connection persistence per RFC 9112 §9.3: ``Connection`` is a
        comma-separated token list, so ``Connection: close, TE`` must
        close just like a bare ``close`` (an exact-string compare would
        keep the socket alive and hang the peer waiting to reuse it)."""
        tokens = {
            token.strip().lower()
            for token in self.headers.get("connection", "").split(",")
            if token.strip()
        }
        if self.version == "HTTP/1.0":
            return "keep-alive" in tokens
        return "close" not in tokens

    def json(self) -> Any:
        """The body parsed as JSON (typed 400 on absence or bad syntax)."""
        if not self.body:
            raise InvalidRequestError("request body must be JSON, got nothing")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise InvalidRequestError(f"request body is not JSON: {exc}") from exc

    def query_int(
        self, name: str, default: int | None = None, minimum: int | None = None
    ) -> int | None:
        """An integer query parameter, typed-400 on junk or range."""
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise InvalidRequestError(
                f"query parameter {name!r} must be an integer, got {raw!r}"
            ) from None
        if minimum is not None and value < minimum:
            raise InvalidRequestError(
                f"query parameter {name!r} must be >= {minimum}, got {value}"
            )
        return value


async def read_request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter | None = None,
) -> Request | None:
    """Parse one request off the stream; None on a clean EOF between
    requests (the peer closed a keep-alive connection).

    When ``writer`` is given, an ``Expect: 100-continue`` header is
    answered with the interim ``100 Continue`` response before the body
    is read — otherwise standards-compliant clients (curl beyond 1 KiB
    bodies) stall a full expect-timeout on every large POST."""
    try:
        line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError) as exc:
        raise PayloadTooLargeError(f"request line too long: {exc}") from exc
    if not line:
        return None
    try:
        request_line = line.decode("ascii").strip()
        method, target, version = request_line.split(" ", 2)
    except ValueError as exc:
        raise InvalidRequestError(f"malformed request line: {line!r}") from exc
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise InvalidRequestError(f"unsupported HTTP version {version!r}")

    headers: dict[str, str] = {}
    consumed = len(line)
    while True:
        try:
            line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError) as exc:
            raise PayloadTooLargeError(f"header line too long: {exc}") from exc
        consumed += len(line)
        if consumed > MAX_HEADER_BYTES:
            raise PayloadTooLargeError("request headers exceed the size limit")
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADERS:
            raise PayloadTooLargeError("too many request headers")
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError as exc:
            raise InvalidRequestError("undecodable header line") from exc
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise InvalidRequestError(
            "chunked request bodies are not supported; send Content-Length"
        )
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise InvalidRequestError("malformed Content-Length header") from exc
        if length < 0:
            raise InvalidRequestError("negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise PayloadTooLargeError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        if (
            writer is not None
            and length > 0
            and "100-continue" in headers.get("expect", "").lower()
        ):
            writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
            await writer.drain()
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise InvalidRequestError(
                "connection closed mid-body"
            ) from exc
    elif "content-type" in headers:
        # A body announced (Content-Type) but unframed (no
        # Content-Length, chunked already rejected above): silently
        # treating it as bodyless would desync the connection — the
        # unread body bytes would be parsed as the next request line.
        # The caller answers this typed 400 with Connection: close.
        raise InvalidRequestError(
            "a request carrying a body must send Content-Length "
            "(without it the body would desync the connection)"
        )

    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query, keep_blank_values=True))
    # the path stays percent-encoded: routes match the raw form and the
    # router unquotes each captured parameter, so an encoded "/" inside
    # a path parameter cannot shift segment boundaries
    return Request(
        method=method.upper(),
        target=target,
        path=parts.path,
        query=query,
        headers=headers,
        body=body,
        version=version,
    )


def dump_json(payload: Any) -> bytes:
    """The server's one JSON serialization: compact separators, sorted
    keys, ``default=str`` — deterministic bytes, which is what lets the
    differential suite assert byte-identical responses."""
    return (
        json.dumps(
            payload, separators=(",", ":"), sort_keys=True, default=str
        ).encode()
        + b"\n"
    )


def response_bytes(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
) -> bytes:
    """A full fixed-length HTTP/1.1 response."""
    reason = _REASONS.get(status, "Unknown")
    headers = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return headers.encode("ascii") + body


class ChunkedWriter:
    """Streaming body writer for the NDJSON endpoints.

    Each :meth:`send` flushes one line to the socket before the next
    result is computed — the property the streaming differential test
    pins (first line on the wire before the last lid is evaluated).

    HTTP/1.1 peers get chunked ``Transfer-Encoding``; an HTTP/1.0 peer
    cannot parse chunked framing, so it gets an unframed body with
    ``Connection: close`` (the body ends at EOF) — pass
    ``chunked=False`` for that case and close the connection after.
    """

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        *,
        status: int = 200,
        content_type: str = "application/x-ndjson",
        keep_alive: bool = True,
        chunked: bool = True,
    ) -> None:
        self._writer = writer
        self._chunked = chunked
        version = "HTTP/1.1" if chunked else "HTTP/1.0"
        framing = "Transfer-Encoding: chunked\r\n" if chunked else ""
        connection = "keep-alive" if (keep_alive and chunked) else "close"
        self._head = (
            f"{version} {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"{framing}"
            f"Connection: {connection}\r\n"
            f"\r\n"
        ).encode("ascii")
        self._started = False

    @property
    def started(self) -> bool:
        """Whether the status line and headers already hit the wire."""
        return self._started

    async def send(self, data: bytes) -> None:
        if not data:
            return
        if not self._started:
            self._writer.write(self._head)
            self._started = True
        if self._chunked:
            self._writer.write(f"{len(data):x}\r\n".encode("ascii"))
            self._writer.write(data)
            self._writer.write(b"\r\n")
        else:
            self._writer.write(data)
        await self._writer.drain()

    async def finish(self) -> None:
        if not self._started:
            self._writer.write(self._head)
            self._started = True
        if self._chunked:
            self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()


__all__ = [
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "MAX_HEADERS",
    "ChunkedWriter",
    "Request",
    "dump_json",
    "read_request",
    "response_bytes",
]
