"""``repro.client`` — the typed blocking client of the wire API.

Mirror of the :class:`repro.api.AuditService` facade over HTTP; see
:mod:`repro.client.client`.  Typed errors raised here are the same
classes :mod:`repro.api.errors` defines, so remote and in-process
error handling share one ``except`` clause.
"""

from .client import AuditClient

__all__ = ["AuditClient"]
