"""The typed blocking client of the v1 audit wire API.

:class:`AuditClient` mirrors the :class:`repro.api.AuditService` facade
method-for-method over HTTP: the same method names, the same typed
request/response dataclasses (rebuilt with the shared ``from_dict``
layer in :mod:`repro.api.messages`), the same typed exceptions (rebuilt
with :func:`repro.api.errors.error_from_wire`) — so application code
written against the in-process facade ports to remote serving by
swapping the constructor::

    from repro.client import AuditClient

    with AuditClient("127.0.0.1", 8080) as client:
        result = client.explain(17)                  # ExplainResult
        for page_entry in client.unexplained():      # cursor-walked
            ...
        for r in client.explain_batch([1, 2, 3]):    # NDJSON stream
            ...

Built on ``http.client`` only.  One persistent keep-alive connection is
reused across calls and transparently re-established when the server
(or an idle timeout) drops it; instances are not thread-safe — use one
client per thread.
"""

from __future__ import annotations

import datetime as dt
import http.client
import json
from collections.abc import Iterable, Iterator, Sequence
from typing import Any
from urllib.parse import quote, urlencode

from ..api.errors import (
    WIRE_VERSION,
    AuditApiError,
    InternalServerError,
    WireFormatError,
    error_from_wire,
)
from ..api.messages import (
    AuditReport,
    ExplainRequest,
    ExplainResult,
    IngestResult,
    PatientReport,
    ScanPage,
    UnexplainedView,
    assemble_partition,
    assemble_report,
    from_wire,
    jsonable,
)
from ..core.engine import BatchExplanation
from ..core.library import TemplateLibrary


class AuditClient:
    """Typed blocking access to one audit server."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8080, *, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "AuditClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _raw_request(
        self, method: str, path: str, body: Any | None = None
    ) -> http.client.HTTPResponse:
        """One request over the persistent connection, re-dialing once
        when the kept-alive socket turns out to be dead.

        A send-phase failure is always retried (the request never formed
        a complete frame, so the server cannot have acted on it).  A
        failure *after* the request was fully sent is only retried for
        idempotent methods — re-sending a POST whose response was lost
        could, e.g., ingest the same access twice.
        """
        payload = None
        headers = {"Accept": "application/json"}
        if body is not None:
            payload = json.dumps(body, default=str).encode()
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
            except (
                ConnectionError,
                http.client.NotConnected,
                http.client.CannotSendRequest,
            ):
                self.close()
                if attempt:
                    raise
                continue
            try:
                return conn.getresponse()
            except (
                ConnectionError,
                http.client.BadStatusLine,
                http.client.ResponseNotReady,
            ):
                self.close()
                if attempt or method != "GET":
                    raise
        raise AssertionError("unreachable")

    def _request(self, method: str, path: str, body: Any | None = None) -> dict:
        """One JSON round trip: returns the envelope dict, or raises the
        typed wire error the server sent."""
        response = self._raw_request(method, path, body)
        data = response.read()
        if response.will_close:
            self.close()
        try:
            payload = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise InternalServerError(
                f"server sent non-JSON ({response.status}): {data[:200]!r}"
            ) from exc
        if response.status >= 400:
            raise error_from_wire(payload, response.status)
        if not isinstance(payload, dict) or payload.get("v") != WIRE_VERSION:
            raise WireFormatError(
                f"unsupported response envelope: {str(payload)[:200]}"
            )
        return payload

    @staticmethod
    def _data(payload: dict, kind: str) -> dict:
        if payload.get("kind") != kind:
            raise WireFormatError(
                f"expected a {kind} envelope, got {payload.get('kind')!r}"
            )
        data = payload.get("data")
        if not isinstance(data, dict):
            raise WireFormatError(f"{kind} envelope carries no data object")
        return data

    @staticmethod
    def _query(path: str, **params: Any) -> str:
        present = {k: v for k, v in params.items() if v is not None}
        if not present:
            return path
        return f"{path}?{urlencode(present)}"

    # ------------------------------------------------------------------
    # health and operations
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """The liveness payload (``{"status": "ok"}`` on a live server)."""
        return self._data(self._request("GET", "/healthz"), "Health")

    def metrics(self) -> dict:
        """Server request counters and latency percentiles."""
        return self._data(self._request("GET", "/metrics"), "Metrics")

    def stats(self) -> dict:
        """The service's operational counters (facade ``stats()``)."""
        return self._data(self._request("GET", "/v1/stats"), "Stats")

    # ------------------------------------------------------------------
    # readers (facade mirror)
    # ------------------------------------------------------------------
    def explain(self, request: ExplainRequest | Any) -> ExplainResult:
        """Why did this access happen?  Accepts an
        :class:`~repro.api.ExplainRequest` or a bare log id, exactly like
        the facade.

        Uses ``POST /v1/explain`` so the lid's JSON type travels exactly
        (the GET form exists for curl, but its query string cannot
        distinguish the string ``"17"`` from the integer 17).
        """
        if not isinstance(request, ExplainRequest):
            request = ExplainRequest(lid=request)
        return from_wire(
            self._request("POST", "/v1/explain", request.to_dict()),
            expected="ExplainResult",
        )

    def explain_batch(
        self, lids: Iterable[Any], limit: int | None = None
    ) -> Iterator[ExplainResult]:
        """Stream one :class:`ExplainResult` per lid (server NDJSON).

        Results arrive incrementally — the first is yielded while later
        lids are still being evaluated.  The iterator must be exhausted
        (or closed) before the client issues its next call.
        """
        body: dict[str, Any] = {"lids": [jsonable(lid) for lid in lids]}
        if limit is not None:
            body["limit"] = limit
        response = self._raw_request("POST", "/v1/explain/batch", body)
        if response.status >= 400:
            data = response.read()
            if response.will_close:
                self.close()
            try:
                payload = json.loads(data.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                raise InternalServerError(
                    f"server sent non-JSON ({response.status}): {data[:200]!r}"
                ) from exc
            raise error_from_wire(payload, response.status)
        try:
            for line in response:
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line.decode("utf-8"))
                if "error" in payload:
                    raise error_from_wire(payload)
                yield from_wire(payload, expected="ExplainResult")
        finally:
            # an abandoned stream leaves unread frames on the socket;
            # drop the connection so the next call starts clean
            if not response.isclosed() or response.will_close:
                self.close()

    def patient_report(
        self, patient: Any, limit: int | None = None
    ) -> PatientReport:
        """Every access to one patient's record, with explanations."""
        path = self._query(
            f"/v1/patients/{quote(str(patient), safe='')}/report", limit=limit
        )
        return from_wire(self._request("GET", path), expected="PatientReport")

    def render_patient_report(
        self, patient: Any, limit: int | None = None
    ) -> str:
        """Plain-text portal screen, identical to the facade's."""
        from ..api.service import format_patient_report

        return format_patient_report(self.patient_report(patient, limit=limit))

    def report(self, limit: int | None = None) -> AuditReport:
        """The compliance-office artifact."""
        path = self._query("/v1/report", limit=limit)
        return from_wire(self._request("GET", path), expected="AuditReport")

    def summary(self) -> str:
        """The one-line coverage summary (derived from :meth:`report`)."""
        return self.report().summary()

    def coverage(self) -> float:
        """Fraction of the log explained by at least one template."""
        data = self._data(self._request("GET", "/v1/coverage"), "Coverage")
        return float(data["coverage"])

    def unexplained_page(
        self, cursor: str | None = None, limit: int | None = None
    ) -> tuple[list[UnexplainedView], str | None, int]:
        """One page of the unexplained queue: ``(items, next_cursor,
        total)``.  Cursors are opaque — pass them back verbatim."""
        path = self._query("/v1/unexplained", cursor=cursor, limit=limit)
        data = self._data(self._request("GET", path), "UnexplainedPage")
        items = [UnexplainedView.from_dict(item) for item in data["items"]]
        return items, data.get("next_cursor"), data["total"]

    def unexplained(
        self, page_size: int | None = None
    ) -> Iterator[UnexplainedView]:
        """Walk the whole unexplained queue, page by page, in the
        server's stable ``(date, lid)`` order."""
        cursor: str | None = None
        while True:
            items, cursor, _total = self.unexplained_page(cursor, page_size)
            yield from items
            if cursor is None:
                return

    def unexplained_lids(self, page_size: int | None = None) -> frozenset:
        """The candidate-misuse lid set (facade mirror, cursor-walked)."""
        return frozenset(view.lid for view in self.unexplained(page_size))

    # ------------------------------------------------------------------
    # resumable scans (facade mirror)
    # ------------------------------------------------------------------
    def scan_page(
        self,
        cursor: str | None = None,
        page_rows: int | None = None,
        quantum_seconds: float | None = None,
    ) -> tuple[ScanPage, str | None]:
        """One bounded slice of the resumable full-log scan: ``(page,
        next_cursor)``.  Cursors are opaque and carry the whole
        suspended scan state — pass one back verbatim to continue, on
        this server or on any replica over the same log (``None`` means
        the scan is done)."""
        body: dict[str, Any] = {}
        if cursor is not None:
            body["cursor"] = cursor
        if page_rows is not None:
            body["page_rows"] = page_rows
        if quantum_seconds is not None:
            body["quantum_seconds"] = quantum_seconds
        data = self._data(
            self._request("POST", "/v1/scan", body), "ScanSlice"
        )
        return ScanPage.from_dict(data["page"]), data.get("next_cursor")

    def scan_pages(
        self,
        page_rows: int | None = None,
        quantum_seconds: float | None = None,
        cursor: str | None = None,
    ) -> Iterator[ScanPage]:
        """Walk the full-log scan slice by slice (facade
        ``scan_pages`` mirror).  Pass a suspended ``cursor`` to resume a
        walk mid-flight."""
        while True:
            page, cursor = self.scan_page(cursor, page_rows, quantum_seconds)
            yield page
            if cursor is None:
                return

    def scan_report(
        self,
        limit: int | None = None,
        page_rows: int | None = None,
        quantum_seconds: float | None = None,
    ) -> AuditReport:
        """:meth:`report`, walked as bounded scan slices — identical
        artifact, each slice its own short request."""
        return assemble_report(
            self.scan_pages(page_rows, quantum_seconds), limit=limit
        )

    def scan_explain_all(
        self,
        page_rows: int | None = None,
        quantum_seconds: float | None = None,
    ) -> BatchExplanation:
        """The facade's ``explain_all`` partition, walked as bounded
        scan slices."""
        return assemble_partition(self.scan_pages(page_rows, quantum_seconds))

    # ------------------------------------------------------------------
    # writers (facade mirror)
    # ------------------------------------------------------------------
    def ingest(
        self, user: Any, patient: Any, date: dt.datetime | None = None
    ) -> IngestResult:
        """Append one access to the audited log and explain it."""
        body = {"user": user, "patient": patient, "date": jsonable(date)}
        return from_wire(
            self._request("POST", "/v1/ingest", body), expected="IngestResult"
        )

    def ingest_many(
        self, accesses: Sequence[tuple[Any, Any, dt.datetime | None]]
    ) -> list[IngestResult]:
        """Ingest a batch of ``(user, patient, date)`` accesses."""
        body = {
            "accesses": [
                {"user": user, "patient": patient, "date": jsonable(date)}
                for user, patient, date in accesses
            ]
        }
        data = self._data(
            self._request("POST", "/v1/ingest/batch", body), "IngestBatch"
        )
        return [IngestResult.from_dict(r) for r in data["results"]]

    def add_templates(self, templates: TemplateLibrary) -> int:
        """Register a library's approved templates on the server;
        returns how many were offered (facade semantics)."""
        document = json.loads(templates.dumps_json())
        data = self._data(
            self._request("POST", "/v1/templates", document), "TemplatesAdded"
        )
        return int(data["added"])

    def templates(self) -> list[dict]:
        """The registered templates in list form
        (``{"name", "sql", "description"}`` each)."""
        data = self._data(self._request("GET", "/v1/templates"), "Templates")
        return list(data["templates"])

    def template_library(self) -> TemplateLibrary:
        """The server's registered templates as an all-approved
        :class:`TemplateLibrary` (facade mirror, wire round-tripped)."""
        data = self._data(
            self._request("GET", "/v1/templates/dump"), "TemplateLibrary"
        )
        return TemplateLibrary.loads_json(json.dumps(data))

    def save_templates(self, path: str) -> None:
        """Persist the server's registered templates as a versioned JSON
        library file (facade mirror)."""
        self.template_library().dump(path)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<AuditClient http://{self.host}:{self.port}>"


__all__ = ["AuditApiError", "AuditClient"]
