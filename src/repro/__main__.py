"""``python -m repro`` — the promised module entry point of the CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
