"""One-shot reproduction report: every experiment into one markdown file.

``repro-audit reproduce --out report.md`` (or :func:`write_report`) runs
the full study — simulation, group inference, all figure/table
experiments, the headline coverage — and renders a self-contained
markdown report with paper-vs-measured context. The heavyweight mining
sweep of Figure 13 is optional (``include_mining_performance``).
"""

from __future__ import annotations

import time
from typing import TextIO

from ..core.mining import MiningConfig, OneWayMiner
from ..ehr.config import SimulationConfig
from .experiments import (
    event_frequency,
    group_composition,
    group_predictive_power,
    handcrafted_recall,
    mined_predictive_power,
    mining_performance,
    overall_coverage,
    template_stability,
)
from .study import CareWebStudy


def _bars(fh: TextIO, values: dict) -> None:
    fh.write("| bar | value |\n|---|---|\n")
    for label, value in values.items():
        fh.write(f"| {label} | {value:.3f} |\n")
    fh.write("\n")


def _pr_rows(fh: TextIO, rows) -> None:
    fh.write("| label | precision | recall | normalized recall |\n")
    fh.write("|---|---|---|---|\n")
    for row in rows:
        s = row.scores
        fh.write(
            f"| {row.label} | {s.precision:.3f} | {s.recall:.3f} | "
            f"{s.normalized_recall:.3f} |\n"
        )
    fh.write("\n")


def write_report(
    fh: TextIO,
    config: SimulationConfig | None = None,
    include_mining_performance: bool = False,
) -> CareWebStudy:
    """Run every experiment and write the markdown report to ``fh``.

    Returns the prepared study so callers can continue interrogating it.
    """
    started = time.perf_counter()
    study = CareWebStudy.prepare(config)
    sim = study.sim

    fh.write("# Explanation-Based Auditing — reproduction report\n\n")
    fh.write(f"*Workload*: {sim.summary()}\n\n")
    fh.write(
        f"*Protocol*: groups trained on days {study.train_days}; templates "
        f"mined from training-day first accesses (s=1%, T=3); predictive "
        f"power tested on day-{study.test_day} first accesses with a "
        f"uniform fake log.\n\n"
    )

    fh.write("## Figure 6 — event frequency, all accesses (paper All≈0.97)\n\n")
    _bars(fh, event_frequency(study.db))

    fh.write("## Figure 7 — hand-crafted recall, all accesses (paper All≈0.90)\n\n")
    _bars(fh, handcrafted_recall(study.db))

    fh.write("## Figure 8 — event frequency, first accesses (paper All≈0.75)\n\n")
    _bars(
        fh,
        event_frequency(study.db, lids=study.first_lids(), include_repeat=False),
    )

    fh.write("## Figure 9 — hand-crafted recall, first accesses (paper All≈0.11)\n\n")
    _bars(
        fh,
        handcrafted_recall(study.db, lids=study.first_lids(), include_repeat=False),
    )

    fh.write("## Figures 10-11 — largest collaborative groups (depth 1)\n\n")
    for profile in group_composition(study, depth=1, top_groups=2):
        fh.write(f"**Group {profile.group_id}** ({profile.size} members):\n\n")
        for dept, count in profile.top_departments(8):
            fh.write(f"- {dept}: {count}\n")
        fh.write("\n")

    fh.write("## Figure 12 — group predictive power by depth\n\n")
    _pr_rows(fh, group_predictive_power(study))

    if include_mining_performance:
        fh.write("## Figure 13 — mining performance (cumulative seconds)\n\n")
        results = mining_performance(study)
        fh.write("| algorithm | " + " | ".join(f"len {k}" for k in range(1, 6)) + " |\n")
        fh.write("|---|" + "---|" * 5 + "\n")
        for name, result in results.items():
            series = result.cumulative_time_by_length()
            cells = " | ".join(f"{series.get(k, 0.0):.2f}" for k in range(1, 6))
            fh.write(f"| {name} | {cells} |\n")
        fh.write("\n")

    fh.write("## Figure 14 — mined templates' predictive power\n\n")
    mining_config = MiningConfig(support_fraction=0.01, max_length=4, max_tables=3)
    mined = OneWayMiner(study.mining_db(), study.mining_graph(), mining_config).mine()
    fh.write(
        f"Mined {len(mined.templates)} templates from "
        f"{len(study.mining_db().table('Log'))} training first accesses.\n\n"
    )
    fh.write("| length | #templates | precision | recall | normalized |\n")
    fh.write("|---|---|---|---|---|\n")
    for row in mined_predictive_power(study, mining_result=mined):
        s = row.scores
        fh.write(
            f"| {row.label} | {row.n_templates} | {s.precision:.3f} | "
            f"{s.recall:.3f} | {s.normalized_recall:.3f} |\n"
        )
    fh.write("\n")

    fh.write("## Table 1 — template stability across periods\n\n")
    stability = template_stability(study, config=mining_config)
    fh.write("| length | " + " | ".join(stability.periods) + " | common |\n")
    fh.write("|---|" + "---|" * (len(stability.periods) + 1) + "\n")
    for length in stability.lengths():
        cells = " | ".join(
            str(stability.counts.get((p, length), 0)) for p in stability.periods
        )
        fh.write(f"| {length} | {cells} | {stability.common.get(length, 0)} |\n")
    fh.write("\n")

    coverage = overall_coverage(study)
    fh.write("## Headline\n\n")
    fh.write(
        f"Appointments + visits + documents + repeat accesses + depth-1 "
        f"groups explain **{coverage:.1%}** of all accesses "
        f"(paper: over 94%).\n\n"
    )
    fh.write(
        f"*Report generated in {time.perf_counter() - started:.0f}s.*\n"
    )
    return study
