"""The prepared CareWeb study context shared by all experiments.

Reproduces the paper's experimental setup end to end:

1. simulate (or load) a week of CareWeb-like data;
2. infer collaborative groups from the **training days'** accesses
   (Section 4.1 — "using the first six days of accesses in the log") and
   materialize the Groups table;
3. build the mining edge set over the full schema;
4. expose the standard log slices (training first accesses, test-day first
   accesses) and the combined real+fake log database for precision
   experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.graph import SchemaGraph
from ..db.database import Database
from ..ehr.config import SimulationConfig
from ..ehr.fakelog import combined_log_db
from ..ehr.schema import build_careweb_graph
from ..ehr.simulator import SimulationResult, simulate
from ..groups.hierarchy import GroupHierarchy, build_groups_table, hierarchy_from_log
from .accesses import first_access_lids, lids_on_days, restrict_log


@dataclass
class CareWebStudy:
    """Everything the Figure/Table experiments need, built once."""

    sim: SimulationResult
    db: Database  # full database incl. Groups
    graph: SchemaGraph
    hierarchy: GroupHierarchy
    train_days: tuple[int, ...]
    test_day: int
    fake_seed: int = 0
    _cache: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    @classmethod
    def prepare(
        cls,
        config: SimulationConfig | None = None,
        train_days: tuple[int, ...] = (1, 2, 3, 4, 5, 6),
        test_day: int = 7,
        group_max_depth: int = 8,
        fake_seed: int = 0,
    ) -> "CareWebStudy":
        """Simulate, infer groups, build the mining graph — the full setup."""
        sim = simulate(config)
        db = sim.db
        train_lids = lids_on_days(db, train_days)
        train_db = restrict_log(db, train_lids, name="train")
        hierarchy, _ = hierarchy_from_log(train_db, max_depth=group_max_depth)
        build_groups_table(db, hierarchy)
        graph = build_careweb_graph(db)
        return cls(
            sim=sim,
            db=db,
            graph=graph,
            hierarchy=hierarchy,
            train_days=tuple(train_days),
            test_day=test_day,
            fake_seed=fake_seed,
        )

    # ------------------------------------------------------------------
    # standard log slices (cached)
    # ------------------------------------------------------------------
    def first_lids(self) -> set:
        """First accesses over the whole log (cached)."""
        if "first" not in self._cache:
            self._cache["first"] = first_access_lids(self.db)
        return self._cache["first"]

    def train_lids(self) -> set:
        """Accesses on the training days (cached)."""
        if "train" not in self._cache:
            self._cache["train"] = lids_on_days(self.db, self.train_days)
        return self._cache["train"]

    def test_lids(self) -> set:
        """Accesses on the test day (cached)."""
        if "test" not in self._cache:
            self._cache["test"] = lids_on_days(self.db, [self.test_day])
        return self._cache["test"]

    def train_first_lids(self) -> set:
        """Training-day first accesses (the mining input)."""
        return self.train_lids() & self.first_lids()

    def test_first_lids(self) -> set:
        """Test-day first accesses (the evaluation target)."""
        return self.test_lids() & self.first_lids()

    # ------------------------------------------------------------------
    # derived databases
    # ------------------------------------------------------------------
    def mining_db(self) -> Database:
        """Training-days first accesses only — the paper's mining input
        ("ran the algorithms on the first accesses from the first six
        days", Section 5.3.3)."""
        if "mining_db" not in self._cache:
            self._cache["mining_db"] = restrict_log(
                self.db, self.train_first_lids(), name="mining"
            )
        return self._cache["mining_db"]

    def mining_graph(self) -> SchemaGraph:
        """The mining edge set over the mining database (cached)."""
        if "mining_graph" not in self._cache:
            self._cache["mining_graph"] = build_careweb_graph(self.mining_db())
        return self._cache["mining_graph"]

    def combined_db(self, n_fake: int | None = None) -> tuple[Database, set, set]:
        """Real log + uniform fake log (Section 5.3.2).

        The paper sizes the fake log like the real log and tests on the
        seventh day; for the precision numbers to be comparable, the fake
        population must match the *test* population, so ``n_fake``
        defaults to the size of the day-``test_day`` first-access set.
        """
        if n_fake is None:
            n_fake = max(1, len(self.test_first_lids()))
        key = ("combined", n_fake)
        if key not in self._cache:
            self._cache[key] = combined_log_db(
                self.db, n_fake=n_fake, seed=self.fake_seed
            )
        return self._cache[key]
