"""Evaluation harness: metrics, log slicing, and per-figure experiments."""

from .accesses import (
    first_access_lids,
    lids_on_days,
    lids_with_events,
    log_day_of,
    log_epoch,
    patients_with_events,
    repeat_access_lids,
    restrict_log,
)
from .experiments import (
    DepthRow,
    GroupProfile,
    LengthRow,
    StabilityResult,
    event_frequency,
    group_composition,
    group_predictive_power,
    handcrafted_recall,
    mined_predictive_power,
    mining_performance,
    overall_coverage,
    template_stability,
)
from .metrics import PrecisionRecall, score_explained
from .reportgen import write_report
from .study import CareWebStudy

__all__ = [
    "CareWebStudy",
    "DepthRow",
    "GroupProfile",
    "LengthRow",
    "PrecisionRecall",
    "StabilityResult",
    "event_frequency",
    "first_access_lids",
    "group_composition",
    "group_predictive_power",
    "handcrafted_recall",
    "lids_on_days",
    "lids_with_events",
    "log_day_of",
    "log_epoch",
    "mined_predictive_power",
    "mining_performance",
    "overall_coverage",
    "patients_with_events",
    "repeat_access_lids",
    "restrict_log",
    "score_explained",
    "template_stability",
    "write_report",
]
