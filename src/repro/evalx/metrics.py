"""Precision / recall / normalized recall (paper Section 5.3.2).

Definitions, verbatim from the paper:

* ``Recall = |Real Accesses Explained| / |Real Log|``
* ``Precision = |Real Accesses Explained| / |Real+Fake Accesses Explained|``
* ``Normalized Recall = |Real Accesses Explained| /
  |Real Accesses With Events|`` — recall against only the accesses we
  actually have data about, compensating for the partial extract.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PrecisionRecall:
    """One evaluation row (e.g. one bar group of Figure 12 / 14)."""

    explained_real: int
    explained_fake: int
    total_real: int
    total_real_with_events: int

    @property
    def recall(self) -> float:
        """|real explained| / |real log| (paper Section 5.3.2)."""
        if self.total_real == 0:
            return 0.0
        return self.explained_real / self.total_real

    @property
    def precision(self) -> float:
        """|real explained| / |real+fake explained|."""
        explained = self.explained_real + self.explained_fake
        if explained == 0:
            return 1.0  # nothing claimed, nothing wrong — the vacuous case
        return self.explained_real / explained

    @property
    def normalized_recall(self) -> float:
        """|real explained| / |real accesses with events|."""
        if self.total_real_with_events == 0:
            return 0.0
        return self.explained_real / self.total_real_with_events

    def as_row(self) -> dict[str, float]:
        """The three metrics as a plain dict (for tables)."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "recall_normalized": self.normalized_recall,
        }

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} "
            f"Rn={self.normalized_recall:.3f} "
            f"({self.explained_real}/{self.total_real} real, "
            f"{self.explained_fake} fake)"
        )


def score_explained(
    explained: set,
    real_lids: set,
    fake_lids: set,
    real_with_events: set | None = None,
) -> PrecisionRecall:
    """Score an explained-lid set against the real/fake split.

    ``real_with_events`` defaults to all real lids (normalized recall then
    equals recall).
    """
    events = real_with_events if real_with_events is not None else real_lids
    return PrecisionRecall(
        explained_real=len(explained & real_lids),
        explained_fake=len(explained & fake_lids),
        total_real=len(real_lids),
        total_real_with_events=len(events),
    )
