"""Access-log slicing: first accesses, day windows, derived databases.

The paper's evaluation repeatedly needs three log views:

* **first accesses** — the first time a given user touched a given
  patient's record ("it is more challenging and interesting to explain why
  a user accesses a record for the first time", Section 5.3.1);
* **day windows** — templates are mined on days 1-6 and tested on day 7;
* **derived databases** — a database identical to the original except the
  log is restricted to a chosen lid set (mining and engines operate on
  whatever ``Log`` table they see).
"""

from __future__ import annotations

import datetime as dt
from collections.abc import Iterable

from ..db.database import Database
from ..db.table import Table


def first_access_lids(db: Database, log_table: str = "Log") -> set:
    """Lids that are the first access of their (user, patient) pair,
    ordered by (Date, Lid)."""
    log = db.table(log_table)
    schema = log.schema
    lid_i = schema.column_index("Lid")
    date_i = schema.column_index("Date")
    user_i = schema.column_index("User")
    patient_i = schema.column_index("Patient")
    best: dict[tuple, tuple] = {}
    for row in log.rows():
        key = (row[user_i], row[patient_i])
        stamp = (row[date_i], row[lid_i])
        if key not in best or stamp < best[key]:
            best[key] = stamp
    return {lid for _, lid in best.values()}


def repeat_access_lids(db: Database, log_table: str = "Log") -> set:
    """Complement of :func:`first_access_lids` — structurally repeated."""
    log = db.table(log_table)
    all_lids = log.distinct_values("Lid")
    return all_lids - first_access_lids(db, log_table)


def log_day_of(date: dt.datetime, epoch: dt.datetime) -> int:
    """1-based simulated day of a timestamp."""
    return (date.date() - epoch.date()).days + 1


def log_epoch(db: Database, log_table: str = "Log") -> dt.datetime:
    """The log's first calendar day (day 1) — no external epoch needed."""
    dates = db.table(log_table).column_values("Date")
    if not dates:
        raise ValueError("empty log has no epoch")
    return min(d for d in dates if d is not None)


def lids_on_days(
    db: Database, days: Iterable[int], log_table: str = "Log"
) -> set:
    """Lids whose timestamp falls on any of the given 1-based days."""
    wanted = set(days)
    log = db.table(log_table)
    epoch = log_epoch(db, log_table)
    lid_i = log.schema.column_index("Lid")
    date_i = log.schema.column_index("Date")
    return {
        row[lid_i]
        for row in log.rows()
        if row[date_i] is not None and log_day_of(row[date_i], epoch) in wanted
    }


def restrict_log(
    db: Database, lids: set, log_table: str = "Log", name: str | None = None
) -> Database:
    """A derived database sharing all non-log tables, with ``Log``
    restricted to ``lids``.  The original database is untouched."""
    derived = Database(name or f"{db.name}|{len(lids)}lids")
    log = db.table(log_table)
    lid_i = log.schema.column_index("Lid")
    new_log = Table(log.schema)
    new_log.insert_many(row for row in log.rows() if row[lid_i] in lids)
    for table in db.tables():
        if table.schema.name == log_table:
            derived.add_table(new_log)
        else:
            derived.add_table(table)
    return derived


#: Default event tables: the union of the paper's data sets A and B.
DEFAULT_EVENT_TABLES = (
    "Appointments",
    "Visits",
    "Documents",
    "Labs",
    "Medications",
    "Radiology",
)


def patients_with_events(
    db: Database, event_tables: Iterable[str] = DEFAULT_EVENT_TABLES
) -> set:
    """Patients having at least one row in any of the given event tables."""
    out: set = set()
    for name in event_tables:
        if db.has_table(name):
            out |= db.table(name).distinct_values("Patient")
    return out


def lids_with_events(
    db: Database,
    event_tables: Iterable[str] = DEFAULT_EVENT_TABLES,
    log_table: str = "Log",
) -> set:
    """Lids whose patient has some recorded event — the denominator of the
    paper's *normalized recall* ("the proportion of real accesses returned
    ... from the set of accesses we have information on")."""
    covered = patients_with_events(db, event_tables)
    log = db.table(log_table)
    lid_i = log.schema.column_index("Lid")
    patient_i = log.schema.column_index("Patient")
    return {
        row[lid_i] for row in log.rows() if row[patient_i] in covered
    }
