"""One callable per figure/table of the paper's evaluation (Section 5.3).

Each function returns plain data structures (dicts / dataclass rows);
the benchmark harness under ``benchmarks/`` formats them into the same
rows and series the paper plots, and EXPERIMENTS.md records paper-vs-
measured values.

==============  =====================================================
paper artifact  function
==============  =====================================================
Figure 6        :func:`event_frequency` (all accesses)
Figure 7        :func:`handcrafted_recall` (all accesses)
Figure 8        :func:`event_frequency` (first accesses)
Figure 9        :func:`handcrafted_recall` (first accesses)
Figures 10-11   :func:`group_composition`
Figure 12       :func:`group_predictive_power`
Figure 13       :func:`mining_performance`
Figure 14       :func:`mined_predictive_power`
Table 1         :func:`template_stability`
==============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from ..audit.handcrafted import (
    dataset_a_doctor_templates,
    group_templates,
    repeat_access_template,
    same_department_templates,
)
from ..api.config import AuditConfig
from ..api.service import AuditService
from ..core.mining import (
    BridgedMiner,
    MiningConfig,
    MiningResult,
    OneWayMiner,
    TwoWayMiner,
)
from ..db.database import Database
from ..ehr.schema import DATASET_A, build_careweb_graph
from .accesses import (
    lids_on_days,
    lids_with_events,
    repeat_access_lids,
    restrict_log,
)
from .metrics import PrecisionRecall, score_explained
from .study import CareWebStudy

#: Evaluation opens services purely as template evaluators: no template
#: set at open time, no eager warm-up (templates are scored one by one).
_EVAL_CONFIG = AuditConfig(eager_warm=False)


# ----------------------------------------------------------------------
# Figures 6 and 8: frequency of events in the database
# ----------------------------------------------------------------------
def event_frequency(
    db: Database,
    lids: set | None = None,
    event_tables: Sequence[str] = DATASET_A,
    include_repeat: bool = True,
) -> dict[str, float]:
    """Fraction of (selected) accesses whose patient has an event of each
    kind, plus structural repeat accesses and the union — the bars of
    Figure 6 (all accesses) and Figure 8 (first accesses, no repeat bar).
    """
    log = db.table("Log")
    lid_i = log.schema.column_index("Lid")
    patient_i = log.schema.column_index("Patient")
    selected = (
        [r for r in log.rows() if r[lid_i] in lids]
        if lids is not None
        else list(log.rows())
    )
    total = len(selected)
    if total == 0:
        return {}
    out: dict[str, float] = {}
    union_lids: set = set()
    for table in event_tables:
        patients = db.table(table).distinct_values("Patient")
        explained = {r[lid_i] for r in selected if r[patient_i] in patients}
        label = {"Appointments": "Appt", "Visits": "Visit", "Documents": "Document"}.get(
            table, table
        )
        out[label] = len(explained) / total
        union_lids |= explained
    if include_repeat:
        repeats = repeat_access_lids(db)
        selected_repeats = {r[lid_i] for r in selected} & repeats
        out["Repeat Access"] = len(selected_repeats) / total
        union_lids |= selected_repeats
    out["All"] = len(union_lids) / total
    return out


# ----------------------------------------------------------------------
# Figures 7 and 9: hand-crafted explanation recall
# ----------------------------------------------------------------------
def handcrafted_recall(
    db: Database,
    lids: set | None = None,
    include_repeat: bool = True,
) -> dict[str, float]:
    """Recall of the hand-crafted templates (Appt/Visit/Doc w/Dr., Repeat
    Access) over the selected accesses — Figures 7 and 9."""
    graph = build_careweb_graph(db)
    log = db.table("Log")
    all_lids = log.distinct_values("Lid")
    selected = all_lids if lids is None else (lids & all_lids)
    total = len(selected)
    if total == 0:
        return {}
    service = AuditService.open(db, templates=(), config=_EVAL_CONFIG)
    labels = {
        "Appointments": "Appt w/Dr.",
        "Visits": "Visit w/Dr.",
        "Documents": "Doc. w/Dr.",
    }
    out: dict[str, float] = {}
    union: set = set()
    for template in dataset_a_doctor_templates(graph):
        explained = service.explained_lids(template) & selected
        table = next(iter(template.tables_referenced() - {"Log"}))
        out[labels[table]] = len(explained) / total
        union |= explained
    if include_repeat:
        explained = service.explained_lids(repeat_access_template(graph)) & selected
        out["Repeat Access"] = len(explained) / total
        union |= explained
    out["All w/Dr."] = len(union) / total
    return out


# ----------------------------------------------------------------------
# Figures 10-11: collaborative-group composition
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GroupProfile:
    """Department-code histogram of one discovered group (Figs 10-11)."""
    group_id: int
    size: int
    departments: tuple[tuple[str, int], ...]  # (dept code, member count) desc

    def top_departments(self, n: int = 8) -> list[tuple[str, int]]:
        """The ``n`` most frequent department codes in the group."""
        return list(self.departments[:n])


def group_composition(
    study: CareWebStudy, depth: int = 1, top_groups: int = 2
) -> list[GroupProfile]:
    """Department-code histograms of the largest depth-``depth`` groups —
    the pie charts of Figures 10-11."""
    dept_of = {
        row[0]: row[1] for row in study.db.table("Users").rows()
    }
    groups = study.hierarchy.groups_at(depth)
    largest = sorted(groups.items(), key=lambda kv: (-len(kv[1]), kv[0]))
    profiles = []
    for gid, members in largest[:top_groups]:
        histogram: dict[str, int] = {}
        for user in members:
            dept = dept_of.get(user, "Unknown")
            histogram[dept] = histogram.get(dept, 0) + 1
        ranked = tuple(
            sorted(histogram.items(), key=lambda kv: (-kv[1], kv[0]))
        )
        profiles.append(
            GroupProfile(group_id=gid, size=len(members), departments=ranked)
        )
    return profiles


# ----------------------------------------------------------------------
# Figure 12: group predictive power by hierarchy depth
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DepthRow:
    """One bar group of Figure 12 (a hierarchy depth or the baseline)."""
    label: str  # "0".."8" or "Same Dept."
    scores: PrecisionRecall


def group_predictive_power(
    study: CareWebStudy,
    tables: tuple[str, ...] = DATASET_A,
    max_depth: int | None = None,
) -> list[DepthRow]:
    """Precision/recall/normalized-recall of group-based hand-crafted
    templates per hierarchy depth, plus the Same-Dept. baseline —
    trained on days 1-6, tested on day-7 first accesses with the fake log
    (exactly the Figure 12 protocol)."""
    combined, _real, fake_lids = study.combined_db()
    graph = build_careweb_graph(combined)
    service = AuditService.open(combined, templates=(), config=_EVAL_CONFIG)
    test = study.test_first_lids()
    with_events = lids_with_events(study.db, tables) & test
    depths = range(
        0,
        (study.hierarchy.max_depth if max_depth is None else max_depth) + 1,
    )
    rows: list[DepthRow] = []
    for depth in depths:
        explained: set = set()
        for template in group_templates(graph, depth=depth, tables=tables):
            explained |= service.explained_lids(template)
        rows.append(
            DepthRow(
                label=str(depth),
                scores=score_explained(explained, test, fake_lids, with_events),
            )
        )
    explained = set()
    for template in same_department_templates(graph, tables=tables):
        explained |= service.explained_lids(template)
    rows.append(
        DepthRow(
            label="Same Dept.",
            scores=score_explained(explained, test, fake_lids, with_events),
        )
    )
    return rows


# ----------------------------------------------------------------------
# Figure 13: mining performance
# ----------------------------------------------------------------------
def mining_performance(
    study: CareWebStudy,
    config: MiningConfig | None = None,
    bridge_lengths: tuple[int, ...] = (2, 3, 4),
) -> dict[str, MiningResult]:
    """Run one-way, two-way, and Bridge-l miners on the training-days
    first accesses; returns full results (cumulative times feed the
    Figure 13 series)."""
    config = config or MiningConfig(support_fraction=0.01, max_length=5, max_tables=3)
    db = study.mining_db()
    graph = study.mining_graph()
    results: dict[str, MiningResult] = {}
    one = OneWayMiner(db, graph, config)
    results[one.algorithm] = one.mine()
    two = TwoWayMiner(db, graph, config)
    results[two.algorithm] = two.mine()
    for ell in bridge_lengths:
        bridged = BridgedMiner(db, graph, config, bridge_length=ell)
        results[bridged.algorithm] = bridged.mine()
    return results


# ----------------------------------------------------------------------
# Figure 14: predictive power of mined templates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LengthRow:
    """One bar group of Figure 14 (templates of one length)."""
    label: str  # "2", "3", "4", ..., "All"
    n_templates: int
    scores: PrecisionRecall


def mined_predictive_power(
    study: CareWebStudy,
    mining_result: MiningResult | None = None,
    config: MiningConfig | None = None,
) -> list[LengthRow]:
    """Evaluate mined templates (trained on days 1-6 first accesses) on
    day-7 first accesses with the fake log, grouped by template length —
    Figure 14."""
    if mining_result is None:
        config = config or MiningConfig(
            support_fraction=0.01, max_length=4, max_tables=3
        )
        mining_result = OneWayMiner(study.mining_db(), study.mining_graph(), config).mine()
    combined, _real, fake_lids = study.combined_db()
    service = AuditService.open(combined, templates=(), config=_EVAL_CONFIG)
    test = study.test_first_lids()
    with_events = lids_with_events(study.db) & test
    by_length = mining_result.templates_by_length()
    rows: list[LengthRow] = []
    union_all: set = set()
    for length in sorted(by_length):
        explained: set = set()
        for mined in by_length[length]:
            explained |= service.explained_lids(mined.template)
        union_all |= explained
        rows.append(
            LengthRow(
                label=str(length),
                n_templates=len(by_length[length]),
                scores=score_explained(explained, test, fake_lids, with_events),
            )
        )
    rows.append(
        LengthRow(
            label="All",
            n_templates=len(mining_result.templates),
            scores=score_explained(union_all, test, fake_lids, with_events),
        )
    )
    return rows


# ----------------------------------------------------------------------
# Table 1: stability of mined templates across time periods
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StabilityResult:
    """Template counts per (period, length) plus cross-period commons."""

    periods: tuple[str, ...]
    counts: dict[tuple[str, int], int]  # (period, length) -> n templates
    common: dict[int, int]  # length -> templates present in every period

    def lengths(self) -> list[int]:
        """Template lengths observed in any period, sorted."""
        return sorted({length for _, length in self.counts})


def template_stability(
    study: CareWebStudy,
    periods: dict[str, Iterable[int]] | None = None,
    config: MiningConfig | None = None,
) -> StabilityResult:
    """Mine each time period separately and count common templates —
    Table 1 ("Days 1-6", "Day 1", "Day 3", "Day 7")."""
    if periods is None:
        periods = {
            "Days 1-6": study.train_days,
            "Day 1": [1],
            "Day 3": [3],
            f"Day {study.test_day}": [study.test_day],
        }
    config = config or MiningConfig(support_fraction=0.01, max_length=4, max_tables=3)
    firsts = study.first_lids()
    counts: dict[tuple[str, int], int] = {}
    sigs_by_period: dict[str, dict[int, set]] = {}
    for name, days in periods.items():
        lids = lids_on_days(study.db, days) & firsts
        db = restrict_log(study.db, lids, name=f"stability-{name}")
        graph = build_careweb_graph(db)
        result = OneWayMiner(db, graph, config).mine()
        per_length: dict[int, set] = {}
        for mined in result.templates:
            per_length.setdefault(mined.length, set()).add(
                mined.template.signature()
            )
        sigs_by_period[name] = per_length
        for length, sigs in per_length.items():
            counts[(name, length)] = len(sigs)
    common: dict[int, int] = {}
    all_lengths = {length for per in sigs_by_period.values() for length in per}
    for length in all_lengths:
        shared: set | None = None
        for per in sigs_by_period.values():
            sigs = per.get(length, set())
            shared = sigs if shared is None else (shared & sigs)
        common[length] = len(shared or set())
    return StabilityResult(
        periods=tuple(periods), counts=counts, common=common
    )


# ----------------------------------------------------------------------
# headline: overall coverage ("over 94% of accesses")
# ----------------------------------------------------------------------
def overall_coverage(
    study: CareWebStudy,
    group_depth: int = 1,
    shards: int = 1,
    executor_kind: str = "thread",
) -> float:
    """Fraction of all accesses explained by appointments, visits,
    documents, repeat accesses, and depth-``group_depth`` collaborative
    groups — the paper's headline number (Section 5.3.2: "we are able to
    explain over 94% of all accesses").

    ``shards > 1`` computes the same number through the scatter-gather
    service (patient-hash shards evaluated concurrently; counts add
    across disjoint shards) — sharding is invisible to the metric.
    """
    from ..api.sharded import open_service

    graph = study.graph
    templates = dataset_a_doctor_templates(graph)
    templates.append(repeat_access_template(graph))
    templates.extend(group_templates(graph, depth=group_depth))
    # One set-at-a-time pass through the public API: opening the service
    # warms the aggregates via one batch semijoin per template
    # (ExplanationEngine.explain_all under the hood — per shard when
    # sharded).
    config = AuditConfig(shards=shards, executor_kind=executor_kind)
    with open_service(study.db, templates=templates, config=config) as service:
        return service.coverage()
