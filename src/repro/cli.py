"""Command-line interface: ``python -m repro`` / ``repro-audit``.

Every subcommand routes through the public API — the
:class:`repro.api.AuditService` facade — so the CLI is a thin shell over
exactly what a web tier would call; ``--json`` on the query subcommands
prints the typed response's ``to_dict()`` form instead of text.

Subcommands mirror the system's lifecycle:

* ``generate`` — simulate a CareWeb-like week and save it as CSVs;
* ``groups``   — infer collaborative groups from a saved database;
* ``mine``     — mine explanation templates and print them as SQL;
* ``explain``  — explain one access, or print a patient's access report;
* ``audit``    — print the compliance summary and the unexplained queue;
* ``evaluate`` — run the paper's headline coverage measurement;
* ``serve``    — expose the service as the v1 HTTP/NDJSON wire API;
* ``lint``     — run the repro-lint invariant checkers over the tree.

Example session::

    repro-audit generate --out hospital/ --scale small
    repro-audit groups --db hospital/
    repro-audit mine --db hospital/ --support 0.01 --max-length 4
    repro-audit explain --db hospital/ --patient p00017
    repro-audit audit --db hospital/ --json
    repro-audit audit --db hospital/ --backend sqlite --db-path audit.db
"""

from __future__ import annotations

import argparse
import json
import sys

from .api import (
    AuditConfig,
    AuditService,
    ExplainRequest,
    MineRequest,
    TemplateLibrary,
    load_database,
    open_service,
    save_database,
    with_careweb_description,
    write_report,
)
from .ehr import SimulationConfig, simulate


def _templates_for(db, templates_path: str | None):
    """The template set to apply: a reviewed library when given, else None
    (the service resolves None to the standard hand-crafted set).  From a
    library, approved templates are used; when nothing is approved yet,
    suggested ones are (with a note).
    """
    if templates_path is None:
        return None
    library = TemplateLibrary.load(templates_path)
    templates, fallback = library.production_templates()
    if fallback:
        print(
            f"note: no approved templates in {templates_path}; "
            "using all suggested ones"
        )
    return templates


def _print_json(payload) -> None:
    print(json.dumps(payload, indent=2, default=str))


def cmd_generate(args: argparse.Namespace) -> int:
    """``generate``: simulate a hospital week and save it as CSVs."""
    presets = {
        "tiny": SimulationConfig.tiny,
        "small": SimulationConfig.small,
        "benchmark": SimulationConfig.benchmark,
    }
    config = presets[args.scale](seed=args.seed)
    result = simulate(config)
    save_database(result.db, args.out)
    print(result.summary())
    print(f"saved to {args.out}/")
    return 0


def cmd_groups(args: argparse.Namespace) -> int:
    """``groups``: infer collaborative groups and persist the Groups table."""
    service = AuditService.open(
        args.db, templates=(), config=AuditConfig(eager_warm=False)
    )
    groups = service.build_groups(max_depth=args.max_depth)
    save_database(service.db, args.db)
    print(
        f"built {groups.group_rows} group rows over "
        f"{groups.users} users "
        f"(hierarchy depth {groups.max_depth}, "
        f"user-patient density {groups.density:.5f})"
    )
    for depth in range(min(groups.max_depth, 2) + 1):
        print(f"  depth {depth}: {groups.groups_per_depth[depth]} groups")
    return 0


def cmd_mine(args: argparse.Namespace) -> int:
    """``mine``: run a mining algorithm and print/save the templates."""
    service = AuditService.open(
        args.db, templates=(), config=AuditConfig(eager_warm=False)
    )
    result = service.mine(
        MineRequest(
            algorithm=args.algorithm,
            support_fraction=args.support,
            max_length=args.max_length,
            max_tables=args.max_tables,
            bridge_length=args.bridge_length,
        )
    )
    if args.json:
        _print_json(result.to_dict())
    else:
        print(
            f"{result.algorithm}: {len(result.templates)} templates "
            f"(support threshold {result.threshold:.1f} accesses); "
            f"{result.support_stats['queries_run']} support queries, "
            f"{result.support_stats['skipped']} skipped, "
            f"{result.support_stats['cache_hits']} cache hits"
        )
        for mined in result.templates:
            print(f"\n-- length {mined.length}, support {mined.support}")
            print(mined.sql)
    if args.save:
        result.library().save(args.save)
        if not args.json:
            print(
                f"\nsaved {len(result.templates)} suggested templates to "
                f"{args.save} (review, set '-- status: approved', then pass "
                f"--templates to explain/audit)"
            )
    if args.save_json:
        result.library().dump(args.save_json)
        if not args.json:
            print(
                f"\nsaved {len(result.templates)} suggested templates to "
                f"{args.save_json} (versioned JSON library)"
            )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """``explain``: explain one access or render a patient's report."""
    templates = _templates_for(args.db, args.templates)
    if templates is not None:
        # library templates usually carry no description; attach the
        # CareWeb natural-language phrasing so instances render readably
        templates = [with_careweb_description(t) for t in templates]
    service = AuditService.open(
        args.db,
        templates=templates,
        config=AuditConfig(eager_warm=False, **_backend_config(args)),
    )
    if args.patient:
        if args.json:
            _print_json(
                service.patient_report(args.patient, limit=args.limit).to_dict()
            )
        else:
            print(service.render_patient_report(args.patient, limit=args.limit))
        return 0
    if args.lid is None:
        print("provide --lid or --patient", file=sys.stderr)
        return 2
    result = service.explain(ExplainRequest(lid=args.lid))
    if args.json:
        _print_json(result.to_dict())
        return 0 if result.explained else 1
    if not result.explained:
        print(f"access {args.lid}: NO explanation found (flag for review)")
        return 1
    print(f"access {args.lid}: {len(result.explanations)} explanation(s)")
    for view in result.explanations:
        print(f"  [len {view.path_length}] {view.text}")
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    """``audit``: compliance summary plus the unexplained queue.

    ``--batch`` (default) evaluates every template once as a set-at-a-time
    semijoin over the whole log; ``--no-batch`` keeps the per-template
    point path.  Both produce identical output — the toggle exists so
    either path is selectable and testable end to end.

    ``--resumable`` builds the identical report as a sequence of bounded
    scan slices (``--page-rows`` per slice, optionally ``--quantum-ms``
    of wall clock) instead of one monolithic evaluation — each slice its
    own short lock hold, the preemptable path a busy deployment serves
    over ``GET /v1/scan``.
    """
    config = AuditConfig(
        use_batch_path=args.batch,
        shards=args.shards,
        executor_kind=args.executor_kind,
        **_backend_config(args),
    )
    with open_service(
        args.db, templates=_templates_for(args.db, args.templates), config=config
    ) as service:
        if args.resumable:
            report = service.scan_report(
                page_rows=args.page_rows,
                quantum_seconds=(
                    None if args.quantum_ms is None else args.quantum_ms / 1000.0
                ),
            )
        else:
            report = service.report()
    if args.json:
        payload = report.to_dict()
        payload["queue"] = payload["queue"][: args.limit]
        payload["user_risk"] = payload["user_risk"][: args.limit]
        _print_json(payload)
        return 0
    print(report.summary())
    print(f"\ntop unexplained accesses (showing up to {args.limit}):")
    for entry in report.queue[: args.limit]:
        print(f"  {entry.lid}  {entry.date}  {entry.user} -> {entry.patient}")
    print("\nusers by unexplained-access count:")
    for user, count in report.user_risk[: args.limit]:
        print(f"  {user}: {count}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    """``evaluate``: the paper's headline coverage measurement."""
    config = AuditConfig(
        shards=args.shards,
        executor_kind=args.executor_kind,
        **_backend_config(args),
    )
    with open_service(
        args.db, templates=_templates_for(args.db, args.templates), config=config
    ) as service:
        coverage = service.coverage()
        total = service.stats()["log_rows"]
    if args.json:
        _print_json({"coverage": coverage, "total": total})
        return 0
    print(f"explained {coverage:.1%} of {total} accesses")
    print("(paper reports over 94% with groups at depth 1)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: the v1 wire API over an opened service.

    ``--shards N --executor-kind process`` serves the scatter-gather
    backend transparently — the wire contract is identical.  ``--port 0``
    binds an ephemeral port; the ``listening on http://...`` line names
    it (scripts parse that line).  SIGINT/SIGTERM shut down cleanly
    (graceful drain: in-flight requests finish, new dials are refused).

    ``--workers N`` (N > 1) serves a read-only multi-core fleet: one
    port shared via SO_REUSEPORT (or a fork-inherited fd), one service
    replica per worker process, ``/v1/metrics`` aggregated fleet-wide.
    """
    from .server import run_fleet, serve

    config = AuditConfig(
        shards=args.shards,
        executor_kind=args.executor_kind,
        workers=args.workers,
        **_backend_config(args),
    )
    templates = _templates_for(args.db, args.templates)
    # The memory backend loads the CSV directory once here (workers fork
    # the loaded tables); the sqlite backend hands the path through so
    # the service reuses an existing audited --db-path file or builds a
    # private in-memory SQLite database per replica.
    db: str | object = args.db
    if config.backend == "memory":
        db = load_database(args.db, max_rows=config.max_table_rows)
    if config.effective_workers > 1:
        if config.backend == "sqlite" and config.db_path is not None:
            # Materialize the SQLite file(s) once before forking the
            # fleet, so replicas reuse instead of racing to ingest.
            open_service(
                db, templates=templates, config=config.replace(workers=None)
            ).close()
        # Each worker opens its own replica post-fork — never share one
        # live service (thread pools, locks, shard subprocesses) across
        # server processes.
        return run_fleet(
            lambda: open_service(db, templates=templates, config=config),
            host=args.host,
            port=args.port,
            workers=config.effective_workers,
        )
    with open_service(db, templates=templates, config=config) as service:
        return serve(service, host=args.host, port=args.port)


def cmd_reproduce(args: argparse.Namespace) -> int:
    """``reproduce``: run every paper experiment into a markdown report."""
    presets = {
        "tiny": SimulationConfig.tiny,
        "small": SimulationConfig.small,
        "benchmark": SimulationConfig.benchmark,
    }
    config = presets[args.scale](seed=args.seed)
    with open(args.out, "w") as fh:
        write_report(
            fh,
            config=config,
            include_mining_performance=args.with_mining_performance,
        )
    print(f"reproduction report written to {args.out}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """``lint``: the repro-lint static-analysis suite (RL001-RL009).

    A thin delegate to :mod:`repro.analysis` — the same checkers run via
    ``python -m repro.analysis``; this subcommand exists so the whole
    toolkit stays reachable from one binary.
    """
    from .analysis.cli import main as lint_main

    forward = list(args.lint_args)
    if forward[:1] == ["--"]:
        forward = forward[1:]
    return lint_main(forward)


def _add_backend_args(p: argparse.ArgumentParser) -> None:
    """The storage-backend knobs shared by explain/audit/evaluate/serve."""
    p.add_argument(
        "--backend",
        choices=["memory", "sqlite"],
        default="memory",
        help="storage backend: 'memory' audits in the in-memory columnar "
        "engine, 'sqlite' compiles explanation templates to SQL and pushes "
        "them down to SQLite (identical results; lifts the RAM cap)",
    )
    p.add_argument(
        "--db-path",
        default=None,
        help="SQLite database file for --backend sqlite (default: private "
        "in-memory SQLite); an existing audited file is reused without "
        "re-ingesting, and a sharded service derives one file per shard",
    )
    p.add_argument(
        "--max-table-rows",
        type=int,
        default=None,
        help="row cap per in-memory table under --backend memory (exceeding "
        "it raises CapacityError pointing at --backend sqlite); default "
        "uncapped, ignored under --backend sqlite",
    )


def _backend_config(args: argparse.Namespace) -> dict:
    """AuditConfig kwargs from the :func:`_add_backend_args` flags."""
    return {
        "backend": args.backend,
        "db_path": args.db_path,
        "max_table_rows": args.max_table_rows,
    }


def _add_sharding_args(p: argparse.ArgumentParser) -> None:
    """The scatter-gather knobs shared by audit/evaluate."""
    p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="hash-partition the log by patient into N shards and "
        "scatter-gather evaluation over them (1 = single-node service)",
    )
    p.add_argument(
        "--executor-kind",
        choices=["thread", "process"],
        default="thread",
        help="shard executor: 'thread' keeps shards in-process, "
        "'process' pins each shard to its own worker process "
        "(multi-core evaluation)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (one subparser per subcommand)."""
    parser = argparse.ArgumentParser(
        prog="repro-audit",
        description="Explanation-Based Auditing (VLDB 2011) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="simulate a CareWeb-like hospital week")
    p.add_argument("--out", required=True, help="output database directory")
    p.add_argument(
        "--scale", choices=["tiny", "small", "benchmark"], default="small"
    )
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("groups", help="infer collaborative groups")
    p.add_argument("--db", required=True, help="database directory")
    p.add_argument("--max-depth", type=int, default=8)
    p.set_defaults(func=cmd_groups)

    p = sub.add_parser("mine", help="mine explanation templates")
    p.add_argument("--db", required=True)
    p.add_argument("--support", type=float, default=0.01, help="fraction s")
    p.add_argument("--max-length", type=int, default=4, help="M")
    p.add_argument("--max-tables", type=int, default=3, help="T")
    p.add_argument(
        "--algorithm", choices=["one-way", "two-way", "bridge"], default="one-way"
    )
    p.add_argument("--bridge-length", type=int, default=2)
    p.add_argument(
        "--save", help="write mined templates to a reviewable SQL library"
    )
    p.add_argument(
        "--save-json",
        help="write mined templates to a versioned JSON library "
        "(TemplateLibrary.dump)",
    )
    p.add_argument(
        "--json", action="store_true", help="print the MineResult as JSON"
    )
    p.set_defaults(func=cmd_mine)

    p = sub.add_parser("explain", help="explain an access / patient report")
    p.add_argument("--db", required=True)
    p.add_argument("--lid", type=int, help="log id to explain")
    p.add_argument("--patient", help="print this patient's access report")
    p.add_argument("--limit", type=int, default=20)
    p.add_argument("--templates", help="reviewed SQL/JSON template library")
    _add_backend_args(p)
    p.add_argument(
        "--json", action="store_true", help="print the typed result as JSON"
    )
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("audit", help="compliance summary + unexplained queue")
    p.add_argument("--db", required=True)
    p.add_argument("--limit", type=int, default=10)
    p.add_argument("--templates", help="reviewed SQL/JSON template library")
    _add_sharding_args(p)
    _add_backend_args(p)
    p.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="evaluate templates set-at-a-time via batch semijoins "
        "(--no-batch keeps the per-template point path)",
    )
    p.add_argument(
        "--json", action="store_true", help="print the AuditReport as JSON"
    )
    p.add_argument(
        "--resumable",
        action="store_true",
        help="build the (identical) report as bounded, suspendable scan "
        "slices instead of one monolithic evaluation",
    )
    p.add_argument(
        "--page-rows",
        type=int,
        default=None,
        help="row budget per resumable-scan slice "
        "(default: AuditConfig.scan_page_rows)",
    )
    p.add_argument(
        "--quantum-ms",
        type=int,
        default=None,
        help="wall-clock budget per resumable-scan slice, milliseconds "
        "(default: row-bounded only)",
    )
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("evaluate", help="headline coverage measurement")
    p.add_argument("--db", required=True)
    p.add_argument("--templates", help="reviewed SQL/JSON template library")
    _add_sharding_args(p)
    _add_backend_args(p)
    p.add_argument(
        "--json", action="store_true", help="print coverage as JSON"
    )
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("serve", help="serve the v1 HTTP/NDJSON wire API")
    p.add_argument("--db", required=True, help="database directory")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8080,
        help="listening port (0 binds an ephemeral one, printed on stdout)",
    )
    p.add_argument("--templates", help="reviewed SQL/JSON template library")
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes sharing the port (default 1; >1 serves a "
        "read-only fleet via SO_REUSEPORT with fleet-merged /v1/metrics)",
    )
    _add_sharding_args(p)
    _add_backend_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "lint",
        help="run the repro-lint invariant checkers (RL001-RL009)",
        description="Forwards every argument to the repro-lint CLI; "
        "try `repro-audit lint -- --list-rules`.",
    )
    p.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to repro-lint (prefix with -- to pass flags)",
    )
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "reproduce", help="run every paper experiment into a markdown report"
    )
    p.add_argument("--out", required=True, help="output markdown path")
    p.add_argument(
        "--scale", choices=["tiny", "small", "benchmark"], default="small"
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--with-mining-performance",
        action="store_true",
        help="include the (slow) Figure 13 five-algorithm sweep",
    )
    p.set_defaults(func=cmd_reproduce)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
