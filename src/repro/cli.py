"""Command-line interface: ``python -m repro`` / ``repro-audit``.

Subcommands mirror the system's lifecycle:

* ``generate`` — simulate a CareWeb-like week and save it as CSVs;
* ``groups``   — infer collaborative groups from a saved database;
* ``mine``     — mine explanation templates and print them as SQL;
* ``explain``  — explain one access, or print a patient's access report;
* ``audit``    — print the compliance summary and the unexplained queue;
* ``evaluate`` — run the paper's headline coverage measurement.

Example session::

    repro-audit generate --out hospital/ --scale small
    repro-audit groups --db hospital/
    repro-audit mine --db hospital/ --support 0.01 --max-length 4
    repro-audit explain --db hospital/ --patient p00017
    repro-audit audit --db hospital/
"""

from __future__ import annotations

import argparse
import sys

from .audit.handcrafted import (
    all_event_user_templates,
    dataset_a_doctor_templates,
    group_templates,
    repeat_access_template,
)
from .audit.nl import with_careweb_description
from .audit.portal import PatientPortal
from .audit.report import ComplianceAuditor
from .core.engine import ExplanationEngine
from .core.mining import BridgedMiner, MiningConfig, OneWayMiner, TwoWayMiner
from .db.csvio import load_database, save_database
from .ehr.config import SimulationConfig
from .ehr.schema import build_careweb_graph
from .ehr.simulator import simulate
from .groups.hierarchy import build_groups_table, hierarchy_from_log


def _standard_templates(db, include_groups: bool = True):
    graph = build_careweb_graph(db)
    templates = dataset_a_doctor_templates(graph)
    templates.extend(all_event_user_templates(graph))
    templates.append(repeat_access_template(graph))
    if include_groups and db.has_table("Groups"):
        templates.extend(group_templates(graph, depth=1))
    return templates


def _templates_for(db, templates_path: str | None):
    """The template set to apply: a reviewed library when given, else the
    standard hand-crafted set.  From a library, approved templates are
    used; when nothing is approved yet, suggested ones are (with a note).
    """
    if templates_path is None:
        return _standard_templates(db)
    from .core.library import ReviewStatus, TemplateLibrary

    library = TemplateLibrary.load(templates_path)
    approved = library.approved_templates()
    if approved:
        return approved
    print(
        f"note: no approved templates in {templates_path}; "
        "using all suggested ones"
    )
    return [e.template for e in library.entries(ReviewStatus.SUGGESTED)]


def cmd_generate(args: argparse.Namespace) -> int:
    """``generate``: simulate a hospital week and save it as CSVs."""
    presets = {
        "tiny": SimulationConfig.tiny,
        "small": SimulationConfig.small,
        "benchmark": SimulationConfig.benchmark,
    }
    config = presets[args.scale](seed=args.seed)
    result = simulate(config)
    save_database(result.db, args.out)
    print(result.summary())
    print(f"saved to {args.out}/")
    return 0


def cmd_groups(args: argparse.Namespace) -> int:
    """``groups``: infer collaborative groups and persist the Groups table."""
    db = load_database(args.db)
    hierarchy, access = hierarchy_from_log(db, max_depth=args.max_depth)
    build_groups_table(db, hierarchy)
    save_database(db, args.db)
    print(
        f"built {len(hierarchy.rows())} group rows over "
        f"{len(hierarchy.users())} users "
        f"(hierarchy depth {hierarchy.max_depth}, "
        f"user-patient density {access.density():.5f})"
    )
    for depth in range(min(hierarchy.max_depth, 2) + 1):
        print(f"  depth {depth}: {len(hierarchy.groups_at(depth))} groups")
    return 0


def cmd_mine(args: argparse.Namespace) -> int:
    """``mine``: run a mining algorithm and print/save the templates."""
    db = load_database(args.db)
    graph = build_careweb_graph(db)
    config = MiningConfig(
        support_fraction=args.support,
        max_length=args.max_length,
        max_tables=args.max_tables,
    )
    miners = {
        "one-way": lambda: OneWayMiner(db, graph, config),
        "two-way": lambda: TwoWayMiner(db, graph, config),
        "bridge": lambda: BridgedMiner(
            db, graph, config, bridge_length=args.bridge_length
        ),
    }
    result = miners[args.algorithm]().mine()
    print(
        f"{result.algorithm}: {len(result.templates)} templates "
        f"(support threshold {result.threshold:.1f} accesses); "
        f"{result.support_stats['queries_run']} support queries, "
        f"{result.support_stats['skipped']} skipped, "
        f"{result.support_stats['cache_hits']} cache hits"
    )
    for mined in result.templates:
        print(f"\n-- length {mined.length}, support {mined.support}")
        print(mined.template.to_sql())
    if args.save:
        from .core.library import TemplateLibrary

        TemplateLibrary.from_mining_result(result).save(args.save)
        print(
            f"\nsaved {len(result.templates)} suggested templates to "
            f"{args.save} (review, set '-- status: approved', then pass "
            f"--templates to explain/audit)"
        )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """``explain``: explain one access or render a patient's report."""
    db = load_database(args.db)
    engine = ExplanationEngine(
        db,
        [with_careweb_description(t) for t in _templates_for(db, args.templates)],
    )
    if args.patient:
        print(PatientPortal(engine).render(args.patient, limit=args.limit))
        return 0
    if args.lid is None:
        print("provide --lid or --patient", file=sys.stderr)
        return 2
    instances = engine.explain(args.lid)
    if not instances:
        print(f"access {args.lid}: NO explanation found (flag for review)")
        return 1
    print(f"access {args.lid}: {len(instances)} explanation(s)")
    for inst in instances:
        print(f"  [len {inst.path_length}] {inst.render()}")
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    """``audit``: compliance summary plus the unexplained queue.

    ``--batch`` (default) evaluates every template once as a set-at-a-time
    semijoin over the whole log (``ExplanationEngine.explain_all``);
    ``--no-batch`` keeps the per-template point path.  Both produce
    identical output — the toggle exists so either path is selectable and
    testable end to end.  (Streamed batches have the equivalent switch on
    ``AccessMonitor(batch=...)``.)
    """
    db = load_database(args.db)
    engine = ExplanationEngine(
        db, _templates_for(db, args.templates), use_batch_path=args.batch
    )
    auditor = ComplianceAuditor(engine)
    print(auditor.summary())
    queue = auditor.queue()
    print(f"\ntop unexplained accesses (showing up to {args.limit}):")
    for entry in queue[: args.limit]:
        print(f"  {entry.lid}  {entry.date}  {entry.user} -> {entry.patient}")
    print("\nusers by unexplained-access count:")
    for user, count in auditor.user_risk_ranking()[: args.limit]:
        print(f"  {user}: {count}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    """``evaluate``: the paper's headline coverage measurement."""
    db = load_database(args.db)
    engine = ExplanationEngine(db, _templates_for(db, args.templates))
    coverage = engine.coverage()
    print(f"explained {coverage:.1%} of {len(engine.all_lids())} accesses")
    print("(paper reports over 94% with groups at depth 1)")
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """``reproduce``: run every paper experiment into a markdown report."""
    from .evalx.reportgen import write_report

    presets = {
        "tiny": SimulationConfig.tiny,
        "small": SimulationConfig.small,
        "benchmark": SimulationConfig.benchmark,
    }
    config = presets[args.scale](seed=args.seed)
    with open(args.out, "w") as fh:
        write_report(
            fh,
            config=config,
            include_mining_performance=args.with_mining_performance,
        )
    print(f"reproduction report written to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (one subparser per subcommand)."""
    parser = argparse.ArgumentParser(
        prog="repro-audit",
        description="Explanation-Based Auditing (VLDB 2011) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="simulate a CareWeb-like hospital week")
    p.add_argument("--out", required=True, help="output database directory")
    p.add_argument(
        "--scale", choices=["tiny", "small", "benchmark"], default="small"
    )
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("groups", help="infer collaborative groups")
    p.add_argument("--db", required=True, help="database directory")
    p.add_argument("--max-depth", type=int, default=8)
    p.set_defaults(func=cmd_groups)

    p = sub.add_parser("mine", help="mine explanation templates")
    p.add_argument("--db", required=True)
    p.add_argument("--support", type=float, default=0.01, help="fraction s")
    p.add_argument("--max-length", type=int, default=4, help="M")
    p.add_argument("--max-tables", type=int, default=3, help="T")
    p.add_argument(
        "--algorithm", choices=["one-way", "two-way", "bridge"], default="one-way"
    )
    p.add_argument("--bridge-length", type=int, default=2)
    p.add_argument(
        "--save", help="write mined templates to a reviewable SQL library"
    )
    p.set_defaults(func=cmd_mine)

    p = sub.add_parser("explain", help="explain an access / patient report")
    p.add_argument("--db", required=True)
    p.add_argument("--lid", type=int, help="log id to explain")
    p.add_argument("--patient", help="print this patient's access report")
    p.add_argument("--limit", type=int, default=20)
    p.add_argument("--templates", help="reviewed SQL template library")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("audit", help="compliance summary + unexplained queue")
    p.add_argument("--db", required=True)
    p.add_argument("--limit", type=int, default=10)
    p.add_argument("--templates", help="reviewed SQL template library")
    p.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="evaluate templates set-at-a-time via batch semijoins "
        "(--no-batch keeps the per-template point path)",
    )
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("evaluate", help="headline coverage measurement")
    p.add_argument("--db", required=True)
    p.add_argument("--templates", help="reviewed SQL template library")
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser(
        "reproduce", help="run every paper experiment into a markdown report"
    )
    p.add_argument("--out", required=True, help="output markdown path")
    p.add_argument(
        "--scale", choices=["tiny", "small", "benchmark"], default="small"
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--with-mining-performance",
        action="store_true",
        help="include the (slow) Figure 13 five-algorithm sweep",
    )
    p.set_defaults(func=cmd_reproduce)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
