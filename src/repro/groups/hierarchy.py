"""Hierarchical collaborative groups and the Groups table (Section 4.1).

"After running the clustering algorithm once, the algorithm outputs a set
of clusters ... We can recursively apply the clustering algorithm on each
cluster to produce a hierarchical clustering."  Depth 0 is the naive
everyone-in-one-group baseline of Figure 12; depth 1 is the first real
clustering; deeper levels recursively re-cluster each group's induced
subgraph until groups stop splitting (or ``max_depth`` is hit — the
paper's study "ended up with an 8-level hierarchy").

The result is materialized as the relational table
``Groups(Group_Depth, Group_id, User)`` with *globally unique* group ids,
so the mining self-join ``G1.Group_id = G2.Group_id`` can never relate
users across depths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import Any

import numpy as np

from ..db.database import Database
from ..db.schema import ColumnType, TableSchema
from ..db.table import Table
from .clustering import cluster_graph
from .matrix import AccessMatrix, access_matrix_from_log, similarity_graph


@dataclass
class GroupHierarchy:
    """Per-depth user-to-group assignments with globally unique group ids."""

    #: ``levels[d][user] -> group id`` for depth d (0 = everyone together).
    levels: list[dict[Any, int]] = field(default_factory=list)

    @property
    def max_depth(self) -> int:
        """Deepest level materialized (0 = single all-users group)."""
        return len(self.levels) - 1

    def users(self) -> set:
        """Every user assigned anywhere in the hierarchy."""
        return set(self.levels[0]) if self.levels else set()

    def group_of(self, user: Any, depth: int) -> int | None:
        """Group id of ``user`` at ``depth`` (None when out of range)."""
        if depth < 0 or depth > self.max_depth:
            return None
        return self.levels[depth].get(user)

    def groups_at(self, depth: int) -> dict[int, list]:
        """``{group id: sorted members}`` at one depth."""
        out: dict[int, list] = {}
        for user, gid in self.levels[depth].items():
            out.setdefault(gid, []).append(user)
        return {gid: sorted(members, key=repr) for gid, members in out.items()}

    def rows(self) -> list[tuple[int, int, Any]]:
        """All ``(Group_Depth, Group_id, User)`` rows."""
        out = []
        for depth, level in enumerate(self.levels):
            for user, gid in sorted(level.items(), key=lambda kv: repr(kv[0])):
                out.append((depth, gid, user))
        return out


def build_hierarchy(
    adjacency: Mapping[Any, Mapping[Any, float]],
    max_depth: int = 8,
    min_group_size: int = 2,
    rng: np.random.Generator | None = None,
) -> GroupHierarchy:
    """Recursively cluster ``adjacency`` into a group hierarchy.

    Depth 0 puts every user in one group; each deeper level re-clusters
    every group of the previous level on its induced subgraph.  Recursion
    stops per-group when the group no longer splits or falls below
    ``min_group_size``; globally when ``max_depth`` is reached or no group
    split anywhere.  Once a group stops splitting it is carried down
    unchanged so every user has an assignment at every depth.
    """
    users = sorted(adjacency, key=repr)
    hierarchy = GroupHierarchy()
    next_gid = 0

    level0 = {user: 0 for user in users}
    next_gid = 1
    hierarchy.levels.append(level0)

    frozen: set[int] = set()  # groups that stopped splitting
    for _depth in range(1, max_depth + 1):
        previous = hierarchy.levels[-1]
        members_of: dict[int, list] = {}
        for user, gid in previous.items():
            members_of.setdefault(gid, []).append(user)
        new_level: dict[Any, int] = {}
        split_any = False
        new_frozen: set[int] = set()
        for gid, members in sorted(members_of.items()):
            if gid in frozen or len(members) < min_group_size:
                kept = next_gid
                next_gid += 1
                for user in members:
                    new_level[user] = kept
                new_frozen.add(kept)
                continue
            sub = {
                u: {
                    v: w
                    for v, w in adjacency[u].items()
                    if v in members or v == u
                }
                for u in members
            }
            # keep only intra-group edges
            sub = {
                u: {v: w for v, w in nbrs.items() if v in sub}
                for u, nbrs in sub.items()
            }
            partition = cluster_graph(sub, rng=rng)
            n_parts = len(set(partition.values()))
            base = next_gid
            next_gid += n_parts
            for user in members:
                new_level[user] = base + partition[user]
            if n_parts <= 1:
                new_frozen.add(base)
            else:
                split_any = True
        hierarchy.levels.append(new_level)
        frozen = new_frozen
        if not split_any:
            break
    return hierarchy


def hierarchy_from_log(
    db: Database,
    log_table: str = "Log",
    max_depth: int = 8,
    rng: np.random.Generator | None = None,
) -> tuple[GroupHierarchy, AccessMatrix]:
    """End-to-end: access matrix -> W = AᵀA -> recursive clustering."""
    access = access_matrix_from_log(db, log_table)
    adjacency = similarity_graph(access)
    return build_hierarchy(adjacency, max_depth=max_depth, rng=rng), access


GROUPS_SCHEMA = TableSchema.build(
    "Groups",
    [("Group_Depth", ColumnType.INT), ("Group_id", ColumnType.INT), "User"],
)


def build_groups_table(
    db: Database, hierarchy: GroupHierarchy, table_name: str = "Groups"
) -> Table:
    """Materialize the hierarchy as ``Groups(Group_Depth, Group_id, User)``
    inside ``db`` (replacing any existing table of that name), so the
    mining algorithms can self-join on ``Group_id`` (paper Example 4.2)."""
    if db.has_table(table_name):
        db.drop_table(table_name)
    schema = TableSchema.build(
        table_name,
        [("Group_Depth", ColumnType.INT), ("Group_id", ColumnType.INT), "User"],
    )
    table = db.create_table(schema)
    table.insert_many(hierarchy.rows())
    return table
