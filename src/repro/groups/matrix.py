"""The patient-user access matrix and user-similarity graph (Section 4.1).

Following the paper (and Chen et al. [10]): for a log with *m* patients
and *n* users, build the m×n matrix

    A[i, j] = 1 / (# users who accessed patient i's record)   if user j
              accessed patient i, else 0,

then ``W = AᵀA`` gives pairwise user similarity — how much two users'
access patterns overlap, discounted by how widely each record is shared.
The weighted, undirected user graph derived from W (diagonal dropped) is
the clustering input.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping
from typing import Any

import numpy as np
from scipy import sparse

from ..db.database import Database
from ..db.table import Table


@dataclass(frozen=True)
class AccessMatrix:
    """The A matrix plus its row/column labelings."""

    patients: tuple
    users: tuple
    matrix: sparse.csr_matrix  # m x n

    @property
    def shape(self) -> tuple[int, int]:
        """(n patients, n users) of the access matrix."""
        return self.matrix.shape

    def density(self) -> float:
        """User-patient density |pairs| / (|users|·|patients|) — the paper
        reports 0.0003 for CareWeb and leans on its smallness for
        precision (Section 5.3.4)."""
        m, n = self.matrix.shape
        if m == 0 or n == 0:
            return 0.0
        return self.matrix.nnz / (m * n)


def build_access_matrix(
    accesses: Iterable[tuple[Any, Any]],
) -> AccessMatrix:
    """Build A from ``(user, patient)`` pairs (duplicates collapse: the
    paper "only considers if a user accesses the record", not how often).
    """
    pairs = {(user, patient) for user, patient in accesses}
    users = tuple(sorted({u for u, _ in pairs}))
    patients = tuple(sorted({p for _, p in pairs}))
    user_index = {u: j for j, u in enumerate(users)}
    patient_index = {p: i for i, p in enumerate(patients)}

    counts = np.zeros(len(patients), dtype=np.int64)
    for _, patient in pairs:
        counts[patient_index[patient]] += 1

    rows, cols, vals = [], [], []
    for user, patient in pairs:
        i = patient_index[patient]
        rows.append(i)
        cols.append(user_index[user])
        vals.append(1.0 / counts[i])
    matrix = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(len(patients), len(users))
    )
    return AccessMatrix(patients=patients, users=users, matrix=matrix)


def access_matrix_from_log(
    db: Database,
    log_table: str = "Log",
    user_attr: str = "User",
    patient_attr: str = "Patient",
) -> AccessMatrix:
    """Build A straight from an access-log table."""
    table: Table = db.table(log_table)
    ui = table.schema.column_index(user_attr)
    pi = table.schema.column_index(patient_attr)
    return build_access_matrix((row[ui], row[pi]) for row in table.rows())


def similarity_graph(
    access: AccessMatrix, drop_below: float = 0.0
) -> dict[Any, dict[Any, float]]:
    """``W = AᵀA`` as a symmetric adjacency mapping, diagonal removed.

    ``drop_below`` filters numerically negligible co-access weights (0
    keeps everything non-zero).
    """
    w = (access.matrix.T @ access.matrix).tocoo()
    adjacency: dict[Any, dict[Any, float]] = {u: {} for u in access.users}
    for i, j, value in zip(w.row, w.col, w.data):
        if i == j or value <= drop_below:
            continue
        u, v = access.users[i], access.users[j]
        adjacency[u][v] = float(value)
    return adjacency


def node_weights(adjacency: Mapping[Any, Mapping[Any, float]]) -> dict[Any, float]:
    """Node weight = sum of incident edge weights (paper Section 4.1)."""
    return {u: float(sum(nbrs.values())) for u, nbrs in adjacency.items()}
