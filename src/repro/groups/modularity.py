"""Weighted graph modularity (Newman 2004), implemented from scratch.

The paper clusters the user-similarity graph with "an algorithm that
attempts to maximize the graph modularity measure [21]" (M. Newman,
*Analysis of weighted networks*, Phys. Rev. E 70, 2004).  For a weighted
undirected graph with adjacency ``w`` and a partition ``c``:

    Q = (1 / 2m) * sum_ij [ w_ij - k_i * k_j / 2m ] * delta(c_i, c_j)

where ``k_i`` is the weighted degree of node *i* and ``2m`` the total
degree.  This module provides the exact objective (used as the test/
property oracle) — the greedy optimizer lives in :mod:`.clustering`.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from typing import Any


def total_weight(adjacency: Mapping[Any, Mapping[Any, float]]) -> float:
    """``m``: the sum of undirected edge weights (each edge once)."""
    seen = 0.0
    for u, nbrs in adjacency.items():
        for v, w in nbrs.items():
            if u == v:
                seen += 2.0 * w  # a self-loop contributes its weight fully
            else:
                seen += w
    return seen / 2.0


def degrees(adjacency: Mapping[Any, Mapping[Any, float]]) -> dict[Any, float]:
    """Weighted degree per node; self-loops count twice, per convention."""
    out: dict[Any, float] = {}
    for u, nbrs in adjacency.items():
        k = 0.0
        for v, w in nbrs.items():
            k += 2.0 * w if u == v else w
        out[u] = k
    return out


def modularity(
    adjacency: Mapping[Any, Mapping[Any, float]],
    partition: Mapping[Any, Hashable],
) -> float:
    """Exact weighted modularity Q of ``partition`` over ``adjacency``.

    ``partition`` maps every node to a community label.  Isolated nodes
    (no incident weight) contribute nothing.
    """
    m = total_weight(adjacency)
    if m <= 0:
        return 0.0
    deg = degrees(adjacency)
    # intra-community edge weight (each undirected edge once; loops once)
    intra: dict[Hashable, float] = {}
    deg_sum: dict[Hashable, float] = {}
    for u, k in deg.items():
        community = partition[u]
        deg_sum[community] = deg_sum.get(community, 0.0) + k
    counted: set[tuple] = set()
    for u, nbrs in adjacency.items():
        for v, w in nbrs.items():
            if partition[u] != partition[v]:
                continue
            key = (u, v) if repr(u) <= repr(v) else (v, u)
            if key in counted:
                continue
            counted.add(key)
            intra[partition[u]] = intra.get(partition[u], 0.0) + w
    q = 0.0
    for community, k_sum in deg_sum.items():
        e_in = intra.get(community, 0.0)
        q += e_in / m - (k_sum / (2.0 * m)) ** 2
    return q
