"""Collaborative-group inference (paper Section 4).

Pipeline: access log -> patient-user matrix ``A`` -> user-similarity
``W = AᵀA`` -> weighted-modularity clustering (from scratch) -> recursive
hierarchy -> the relational ``Groups(Group_Depth, Group_id, User)`` table
that mining self-joins against.
"""

from .baselines import (
    department_grouping,
    pair_scores,
    partition_sizes,
    threshold_components,
)
from .clustering import cluster_graph
from .hierarchy import (
    GROUPS_SCHEMA,
    GroupHierarchy,
    build_groups_table,
    build_hierarchy,
    hierarchy_from_log,
)
from .matrix import (
    AccessMatrix,
    access_matrix_from_log,
    build_access_matrix,
    node_weights,
    similarity_graph,
)
from .modularity import degrees, modularity, total_weight

__all__ = [
    "GROUPS_SCHEMA",
    "AccessMatrix",
    "GroupHierarchy",
    "access_matrix_from_log",
    "build_access_matrix",
    "build_groups_table",
    "build_hierarchy",
    "cluster_graph",
    "degrees",
    "department_grouping",
    "hierarchy_from_log",
    "modularity",
    "node_weights",
    "pair_scores",
    "partition_sizes",
    "similarity_graph",
    "threshold_components",
    "total_weight",
]
