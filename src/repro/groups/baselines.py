"""Alternative group-inference baselines.

The paper (Section 4) treats the clustering step as a black box: "there
has been extensive work on clustering [13, 27], and alternative
approaches are possible."  This module provides two simple alternatives
so the modularity algorithm can be compared like-for-like:

* **threshold components** — drop similarity edges below a weight
  threshold and take connected components (the simplest co-access
  grouping);
* **department grouping** — one group per department code (the paper's
  Same-Dept. strawman of Figure 12, expressed in the same interface).

All three produce ``{user: group_index}`` partitions interchangeable with
:func:`repro.groups.cluster_graph`, so they can feed
:func:`repro.groups.build_hierarchy`-style pipelines or be scored with
:func:`repro.groups.modularity`.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any


def threshold_components(
    adjacency: Mapping[Any, Mapping[Any, float]],
    threshold: float = 0.0,
) -> dict:
    """Connected components of the similarity graph after dropping edges
    with weight <= ``threshold``.  Labels are dense, in sorted-node order
    of first appearance (same convention as ``cluster_graph``)."""
    nodes = sorted(adjacency, key=repr)
    label: dict = {}
    next_label = 0
    for root in nodes:
        if root in label:
            continue
        label[root] = next_label
        stack = [root]
        while stack:
            node = stack.pop()
            for nbr, weight in adjacency.get(node, {}).items():
                if nbr == node or weight <= threshold:
                    continue
                if nbr not in label:
                    label[nbr] = next_label
                    stack.append(nbr)
        next_label += 1
    return label


def department_grouping(department_of: Mapping[Any, Any]) -> dict:
    """One group per department code (the paper's Same-Dept. baseline)."""
    labels: dict = {}
    out: dict = {}
    for user in sorted(department_of, key=repr):
        dept = department_of[user]
        if dept not in labels:
            labels[dept] = len(labels)
        out[user] = labels[dept]
    return out


def partition_sizes(partition: Mapping[Any, int]) -> dict[int, int]:
    """Group-size histogram of a partition."""
    out: dict[int, int] = {}
    for label in partition.values():
        out[label] = out.get(label, 0) + 1
    return out


def pair_scores(
    partition: Mapping[Any, int],
    ground_truth: Mapping[Any, frozenset],
) -> tuple[float, float]:
    """Pair-level (precision, recall) of a partition against overlapping
    ground-truth memberships (``user -> set of true team ids``).

    A user pair counts as truly-together when their team sets intersect;
    as predicted-together when they share a partition label.
    """
    users = sorted(set(partition) & set(ground_truth), key=repr)
    together = predicted = both = 0
    for i, u in enumerate(users):
        for v in users[i + 1:]:
            true_pair = bool(ground_truth[u] & ground_truth[v])
            pred_pair = partition[u] == partition[v]
            together += true_pair
            predicted += pred_pair
            both += true_pair and pred_pair
    precision = both / predicted if predicted else 0.0
    recall = both / together if together else 0.0
    return precision, recall
