"""Greedy weighted-modularity clustering (Louvain-style), from scratch.

Two-phase iteration (Blondel et al.'s method applied to Newman's weighted
modularity, which is what the paper's Java implementation optimized):

1. **Local moving** — repeatedly sweep the nodes; move each node to the
   neighbouring community with the largest positive modularity gain.
2. **Aggregation** — collapse communities into supernodes (intra-community
   weight becomes a self-loop) and repeat on the coarser graph.

The algorithm is parameter-free — it picks the number of clusters itself —
matching the paper's "the algorithm ... selects the number of clusters
automatically".  Determinism: nodes are swept in sorted order and ties
break towards the first (smallest-keyed) candidate community, so repeated
runs agree exactly; pass a seeded RNG to randomize sweep order instead.

Graph convention: ``adjacency[u][v]`` is the symmetric edge weight; a
self-loop is stored once under ``adjacency[u][u]`` and contributes twice
to the weighted degree, so ``2m == sum(degrees)`` always holds.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

import numpy as np

from .modularity import degrees, total_weight


def _local_move(
    nodes: list,
    adjacency: Mapping[Any, Mapping[Any, float]],
    m: float,
    community: dict,
    deg: Mapping[Any, float],
) -> bool:
    """One local-moving phase (sweeps until stable); True if anything moved."""
    community_degree: dict = {}
    for node, label in community.items():
        community_degree[label] = community_degree.get(label, 0.0) + deg[node]

    improved_any = False
    moved = True
    while moved:
        moved = False
        for node in nodes:
            home = community[node]
            k_i = deg[node]
            link: dict = {}
            for nbr, w in adjacency[node].items():
                if nbr == node:
                    continue
                link[community[nbr]] = link.get(community[nbr], 0.0) + w
            community_degree[home] -= k_i
            stay_gain = link.get(home, 0.0) - community_degree[home] * k_i / (2.0 * m)
            best_label, best_delta = home, 0.0
            for label, w_in in sorted(link.items(), key=lambda kv: repr(kv[0])):
                if label == home:
                    continue
                gain = w_in - community_degree.get(label, 0.0) * k_i / (2.0 * m)
                delta = gain - stay_gain
                if delta > best_delta + 1e-12:
                    best_delta = delta
                    best_label = label
            community_degree[best_label] = (
                community_degree.get(best_label, 0.0) + k_i
            )
            if best_label != home:
                community[node] = best_label
                moved = True
                improved_any = True
    return improved_any


def _fold(
    adjacency: Mapping[Any, Mapping[Any, float]], community: Mapping[Any, Any]
) -> dict:
    """Collapse communities into supernodes.

    Inter-community weight sums edge weights; intra-community weight
    becomes a self-loop holding each distinct-pair edge once plus any
    original loops, which preserves total weight and degrees.
    """
    coarse: dict = {}
    for u, nbrs in adjacency.items():
        cu = community[u]
        row = coarse.setdefault(cu, {})
        for v, w in nbrs.items():
            cv = community[v]
            if u == v:
                row[cu] = row.get(cu, 0.0) + w
            elif cu == cv:
                # the symmetric dict yields this edge from both endpoints
                row[cu] = row.get(cu, 0.0) + w / 2.0
            else:
                row[cv] = row.get(cv, 0.0) + w
    return coarse


def cluster_graph(
    adjacency: Mapping[Any, Mapping[Any, float]],
    rng: np.random.Generator | None = None,
) -> dict:
    """Partition ``adjacency`` by greedy modularity maximization.

    Returns ``{node: community_index}`` with indices densely renumbered
    ``0..k-1`` in sorted-node order of first appearance.  Nodes with no
    incident weight become singleton communities.
    """
    nodes = sorted(adjacency, key=repr)
    if not nodes:
        return {}
    m = total_weight(adjacency)
    if m <= 0:
        return {node: i for i, node in enumerate(nodes)}

    node_to_label = {node: node for node in nodes}
    current: dict = {u: dict(nbrs) for u, nbrs in adjacency.items()}

    while True:
        level_nodes = sorted(current, key=repr)
        if rng is not None:
            shuffled = list(level_nodes)
            rng.shuffle(shuffled)
            level_nodes = shuffled
        deg = degrees(current)
        community = {node: node for node in current}
        improved = _local_move(level_nodes, current, m, community, deg)
        if not improved:
            break
        node_to_label = {
            node: community[label] for node, label in node_to_label.items()
        }
        folded = _fold(current, community)
        if len(folded) == len(current):
            break
        current = folded

    labels: dict = {}
    result: dict = {}
    for node in nodes:
        label = node_to_label[node]
        if label not in labels:
            labels[label] = len(labels)
        result[node] = labels[label]
    return result
