"""One-pass lint driver: parse the tree once, run every checker."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from . import checkers as _checkers  # noqa: F401  (registers the built-ins)
from .diagnostics import Diagnostic, is_suppressed
from .project import Project
from .registry import resolve_checkers


@dataclass(frozen=True)
class LintResult:
    """Everything one run produced, pre-sorted and pre-filtered."""

    diagnostics: tuple[Diagnostic, ...]
    suppressed: int
    files_scanned: int
    rules: tuple[str, ...]

    @property
    def exit_code(self) -> int:
        return 1 if self.diagnostics else 0

    def stats(self) -> dict[str, object]:
        by_code: dict[str, int] = {}
        for diag in self.diagnostics:
            by_code[diag.code] = by_code.get(diag.code, 0) + 1
        return {
            "files_scanned": self.files_scanned,
            "rules": list(self.rules),
            "findings": len(self.diagnostics),
            "findings_by_code": by_code,
            "suppressed": self.suppressed,
        }


def run_lint(
    root: str | Path,
    paths: tuple[str, ...] = (),
    select: frozenset[str] | None = None,
    ignore: frozenset[str] = frozenset(),
) -> LintResult:
    """Lint ``paths`` (default ``src``+``benchmarks``) under ``root``."""
    project = Project(root, paths)
    active = resolve_checkers(select, ignore)

    raw: list[Diagnostic] = []
    for file in project.files:
        if file.parse_error is not None:
            raw.append(
                Diagnostic(
                    path=file.rel,
                    line=1,
                    col=1,
                    code="RL000",
                    message=file.parse_error,
                )
            )
    for checker in active:
        raw.extend(checker.check(project))

    kept: list[Diagnostic] = []
    suppressed = 0
    for diag in raw:
        file = project.file(diag.path)
        if file is not None and is_suppressed(diag, file.suppressions):
            suppressed += 1
        else:
            kept.append(diag)

    return LintResult(
        diagnostics=tuple(sorted(kept)),
        suppressed=suppressed,
        files_scanned=len(project.files),
        rules=tuple(type(c).code for c in active),
    )
