"""One-pass lint driver: parse the tree once, run every checker.

With a ``cache_dir`` the runner is incremental: the project manifest
(content hashes, no parsing) plus the active rule set key a stored
result, so an unchanged tree is answered without building a single AST.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from . import cache as _cache
from . import checkers as _checkers  # noqa: F401  (registers the built-ins)
from .diagnostics import Diagnostic, is_suppressed
from .project import Project
from .registry import resolve_checkers


@dataclass(frozen=True)
class LintResult:
    """Everything one run produced, pre-sorted and pre-filtered.

    ``unused_suppressions`` lists ``(path, line, codes)`` for every
    ``# repro-lint: ignore`` comment that silenced nothing this run
    (``codes`` is the bracket list verbatim, empty for a bare ignore).
    Coded comments whose rules were not active are left alone — the run
    cannot judge them.
    """

    diagnostics: tuple[Diagnostic, ...]
    suppressed: int
    files_scanned: int
    rules: tuple[str, ...]
    unused_suppressions: tuple[tuple[str, int, str], ...] = ()

    @property
    def exit_code(self) -> int:
        return 1 if self.diagnostics else 0

    def stats(self) -> dict[str, object]:
        by_code: dict[str, int] = {}
        for diag in self.diagnostics:
            by_code[diag.code] = by_code.get(diag.code, 0) + 1
        return {
            "files_scanned": self.files_scanned,
            "rules": list(self.rules),
            "findings": len(self.diagnostics),
            "findings_by_code": by_code,
            "suppressed": self.suppressed,
            "unused_suppressions": [
                f"{path}:{line}" + (f" [{codes}]" if codes else "")
                for path, line, codes in self.unused_suppressions
            ],
        }


def _to_payload(result: LintResult) -> dict[str, Any]:
    return {
        "diagnostics": [
            [d.path, d.line, d.col, d.code, d.message]
            for d in result.diagnostics
        ],
        "suppressed": result.suppressed,
        "files_scanned": result.files_scanned,
        "rules": list(result.rules),
        "unused_suppressions": [list(u) for u in result.unused_suppressions],
    }


def _from_payload(payload: dict[str, Any]) -> LintResult | None:
    try:
        return LintResult(
            diagnostics=tuple(
                Diagnostic(str(p), int(ln), int(col), str(code), str(msg))
                for p, ln, col, code, msg in payload["diagnostics"]
            ),
            suppressed=int(payload["suppressed"]),
            files_scanned=int(payload["files_scanned"]),
            rules=tuple(str(r) for r in payload["rules"]),
            unused_suppressions=tuple(
                (str(p), int(ln), str(codes))
                for p, ln, codes in payload["unused_suppressions"]
            ),
        )
    except (KeyError, TypeError, ValueError):
        return None  # unreadable entry == miss


def run_lint(
    root: str | Path,
    paths: tuple[str, ...] = (),
    select: frozenset[str] | None = None,
    ignore: frozenset[str] = frozenset(),
    cache_dir: str | Path | None = None,
) -> LintResult:
    """Lint ``paths`` (default ``src``+``benchmarks``) under ``root``."""
    project = Project(root, paths)
    active = resolve_checkers(select, ignore)
    rules = tuple(type(c).code for c in active)

    key: str | None = None
    cdir: Path | None = None
    if cache_dir is not None:
        cdir = Path(cache_dir)
        hasher = _cache.FileHasher(cdir)
        key = _cache.cache_key(project.root, project.manifest(hasher.digest), rules)
        payload = _cache.load(cdir, key)
        hasher.save()
        if payload is not None:
            cached = _from_payload(payload)
            if cached is not None:
                return cached

    raw: list[Diagnostic] = []
    for file in project.files:
        if file.parse_error is not None:
            raw.append(
                Diagnostic(
                    path=file.rel,
                    line=1,
                    col=1,
                    code="RL000",
                    message=file.parse_error,
                )
            )
    for checker in active:
        raw.extend(checker.check(project))

    kept: list[Diagnostic] = []
    suppressed = 0
    used: set[tuple[str, int]] = set()
    for diag in raw:
        file = project.file(diag.path)
        if file is not None and is_suppressed(diag, file.suppressions):
            suppressed += 1
            used.add((diag.path, diag.line))
        else:
            kept.append(diag)

    # RL000 always runs, so suppressions aimed at it are judgeable too.
    judgeable = frozenset(rules) | {"RL000"}
    unused: list[tuple[str, int, str]] = []
    for file in project.files:
        for line, codes in sorted(file.suppressions.items()):
            if (file.rel, line) in used:
                continue
            if codes is not None and not (codes & judgeable):
                continue
            unused.append(
                (file.rel, line, "" if codes is None else ",".join(sorted(codes)))
            )

    result = LintResult(
        diagnostics=tuple(sorted(kept)),
        suppressed=suppressed,
        files_scanned=len(project),
        rules=rules,
        unused_suppressions=tuple(sorted(unused)),
    )
    if cdir is not None and key is not None:
        _cache.store(cdir, key, _to_payload(result))
    return result
