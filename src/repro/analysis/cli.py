"""The ``repro-lint`` command line.

Runs as ``python -m repro.analysis`` or ``repro-audit lint``; exits 0
on a clean tree, 1 when any diagnostic survives suppression, 2 on
usage errors (argparse's convention).

Inside GitHub Actions (``GITHUB_ACTIONS=true``) findings are
additionally emitted as ``::error`` workflow commands on stderr, so
every diagnostic renders as an inline annotation on the PR no matter
which ``--output`` mode CI asked for.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from .cache import DEFAULT_CACHE_DIR
from .diagnostics import render_github, render_json, render_text
from .registry import CHECKERS
from .runner import run_lint


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST- and dataflow-based invariant checks for the repro tree: "
            "lock discipline (syntactic and flow-sensitive), wire contracts "
            "and route drift, typed errors, fork/asyncio safety including "
            "transitive blocking, SQL taint, and bench envelopes."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to lint, relative to --root "
            "(default: src and benchmarks)"
        ),
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root the paths are resolved against (default: cwd)",
    )
    parser.add_argument(
        "--output",
        choices=("text", "json", "github"),
        default="text",
        help=(
            "text = ruff-style path:line:col CODE message; json = versioned "
            "machine-readable findings+stats; github = ::error workflow "
            "commands"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all registered)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help=(
            "append a machine-readable one-line JSON summary (rules run, "
            "files scanned, findings by code) to stdout"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help=(
            "directory for the incremental result cache, resolved against "
            f"--root (default: {DEFAULT_CACHE_DIR})"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache for this run",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _codes(raw: str | None) -> frozenset[str]:
    if not raw:
        return frozenset()
    return frozenset(code.strip() for code in raw.split(",") if code.strip())


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for code in sorted(CHECKERS):
            cls = CHECKERS[code]
            print(f"{code}  {cls.name:<22} {cls.description}")
        return 0

    select = _codes(args.select) or None
    ignore = _codes(args.ignore)
    cache_dir: Path | None = None
    if not args.no_cache:
        cache_dir = Path(args.root) / args.cache_dir
    try:
        result = run_lint(
            args.root, tuple(args.paths), select, ignore, cache_dir=cache_dir
        )
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    stats = result.stats()
    if args.output == "json":
        print(render_json(result.diagnostics, stats))
    elif args.output == "github":
        if result.diagnostics:
            print(render_github(result.diagnostics))
    elif result.diagnostics:
        print(render_text(result.diagnostics))

    if (
        args.output != "github"
        and os.environ.get("GITHUB_ACTIONS") == "true"
        and result.diagnostics
    ):
        print(render_github(result.diagnostics), file=sys.stderr)

    if args.output == "text":
        summary = (
            f"{len(result.diagnostics)} finding(s), "
            f"{result.suppressed} suppressed, "
            f"{result.files_scanned} file(s) scanned"
        )
        if result.unused_suppressions:
            unused = len(result.unused_suppressions)
            summary += f", {unused} unused suppression(s)"
        print(summary if result.diagnostics else f"clean — {summary}")
    if args.stats:
        print(json.dumps(stats, sort_keys=True))
    return result.exit_code
