"""Small shared ``ast`` helpers the checkers lean on."""

from __future__ import annotations

import ast
from collections.abc import Iterator


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, None for anything else."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def attribute_root(node: ast.expr) -> str | None:
    """The base name of an attribute/subscript chain: ``self`` for
    ``self._cache[k].x``, ``db`` for ``db.table(...)``."""
    cur: ast.expr = node
    while isinstance(cur, (ast.Attribute, ast.Subscript)):
        cur = cur.value
    if isinstance(cur, ast.Name):
        return cur.id
    return None


def self_attribute(node: ast.expr) -> str | None:
    """``'self._cache'`` for a chain rooted at ``self``, else None.

    Subscripts are transparent, so ``self._cache[k]`` and
    ``self._shards[i]._engine`` both resolve (to their dotted spine)."""
    parts: list[str] = []
    cur: ast.expr = node
    while True:
        if isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        elif isinstance(cur, ast.Subscript):
            cur = cur.value
        else:
            break
    if isinstance(cur, ast.Name) and cur.id == "self" and parts:
        return "self." + ".".join(reversed(parts))
    return None


def rooted_attribute(node: ast.expr) -> tuple[str, str] | None:
    """``('svc', 'svc._cache')`` for an attribute/subscript chain rooted
    at any plain name — the generalization of :func:`self_attribute` the
    flow rules use to track state owned by *parameters* as well as
    ``self``.  Requires at least one attribute hop (a bare local name is
    not shared state)."""
    parts: list[str] = []
    cur: ast.expr = node
    while True:
        if isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        elif isinstance(cur, ast.Subscript):
            cur = cur.value
        else:
            break
    if isinstance(cur, ast.Name) and parts:
        return cur.id, cur.id + "." + ".".join(reversed(parts))
    return None


def walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested ``def``s,
    ``async def``s, lambdas, or class bodies — their statements run in a
    different execution context than the enclosing function."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        stack.extend(ast.iter_child_nodes(child))


def bound_names(node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> set[str]:
    """Names bound inside a function/lambda (params + assignments)."""
    out: set[str] = set()
    args = node.args
    for arg in (
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ):
        out.add(arg.arg)
    body = node.body if isinstance(node.body, list) else [node.body]
    for stmt in body:
        for child in ast.walk(stmt):
            if isinstance(child, ast.Name) and isinstance(
                child.ctx, (ast.Store, ast.Del)
            ):
                out.add(child.id)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.add(child.name)
    return out


def free_names(node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> set[str]:
    """Names a closure reads but does not bind — its captures."""
    bound = bound_names(node)
    out: set[str] = set()
    body = node.body if isinstance(node.body, list) else [node.body]
    for stmt in body:
        for child in ast.walk(stmt):
            if (
                isinstance(child, ast.Name)
                and isinstance(child.ctx, ast.Load)
                and child.id not in bound
            ):
                out.add(child.id)
    return out
