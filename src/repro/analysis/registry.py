"""The pluggable checker registry.

A checker is a class with a ``code`` (``RLxxx``), a short ``name``, a
one-line ``description``, and a ``check(project)`` generator yielding
:class:`~repro.analysis.diagnostics.Diagnostic` objects.  Decorating it
with :func:`register` makes ``repro-lint`` pick it up — the CLI, the
``--select``/``--ignore`` flags, ``--list-rules``, and the stats
summary all read this registry and nothing else.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING, ClassVar, Protocol

if TYPE_CHECKING:
    from .diagnostics import Diagnostic
    from .project import Project


class Checker(Protocol):
    """Structural interface every registered checker satisfies."""

    code: ClassVar[str]
    name: ClassVar[str]
    description: ClassVar[str]

    def check(self, project: Project) -> Iterator[Diagnostic]: ...


#: code -> checker class, populated by :func:`register` at import time.
CHECKERS: dict[str, type[Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    code = cls.code
    if code in CHECKERS:
        raise ValueError(f"duplicate checker code {code!r}")
    CHECKERS[code] = cls
    return cls


def resolve_checkers(
    select: frozenset[str] | None = None,
    ignore: frozenset[str] = frozenset(),
) -> tuple[Checker, ...]:
    """Instantiate the registered checkers in code order.

    ``select`` restricts to the named codes (None = all); ``ignore``
    drops codes from whatever ``select`` produced.  Unknown codes raise
    ``ValueError`` so typos fail loudly instead of silently passing.
    """
    known = frozenset(CHECKERS)
    requested = known if select is None else select
    unknown = (requested | ignore) - known
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    active = sorted(requested - ignore)
    return tuple(CHECKERS[code]() for code in active)
