"""The project model checkers run against.

A :class:`Project` owns the file set for one lint run: every Python
file is read and parsed exactly once (checkers share the cached
:class:`SourceFile` trees), and non-Python context files (README,
test modules referenced by cross-file rules) are readable through
:meth:`Project.read_text` whether or not they were selected.

Selection semantics mirror ruff: directories are walked with a default
exclude list (caches, VCS metadata, and ``tests/fixtures`` — the lint
suite's own deliberately-broken fixture modules), while explicitly
named files are always scanned, even inside an excluded tree.  Checkers
that scope themselves to a package (RL003 only patrols ``server/``,
``api/``, ``client/``) treat explicitly named files as in scope, which
is what lets the fixture tests exercise every rule.
"""

from __future__ import annotations

import ast
import hashlib
import os
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from .diagnostics import parse_suppressions

#: Directory names never walked during discovery.
EXCLUDED_DIR_NAMES = frozenset(
    {
        ".git",
        "__pycache__",
        ".venv",
        "venv",
        "htmlcov",
        ".pytest_cache",
        ".repro-lint-cache",
        "build",
    }
)

#: Root-relative prefixes never walked during discovery (explicit paths
#: still get in — the lint fixtures seed violations on purpose).
EXCLUDED_REL_PREFIXES = ("tests/fixtures",)


def _sha256_file(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


@dataclass(frozen=True)
class SourceFile:
    """One parsed Python file plus its suppression map."""

    rel: str
    text: str
    lines: tuple[str, ...]
    tree: ast.Module | None
    parse_error: str | None
    explicit: bool
    suppressions: dict[int, frozenset[str] | None] = field(hash=False)

    def under(self, *prefixes: str) -> bool:
        """True if the file lives under any of the given rel prefixes."""
        return any(
            self.rel == prefix or self.rel.startswith(prefix + "/")
            for prefix in prefixes
        )

    @property
    def name(self) -> str:
        return self.rel.rsplit("/", 1)[-1]

    def in_scope(self, *prefixes: str) -> bool:
        """Package-scoped rules check files under ``prefixes`` — and any
        explicitly selected file, wherever it lives."""
        return self.explicit or self.under(*prefixes)


class Project:
    """The file set for one run, rooted at the repository checkout.

    Discovery (walking directories) is eager; *parsing* is lazy — a run
    that is answered from the result cache hashes file contents via
    :meth:`manifest` without ever building an AST.
    """

    def __init__(
        self, root: str | os.PathLike[str], paths: tuple[str, ...] = ()
    ) -> None:
        self.root = Path(root).resolve()
        self._selected = self._discover(paths)  # rel -> explicit
        self._parsed: dict[str, SourceFile] = {}
        self._all: tuple[SourceFile, ...] | None = None

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------
    def _discover(self, paths: tuple[str, ...]) -> dict[str, bool]:
        selected: dict[str, bool] = {}  # rel -> explicit
        targets = paths or ("src", "benchmarks")
        for raw in targets:
            path = (self.root / raw).resolve()
            if path.is_file():
                selected[self._rel(path)] = True
            elif path.is_dir():
                for found in self._walk(path):
                    selected.setdefault(self._rel(found), False)
            elif paths:
                # A typo'd explicit path must not read as a clean tree;
                # the default src/benchmarks targets may simply be absent.
                raise ValueError(f"path does not exist: {raw}")
        return dict(sorted(selected.items()))

    def _walk(self, top: Path) -> Iterator[Path]:
        for dirpath, dirnames, filenames in os.walk(top):
            rel_dir = self._rel(Path(dirpath))
            dirnames[:] = sorted(
                d
                for d in dirnames
                if d not in EXCLUDED_DIR_NAMES
                and not any(
                    f"{rel_dir}/{d}".lstrip("./").startswith(prefix)
                    for prefix in EXCLUDED_REL_PREFIXES
                )
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield Path(dirpath) / filename

    def _rel(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    def _parse(self, rel: str, explicit: bool) -> SourceFile:
        text = (self.root / rel).read_text(encoding="utf-8")
        lines = tuple(text.splitlines())
        tree: ast.Module | None = None
        parse_error: str | None = None
        try:
            tree = ast.parse(text, filename=rel)
        except SyntaxError as exc:
            parse_error = f"syntax error: {exc.msg} (line {exc.lineno})"
        return SourceFile(
            rel=rel,
            text=text,
            lines=lines,
            tree=tree,
            parse_error=parse_error,
            explicit=explicit,
            suppressions=parse_suppressions(text),
        )

    def _ensure(self, rel: str) -> SourceFile:
        file = self._parsed.get(rel)
        if file is None:
            file = self._parse(rel, explicit=self._selected[rel])
            self._parsed[rel] = file
        return file

    # ------------------------------------------------------------------
    # checker-facing API
    # ------------------------------------------------------------------
    @property
    def files(self) -> tuple[SourceFile, ...]:
        if self._all is None:
            self._all = tuple(self._ensure(rel) for rel in self._selected)
        return self._all

    def file(self, rel: str) -> SourceFile | None:
        if rel not in self._selected:
            return None
        return self._ensure(rel)

    def __len__(self) -> int:
        return len(self._selected)

    def manifest(
        self, digest: Callable[[Path], str] | None = None
    ) -> tuple[tuple[str, bool, str], ...]:
        """``(rel, explicit, sha256)`` per selected file, without
        parsing — the identity the result cache keys on.  ``digest``
        lets the cache substitute an mtime/size-memoized hasher."""
        if digest is None:
            digest = _sha256_file
        out = []
        for rel, explicit in self._selected.items():
            out.append((rel, explicit, digest(self.root / rel)))
        return tuple(out)

    def read_text(self, rel: str) -> str | None:
        """Context files (README, round-trip tests) outside the selected
        set — returns None when absent so rules can degrade gracefully."""
        if rel in self._selected:
            return self._ensure(rel).text
        path = self.root / rel
        if not path.is_file():
            return None
        return path.read_text(encoding="utf-8")
