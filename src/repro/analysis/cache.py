"""Result cache for the lint runner.

Re-linting an unchanged tree should cost file hashing, not nine rules
of AST analysis.  The cache is content-addressed: the key is a SHA-256
over the cache schema version, the active rule set, every selected
file's ``(rel, explicit, content-hash)`` triple, and the content of the
context files cross-file rules read through ``Project.read_text``
(README, the round-trip test).  Any edit anywhere in that closure
changes the key, so entries never need invalidation — stale ones just
stop being looked up and are eventually pruned (least-recently-used by
file mtime, keeping :data:`MAX_ENTRIES`).

An mtime/size stat table (``stat.json``) short-circuits the content
hashing itself: files whose ``(mtime_ns, size)`` pair is unchanged
reuse their recorded digest instead of being re-read.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from pathlib import Path

#: Bump when the serialized result shape (or rule semantics worth a
#: global invalidation) changes.
SCHEMA_VERSION = 1

#: Files outside the scanned set whose content feeds cross-file rules.
CONTEXT_RELS = ("README.md", "tests/test_api_messages_roundtrip.py")

MAX_ENTRIES = 64

DEFAULT_CACHE_DIR = ".repro-lint-cache"


class FileHasher:
    """Content hashes with an mtime/size fast path persisted per cache
    directory."""

    def __init__(self, cache_dir: Path) -> None:
        self._path = cache_dir / "stat.json"
        self._table: dict[str, list] = {}
        self._dirty = False
        with contextlib.suppress(OSError, ValueError):
            loaded = json.loads(self._path.read_text(encoding="utf-8"))
            if isinstance(loaded, dict):
                self._table = loaded

    def digest(self, path: Path) -> str:
        key = str(path)
        try:
            stat = path.stat()
            entry = self._table.get(key)
            if (
                entry is not None
                and entry[0] == stat.st_mtime_ns
                and entry[1] == stat.st_size
            ):
                return str(entry[2])
            digest = hashlib.sha256(path.read_bytes()).hexdigest()
        except OSError:
            return "absent"
        self._table[key] = [stat.st_mtime_ns, stat.st_size, digest]
        self._dirty = True
        return digest

    def save(self) -> None:
        if not self._dirty:
            return
        # a cache that cannot persist is still a cache
        with contextlib.suppress(OSError):
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._path.write_text(json.dumps(self._table), encoding="utf-8")


def cache_key(
    root: Path,
    manifest: tuple[tuple[str, bool, str], ...],
    rules: tuple[str, ...],
) -> str:
    h = hashlib.sha256()
    h.update(f"schema={SCHEMA_VERSION}".encode())
    h.update(("rules=" + ",".join(rules)).encode())
    for rel, explicit, digest in manifest:
        h.update(f"{rel}\0{int(explicit)}\0{digest}\0".encode())
    for rel in CONTEXT_RELS:
        path = root / rel
        try:
            context = hashlib.sha256(path.read_bytes()).hexdigest()
        except OSError:
            context = "absent"
        h.update(f"{rel}\0{context}\0".encode())
    return h.hexdigest()


def load(cache_dir: Path, key: str) -> dict | None:
    path = cache_dir / f"{key}.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        os.utime(path)  # refresh for LRU pruning
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def store(cache_dir: Path, key: str, payload: dict) -> None:
    with contextlib.suppress(OSError):
        cache_dir.mkdir(parents=True, exist_ok=True)
        (cache_dir / f"{key}.json").write_text(
            json.dumps(payload), encoding="utf-8"
        )
        _prune(cache_dir)


def _prune(cache_dir: Path) -> None:
    entries = sorted(
        (p for p in cache_dir.glob("*.json") if p.name != "stat.json"),
        key=lambda p: p.stat().st_mtime_ns,
    )
    for stale in entries[: max(0, len(entries) - MAX_ENTRIES)]:
        with contextlib.suppress(OSError):
            stale.unlink()
