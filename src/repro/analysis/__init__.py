"""``repro.analysis`` — the ``repro-lint`` static-analysis toolkit.

A stdlib-``ast`` checker suite enforcing the invariants the compiler
never sees: RWLock reader/writer discipline on the service facades
(RL001), the versioned wire contract and its round-trip law (RL002),
typed-error hygiene on the wire tier (RL003), fork/asyncio safety
(RL004), and benchmark envelope conformance (RL005).

Run it as ``repro-audit lint`` or ``python -m repro.analysis``; extend
it by registering a checker class — see ``src/repro/analysis/README.md``.
"""

from .diagnostics import Diagnostic
from .registry import CHECKERS, Checker, register
from .runner import LintResult, run_lint

__all__ = [
    "CHECKERS",
    "Checker",
    "Diagnostic",
    "LintResult",
    "register",
    "run_lint",
]
