"""A conservative whole-project call graph.

Indexes every module-level function and class method in the project,
then resolves call sites to project functions where the target is
*provable* from the AST alone:

* ``f(...)`` — a function defined in (or ``from``-imported into) the
  calling module;
* ``mod.f(...)`` / ``pkg.mod.Class.m(...)`` — through ``import`` aliases
  that name project modules;
* ``self.m(...)`` — a method of the enclosing class or any base class
  reachable by name anywhere in the project (cross-module subclassing);
* ``self.attr.m(...)`` / ``var.m(...)`` — when the attribute or local is
  assigned a project-class construction in ``__init__`` / the same
  function body;
* ``Class(...).m(...)`` — constructor-typed receiver chains.

Anything else (duck-typed parameters, values out of containers,
callables passed as arguments) stays **unresolved** — the dotted name is
preserved so primitive-matching rules (blocking calls, fork sites) can
still recognize it, but no edge is created.  Under-approximating edges
is the right bias for the lint rules built on top: a missing edge can
hide a finding, a wrong edge fabricates one.
"""

from __future__ import annotations

import ast
import weakref
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Optional

from .astutil import dotted_name, walk_shallow
from .project import Project

FuncDef = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass(frozen=True, eq=False)
class FunctionInfo:
    """One indexed function: where it lives and its AST."""

    qname: str  #: ``rel:Class.method`` or ``rel:function``
    rel: str
    node: FuncDef
    class_name: Optional[str]

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FunctionInfo {self.qname}>"


@dataclass(frozen=True, eq=False)
class CallSite:
    """One call inside a function: the node, the resolved target (or
    None), the dotted callee spelling (or None), and whether the
    receiver is literally ``self`` (same-object method call)."""

    call: ast.Call
    target: Optional[FunctionInfo]
    dotted: Optional[str]
    same_object: bool


def _module_dotted(rel: str) -> str:
    """``src/repro/db/dialect.py`` -> ``repro.db.dialect``."""
    parts = rel.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class _ModuleIndex:
    """Per-module symbol tables: defs, classes, and import bindings."""

    def __init__(self, rel: str, tree: ast.Module) -> None:
        self.rel = rel
        self.dotted = _module_dotted(rel)
        self.functions: dict[str, FuncDef] = {}
        self.classes: dict[str, ast.ClassDef] = {}
        #: local alias -> project-module dotted path (``import`` forms).
        self.module_aliases: dict[str, str] = {}
        #: local name -> (source module dotted, symbol name) (``from``).
        self.symbols: dict[str, tuple[str, str]] = {}
        self._scan(tree)

    def _scan(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = stmt
            elif isinstance(stmt, ast.ClassDef):
                self.classes[stmt.name] = stmt
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    self.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(stmt, ast.ImportFrom):
                source = self._resolve_from(stmt)
                if source is None:
                    continue
                for alias in stmt.names:
                    self.symbols[alias.asname or alias.name] = (
                        source,
                        alias.name,
                    )

    def _resolve_from(self, stmt: ast.ImportFrom) -> Optional[str]:
        if stmt.level == 0:
            return stmt.module
        package = self.dotted.split(".")
        if not self.rel.endswith("/__init__.py"):
            package = package[:-1]
        drop = stmt.level - 1
        if drop > len(package):
            return None
        if drop:
            package = package[:-drop]
        if stmt.module:
            package = package + stmt.module.split(".")
        return ".".join(package)


class CallGraph:
    """Project-wide function index plus call-site resolution."""

    def __init__(self, project: Project) -> None:
        self._modules: dict[str, _ModuleIndex] = {}
        self._by_dotted: dict[str, _ModuleIndex] = {}
        #: class name -> defining modules (rel), first-indexed order.
        self._class_sites: dict[str, list[str]] = {}
        self._functions: dict[str, FunctionInfo] = {}
        #: per-function local constructor types, lazily computed.
        self._local_types: dict[int, dict[str, str]] = {}
        #: per-class ``self.attr`` constructor types, lazily computed.
        self._attr_types: dict[tuple[str, str], dict[str, str]] = {}

        for file in project.files:
            if file.tree is None:
                continue
            index = _ModuleIndex(file.rel, file.tree)
            self._modules[file.rel] = index
            self._by_dotted[index.dotted] = index
            for name in index.classes:
                self._class_sites.setdefault(name, []).append(file.rel)
            for name, fn in index.functions.items():
                self._add(file.rel, None, name, fn)
            for cls_name, cls in index.classes.items():
                for stmt in cls.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add(file.rel, cls_name, stmt.name, stmt)

    def _add(
        self, rel: str, class_name: Optional[str], name: str, node: FuncDef
    ) -> None:
        qual = f"{class_name}.{name}" if class_name else name
        info = FunctionInfo(
            qname=f"{rel}:{qual}", rel=rel, node=node, class_name=class_name
        )
        self._functions[info.qname] = info

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def functions(self) -> tuple[FunctionInfo, ...]:
        return tuple(self._functions.values())

    def function(
        self, rel: str, name: str, class_name: Optional[str] = None
    ) -> Optional[FunctionInfo]:
        qual = f"{class_name}.{name}" if class_name else name
        return self._functions.get(f"{rel}:{qual}")

    def class_def(
        self, name: str, prefer_rel: Optional[str] = None
    ) -> Optional[tuple[str, ast.ClassDef]]:
        sites = self._class_sites.get(name)
        if not sites:
            return None
        rel = prefer_rel if prefer_rel in sites else sites[0]
        return rel, self._modules[rel].classes[name]

    def method_on(
        self, class_name: str, method: str, prefer_rel: Optional[str] = None
    ) -> Optional[FunctionInfo]:
        """Resolve ``method`` on ``class_name`` through its base chain
        (bases matched by name project-wide)."""
        seen: set[str] = set()
        frontier = [(class_name, prefer_rel)]
        while frontier:
            name, hint = frontier.pop(0)
            if name in seen:
                continue
            seen.add(name)
            found = self.class_def(name, hint)
            if found is None:
                continue
            rel, cls = found
            info = self.function(rel, method, class_name=name)
            if info is not None:
                return info
            for base in cls.bases:
                if isinstance(base, ast.Name):
                    frontier.append((base.id, rel))
                else:
                    base_dotted = dotted_name(base)
                    if base_dotted is not None:
                        frontier.append((base_dotted.rsplit(".", 1)[-1], rel))
        return None

    # ------------------------------------------------------------------
    # type inference (constructor-provable only)
    # ------------------------------------------------------------------
    def constructor_class(
        self, call: ast.Call, rel: str
    ) -> Optional[tuple[str, str]]:
        """``(defining rel, class name)`` when ``call`` provably builds a
        project class, else None."""
        index = self._modules.get(rel)
        if index is None:
            return None
        if isinstance(call.func, ast.Name):
            name = call.func.id
            if name in index.classes:
                return rel, name
            symbol = index.symbols.get(name)
            if symbol is not None:
                source = self._by_dotted.get(symbol[0])
                if source is not None and symbol[1] in source.classes:
                    return source.rel, symbol[1]
            return None
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        module, leaf = self._split_module(dotted, index)
        if module is not None and leaf in module.classes:
            return module.rel, leaf
        return None

    def local_types(self, ctx: FunctionInfo) -> dict[str, str]:
        """Local name -> class name, for provable constructions."""
        cached = self._local_types.get(id(ctx.node))
        if cached is not None:
            return cached
        out: dict[str, str] = {}
        for stmt in ast.walk(ctx.node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            if not isinstance(stmt.value, ast.Call):
                continue
            built = self.constructor_class(stmt.value, ctx.rel)
            if built is None:
                continue
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    out[target.id] = built[1]
        self._local_types[id(ctx.node)] = out
        return out

    def attr_types(self, rel: str, class_name: str) -> dict[str, str]:
        """``self.attr`` -> class name, from ``__init__`` constructions."""
        cached = self._attr_types.get((rel, class_name))
        if cached is not None:
            return cached
        out: dict[str, str] = {}
        init = self.function(rel, "__init__", class_name=class_name)
        if init is not None:
            for stmt in ast.walk(init.node):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                if not isinstance(stmt.value, ast.Call):
                    continue
                built = self.constructor_class(stmt.value, rel)
                if built is None:
                    continue
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        out[target.attr] = built[1]
        self._attr_types[(rel, class_name)] = out
        return out

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------
    def _split_module(
        self, dotted: str, index: _ModuleIndex
    ) -> tuple[Optional[_ModuleIndex], str]:
        """Longest import-alias prefix of ``dotted`` naming a project
        module; returns (module index, remaining leaf path)."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            alias = ".".join(parts[:cut])
            target = index.module_aliases.get(alias)
            if target is None and alias in index.symbols:
                source, symbol = index.symbols[alias]
                candidate = f"{source}.{symbol}"
                if candidate in self._by_dotted:
                    target = candidate
            if target is None:
                continue
            module = self._by_dotted.get(target)
            if module is not None:
                return module, ".".join(parts[cut:])
        return None, dotted

    def resolve_call(
        self, call: ast.Call, ctx: FunctionInfo
    ) -> Optional[FunctionInfo]:
        func = call.func
        index = self._modules.get(ctx.rel)
        if index is None:
            return None

        if isinstance(func, ast.Name):
            name = func.id
            if name in index.functions:
                return self.function(ctx.rel, name)
            symbol = index.symbols.get(name)
            if symbol is not None:
                source = self._by_dotted.get(symbol[0])
                if source is not None:
                    if symbol[1] in source.functions:
                        return self.function(source.rel, symbol[1])
                    if symbol[1] in source.classes:
                        return self.method_on(
                            symbol[1], "__init__", prefer_rel=source.rel
                        )
            if name in index.classes:
                return self.method_on(name, "__init__", prefer_rel=ctx.rel)
            return None

        if not isinstance(func, ast.Attribute):
            return None
        dotted = dotted_name(func)
        if dotted is None:
            # Constructor-chained receiver: ``Class(...).m(...)``.
            if isinstance(func.value, ast.Call):
                built = self.constructor_class(func.value, ctx.rel)
                if built is not None:
                    return self.method_on(
                        built[1], func.attr, prefer_rel=built[0]
                    )
            return None
        parts = dotted.split(".")

        if parts[0] == "self" and ctx.class_name is not None:
            if len(parts) == 2:
                return self.method_on(
                    ctx.class_name, parts[1], prefer_rel=ctx.rel
                )
            if len(parts) == 3:
                attr_class = self.attr_types(ctx.rel, ctx.class_name).get(
                    parts[1]
                )
                if attr_class is not None:
                    return self.method_on(attr_class, parts[2])
            return None

        if len(parts) == 2:
            local_class = self.local_types(ctx).get(parts[0])
            if local_class is not None:
                return self.method_on(local_class, parts[1])
            if parts[0] in index.classes or parts[0] in index.symbols:
                built = self.constructor_class(
                    ast.Call(func=ast.Name(id=parts[0], ctx=ast.Load()),
                             args=[], keywords=[]),
                    ctx.rel,
                )
                if built is not None:
                    return self.method_on(
                        built[1], parts[1], prefer_rel=built[0]
                    )

        module, leaf = self._split_module(dotted, index)
        if module is not None:
            leaf_parts = leaf.split(".")
            if len(leaf_parts) == 1 and leaf_parts[0] in module.functions:
                return self.function(module.rel, leaf_parts[0])
            if len(leaf_parts) == 2 and leaf_parts[0] in module.classes:
                return self.method_on(
                    leaf_parts[0], leaf_parts[1], prefer_rel=module.rel
                )
        return None

    def call_sites(self, ctx: FunctionInfo) -> Iterator[CallSite]:
        """Every call in ``ctx``'s body (nested defs excluded)."""
        for node in walk_shallow(ctx.node):
            if isinstance(node, ast.Call):
                yield self.call_site(node, ctx)

    def call_site(self, call: ast.Call, ctx: FunctionInfo) -> CallSite:
        same_object = (
            isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == "self"
        )
        return CallSite(
            call=call,
            target=self.resolve_call(call, ctx),
            dotted=dotted_name(call.func),
            same_object=same_object,
        )


#: One graph per project instance — RL006 and RL008 both need it, and a
#: cached lint run may lint several projects in one process.
_GRAPHS: "weakref.WeakKeyDictionary[Project, CallGraph]"
_GRAPHS = weakref.WeakKeyDictionary()


def get_callgraph(project: Project) -> CallGraph:
    graph = _GRAPHS.get(project)
    if graph is None:
        graph = CallGraph(project)
        _GRAPHS[project] = graph
    return graph
