"""RL005 — benchmark envelope conformance.

Every ``bench_*.py`` module must:

* write its results through benchlib's versioned JSON schema — either
  the conftest ``report.json(...)`` fixture (which calls
  ``benchlib.make_record``/``write_record``) or benchlib directly —
  so ``compare_bench.py`` can diff it against committed baselines; and
* acknowledge ``REPRO_BENCH_SMOKE``: scale its workload down under the
  smoke flag, or declare itself paper-scale-only with an explicit
  ``pytest.mark.skipif(is_smoke(), ...)``.  A bench that silently runs
  its full workload in CI smoke mode is the regression this rule
  exists to catch.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..diagnostics import Diagnostic
from ..project import Project, SourceFile
from ..registry import register

SCOPE = ("benchmarks",)
ENVELOPE_CALLS = frozenset({"make_record", "write_record"})
SMOKE_ENV = "REPRO_BENCH_SMOKE"


@register
class BenchEnvelopeChecker:
    code = "RL005"
    name = "bench-envelope"
    description = (
        "every bench_*.py writes results through benchlib's JSON schema "
        "and honors REPRO_BENCH_SMOKE"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for file in project.files:
            if file.tree is None:
                continue
            if not file.name.startswith("bench_"):
                continue
            if not file.in_scope(*SCOPE):
                continue
            yield from self._check_bench(file)

    def _check_bench(self, file: SourceFile) -> Iterator[Diagnostic]:
        assert file.tree is not None
        writes_envelope = False
        honors_smoke = False
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "json"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "report"
                ) or (
                    isinstance(func, ast.Name) and func.id in ENVELOPE_CALLS
                ) or (
                    isinstance(func, ast.Attribute)
                    and func.attr in ENVELOPE_CALLS
                ):
                    writes_envelope = True
            if (
                (isinstance(node, ast.Constant) and node.value == SMOKE_ENV)
                or (isinstance(node, ast.Name) and node.id == "is_smoke")
                or (isinstance(node, ast.Attribute) and node.attr == "is_smoke")
            ):
                honors_smoke = True
        if not writes_envelope:
            yield Diagnostic(
                path=file.rel,
                line=1,
                col=1,
                code=self.code,
                message=(
                    "bench module never writes the benchlib JSON envelope "
                    "(report.json(...) / benchlib.make_record) — "
                    "compare_bench.py cannot gate it"
                ),
            )
        if not honors_smoke:
            yield Diagnostic(
                path=file.rel,
                line=1,
                col=1,
                code=self.code,
                message=(
                    f"bench module ignores {SMOKE_ENV} — shrink the workload "
                    "under benchlib.is_smoke() or mark it "
                    "skipif(is_smoke(), ...) as paper-scale-only"
                ),
            )
