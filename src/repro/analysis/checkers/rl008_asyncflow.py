"""RL008 — blocking calls reachable from server coroutines.

RL004 used to flag ``time.sleep`` *written directly* inside an
``async def``; the obvious dodge is one helper function of indirection.
This rule owns the async-blocking discipline now and closes the dodge:
every coroutine in ``src/repro/server`` is a root, and the project call
graph is walked through plain (non-async) callees looking for blocking
primitives — the RL004 tables plus whole module families (``sqlite3.*``,
``socket.*``, ``subprocess.*``, ``urllib.request.*``).  A hit is
reported at the *root's* call site with the full chain, which is where
the fix goes: hand the chain to ``loop.run_in_executor`` (function
references passed as arguments create no call edge, so the executor
pattern stays clean by construction).
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Optional

from ..callgraph import CallGraph, FunctionInfo, get_callgraph
from ..diagnostics import Diagnostic
from ..project import Project, SourceFile
from ..registry import register
from .rl004_forksafe import BLOCKING_ATTRS, BLOCKING_CALLS

SCOPE = ("src/repro/server",)

#: Module families that are blocking wholesale — any call into them
#: counts, without enumerating every function.
BLOCKING_PREFIXES = ("sqlite3.", "socket.", "subprocess.", "urllib.request.")

#: Chains deeper than this are beyond anyone's mental model; stop.
MAX_DEPTH = 8

#: (blocking primitive, call chain from the summarized function down).
Summary = Optional[tuple[str, tuple[str, ...]]]


def blocking_primitive(dotted: str | None) -> str | None:
    """The blocking primitive a dotted call target names, or None."""
    if dotted is None:
        return None
    if dotted in BLOCKING_CALLS:
        return dotted
    if dotted.rsplit(".", 1)[-1] in BLOCKING_ATTRS:
        return dotted
    if dotted.startswith(BLOCKING_PREFIXES):
        return dotted
    return None


@register
class AsyncFlowChecker:
    code = "RL008"
    name = "async-blocking-flow"
    description = (
        "no blocking call (sqlite3/socket/subprocess/time.sleep/file I/O) "
        "reachable from a server coroutine through the call graph — "
        "run blocking work on the executor"
    )

    def __init__(self) -> None:
        self._summaries: dict[str, Summary] = {}
        self._in_progress: set[str] = set()

    def check(self, project: Project) -> Iterator[Diagnostic]:
        graph = get_callgraph(project)
        self._summaries.clear()
        for info in graph.functions():
            if not info.is_async:
                continue
            file = project.file(info.rel)
            if file is None or not file.in_scope(*SCOPE):
                continue
            yield from self._check_coroutine(file, info, graph)

    def _check_coroutine(
        self, file: SourceFile, info: FunctionInfo, graph: CallGraph
    ) -> Iterator[Diagnostic]:
        for site in graph.call_sites(info):
            call = site.call
            primitive = blocking_primitive(site.dotted)
            if primitive is not None and site.target is None:
                yield Diagnostic(
                    path=file.rel,
                    line=call.lineno,
                    col=call.col_offset + 1,
                    code=self.code,
                    message=(
                        f"blocking call {primitive}() inside async def "
                        f"{info.name!r} stalls the event loop — run it on "
                        "the executor (loop.run_in_executor) instead"
                    ),
                )
                continue
            if site.target is None or site.target.is_async:
                continue
            summary = self._summary(site.target, graph, depth=1)
            if summary is None:
                continue
            found, chain = summary
            shown = " -> ".join(chain)
            yield Diagnostic(
                path=file.rel,
                line=call.lineno,
                col=call.col_offset + 1,
                code=self.code,
                message=(
                    f"async def {info.name!r} reaches blocking {found}() "
                    f"through {shown!r} — the whole chain runs on the "
                    "event loop; move it to the executor"
                ),
            )

    def _summary(
        self, info: FunctionInfo, graph: CallGraph, depth: int
    ) -> Summary:
        if info.qname in self._summaries:
            return self._summaries[info.qname]
        if info.qname in self._in_progress or depth > MAX_DEPTH:
            return None
        self._in_progress.add(info.qname)
        try:
            result = self._compute(info, graph, depth)
        finally:
            self._in_progress.discard(info.qname)
        self._summaries[info.qname] = result
        return result

    def _compute(
        self, info: FunctionInfo, graph: CallGraph, depth: int
    ) -> Summary:
        for site in graph.call_sites(info):
            primitive = blocking_primitive(site.dotted)
            if primitive is not None and site.target is None:
                return (primitive, (info.name,))
            if site.target is None or site.target.is_async:
                continue
            below = self._summary(site.target, graph, depth + 1)
            if below is not None:
                return (below[0], (info.name, *below[1]))
        return None
