"""RL002 — the wire contract behind ``/v1/``.

Two halves, both driven by registry assignments rather than hard-coded
class lists so the rule keeps up as message kinds are added:

* any module defining a ``WIRE_KINDS`` registry: every ``@dataclass``
  in it must define ``to_dict`` and ``from_dict``, appear in the
  ``WIRE_KINDS`` value (its kind string — transportable via the module
  ``to_wire``/``from_wire`` envelope functions, which must exist), and —
  for the real ``src/repro/api/messages.py`` — be exercised by name in
  ``tests/test_api_messages_roundtrip.py`` so the
  ``from_dict(to_dict(x)) == x`` law stays pinned;
* any module defining an ``ERROR_TYPES`` registry: every concrete
  ``AuditApiError`` subclass must carry a ``code`` string and an
  ``http_status`` (own or inherited in-module), be registered, and —
  for the real ``src/repro/api/errors.py`` — have its code documented
  in the README error table.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from ..diagnostics import Diagnostic
from ..project import Project, SourceFile
from ..registry import register

MESSAGES_REL = "src/repro/api/messages.py"
ERRORS_REL = "src/repro/api/errors.py"
ROUNDTRIP_TEST_REL = "tests/test_api_messages_roundtrip.py"
README_REL = "README.md"


def _registry_names(tree: ast.Module, registry: str) -> set[str] | None:
    """Class names referenced in the value assigned to ``registry``.

    Handles both literal dicts and the comprehension-over-tuple idiom
    used by ``WIRE_KINDS``/``ERROR_TYPES``; returns None when the module
    has no such assignment.
    """
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == registry:
                value = node.value
                assert value is not None
                return {
                    n.id for n in ast.walk(value) if isinstance(n, ast.Name)
                }
    return None


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        node = deco.func if isinstance(deco, ast.Call) else deco
        name = node.attr if isinstance(node, ast.Attribute) else None
        if name is None and isinstance(node, ast.Name):
            name = node.id
        if name == "dataclass":
            return True
    return False


def _method_names(cls: ast.ClassDef) -> set[str]:
    return {
        stmt.name
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _class_attrs(cls: ast.ClassDef) -> set[str]:
    out: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            out.add(stmt.target.id)
    return out


def _attr_value(cls: ast.ClassDef, attr: str) -> ast.expr | None:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == attr:
                    return stmt.value
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == attr
        ):
            return stmt.value
    return None


@register
class WireContractChecker:
    code = "RL002"
    name = "wire-contract"
    description = (
        "wire dataclasses need to_dict/from_dict, a registered kind, and a "
        "round-trip test; error codes need an HTTP status and README entry"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for file in project.files:
            if file.tree is None:
                continue
            kinds = _registry_names(file.tree, "WIRE_KINDS")
            if kinds is not None:
                yield from self._check_messages(project, file, kinds)
            errors = _registry_names(file.tree, "ERROR_TYPES")
            if errors is not None:
                yield from self._check_errors(project, file, errors)

    # ------------------------------------------------------------------
    def _check_messages(
        self, project: Project, file: SourceFile, kinds: set[str]
    ) -> Iterator[Diagnostic]:
        assert file.tree is not None
        module_funcs = {
            stmt.name
            for stmt in file.tree.body
            if isinstance(stmt, ast.FunctionDef)
        }
        for helper in ("to_wire", "from_wire"):
            if helper not in module_funcs:
                yield Diagnostic(
                    path=file.rel,
                    line=1,
                    col=1,
                    code=self.code,
                    message=(
                        f"module defines WIRE_KINDS but no {helper}() envelope "
                        "function"
                    ),
                )
        roundtrip = (
            project.read_text(ROUNDTRIP_TEST_REL)
            if file.rel == MESSAGES_REL
            else None
        )
        for cls in file.tree.body:
            if not isinstance(cls, ast.ClassDef) or not _is_dataclass(cls):
                continue
            methods = _method_names(cls)
            for required in ("to_dict", "from_dict"):
                if required not in methods:
                    yield Diagnostic(
                        path=file.rel,
                        line=cls.lineno,
                        col=cls.col_offset + 1,
                        code=self.code,
                        message=(
                            f"wire dataclass {cls.name!r} has no {required}() — "
                            "the from_dict(to_dict(x)) == x law is unsatisfiable"
                        ),
                    )
            if cls.name not in kinds:
                yield Diagnostic(
                    path=file.rel,
                    line=cls.lineno,
                    col=cls.col_offset + 1,
                    code=self.code,
                    message=(
                        f"wire dataclass {cls.name!r} is not registered in "
                        "WIRE_KINDS — to_wire() will reject it"
                    ),
                )
            if roundtrip is not None and not re.search(
                rf"\b{re.escape(cls.name)}\b", roundtrip
            ):
                yield Diagnostic(
                    path=file.rel,
                    line=cls.lineno,
                    col=cls.col_offset + 1,
                    code=self.code,
                    message=(
                        f"wire dataclass {cls.name!r} has no round-trip test in "
                        f"{ROUNDTRIP_TEST_REL}"
                    ),
                )

    # ------------------------------------------------------------------
    def _check_errors(
        self, project: Project, file: SourceFile, registered: set[str]
    ) -> Iterator[Diagnostic]:
        assert file.tree is not None
        classes = {
            stmt.name: stmt
            for stmt in file.tree.body
            if isinstance(stmt, ast.ClassDef)
        }
        # in-module subclass closure rooted at AuditApiError
        error_classes: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, cls in classes.items():
                if name in error_classes:
                    continue
                bases = {b.id for b in cls.bases if isinstance(b, ast.Name)}
                if "AuditApiError" in bases or bases & error_classes:
                    error_classes.add(name)
                    changed = True

        readme = (
            project.read_text(README_REL) if file.rel == ERRORS_REL else None
        )

        def resolved(name: str, attr: str) -> ast.expr | None:
            seen: set[str] = set()
            frontier = [name]
            while frontier:
                cur = frontier.pop(0)
                if cur in seen or cur not in classes:
                    continue
                seen.add(cur)
                value = _attr_value(classes[cur], attr)
                if value is not None:
                    return value
                frontier.extend(
                    b.id for b in classes[cur].bases if isinstance(b, ast.Name)
                )
            # the AuditApiError base itself carries the defaults
            base = classes.get("AuditApiError")
            return _attr_value(base, attr) if base is not None else None

        for name in sorted(error_classes):
            cls = classes[name]
            for attr in ("code", "http_status"):
                if resolved(name, attr) is None:
                    yield Diagnostic(
                        path=file.rel,
                        line=cls.lineno,
                        col=cls.col_offset + 1,
                        code=self.code,
                        message=(
                            f"error class {name!r} resolves no {attr!r} — every "
                            "wire error must map to an HTTP status"
                        ),
                    )
            if name not in registered and name != "AuditApiError":
                yield Diagnostic(
                    path=file.rel,
                    line=cls.lineno,
                    col=cls.col_offset + 1,
                    code=self.code,
                    message=(
                        f"error class {name!r} is not registered in ERROR_TYPES "
                        "— error_from_wire() would rebuild it as the base class"
                    ),
                )
            code_value = resolved(name, "code")
            if (
                readme is not None
                and isinstance(code_value, ast.Constant)
                and isinstance(code_value.value, str)
                and f"`{code_value.value}`" not in readme
            ):
                yield Diagnostic(
                    path=file.rel,
                    line=cls.lineno,
                    col=cls.col_offset + 1,
                    code=self.code,
                    message=(
                        f"error code {code_value.value!r} ({name}) is missing "
                        "from the README error table"
                    ),
                )
