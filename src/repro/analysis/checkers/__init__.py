"""Built-in checkers — importing this package populates the registry.

Add a new rule by dropping a module here that defines a ``@register``-ed
checker class, then importing it below (imports are what execute the
registration).  See ``src/repro/analysis/README.md`` for the recipe.
"""

from . import (  # noqa: F401  (imported for their registration side effect)
    rl001_locks,
    rl002_wire,
    rl003_errors,
    rl004_forksafe,
    rl005_bench,
    rl006_lockflow,
    rl007_sqltaint,
    rl008_asyncflow,
    rl009_wiredrift,
)
