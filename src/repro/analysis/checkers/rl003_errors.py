"""RL003 — typed-error hygiene on the wire tier.

Within ``server/``, ``api/``, and ``client/`` (plus any explicitly
selected file), errors must stay typed: raise ``AuditApiError``
subclasses, never bare ``Exception``; and a broad ``except Exception``
is only acceptable when the handler actually *does* something with the
error — re-raises, or references the bound exception to wrap/log it
(the wire boundary in ``server/app.py`` converts to a typed wire error
this way).  Flagged:

* ``raise Exception(...)`` / ``raise BaseException(...)``;
* bare ``except:`` (swallows ``KeyboardInterrupt``/``SystemExit``);
* ``except Exception`` / ``except BaseException`` handlers that neither
  raise nor reference the caught exception — a silent swallow.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..diagnostics import Diagnostic
from ..project import Project
from ..registry import register

SCOPE = ("src/repro/server", "src/repro/api", "src/repro/client")
BROAD = frozenset({"Exception", "BaseException"})


def _type_names(node: ast.expr | None) -> set[str]:
    """Exception-class names in an ``except`` clause (handles tuples)."""
    if node is None:
        return set()
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    out: set[str] = set()
    for item in nodes:
        if isinstance(item, ast.Name):
            out.add(item.id)
        elif isinstance(item, ast.Attribute):
            out.add(item.attr)
    return out


@register
class TypedErrorChecker:
    code = "RL003"
    name = "typed-error-hygiene"
    description = (
        "wire-tier code must raise AuditApiError subclasses and never "
        "silently swallow broad exceptions"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for file in project.files:
            if file.tree is None or not file.in_scope(*SCOPE):
                continue
            for node in ast.walk(file.tree):
                if isinstance(node, ast.Raise):
                    yield from self._check_raise(file.rel, node)
                elif isinstance(node, ast.ExceptHandler):
                    yield from self._check_handler(file.rel, node)

    def _check_raise(self, rel: str, node: ast.Raise) -> Iterator[Diagnostic]:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id in BROAD:
            yield Diagnostic(
                path=rel,
                line=node.lineno,
                col=node.col_offset + 1,
                code=self.code,
                message=(
                    f"raise {exc.id} gives the client an untyped 500 — raise "
                    "an AuditApiError subclass instead"
                ),
            )

    def _check_handler(
        self, rel: str, node: ast.ExceptHandler
    ) -> Iterator[Diagnostic]:
        if node.type is None:
            yield Diagnostic(
                path=rel,
                line=node.lineno,
                col=node.col_offset + 1,
                code=self.code,
                message=(
                    "bare except: also swallows KeyboardInterrupt/SystemExit — "
                    "name the exception types"
                ),
            )
            return
        caught = _type_names(node.type)
        if not caught & BROAD:
            return
        reraises = any(isinstance(n, ast.Raise) for n in ast.walk(node))
        uses_bound = node.name is not None and any(
            isinstance(n, ast.Name)
            and n.id == node.name
            and isinstance(n.ctx, ast.Load)
            for stmt in node.body
            for n in ast.walk(stmt)
        )
        if not reraises and not uses_bound:
            kind = sorted(caught & BROAD)[0]
            yield Diagnostic(
                path=rel,
                line=node.lineno,
                col=node.col_offset + 1,
                code=self.code,
                message=(
                    f"except {kind} swallows the error — re-raise, or wrap it "
                    "in a typed AuditApiError"
                ),
            )
