"""RL007 — SQL string taint in the database tier.

PR 9 compiles templates to parameterized SQL by hand, which makes the
``db/`` tier the one place in the project where strings become queries.
The invariant: *data* travels through driver parameters, and the only
string that may be spliced into SQL text is an identifier passed
through ``quote_ident()``.  This rule runs a small forward taint
analysis over each function's CFG: string constructions (f-strings,
``%``, ``+``, ``.format``) are **tainted** unless every interpolated
piece is provably clean; clean pieces are constants, ``ALL_CAPS``
module constants, ``quote_ident(...)`` results, and compositions of
clean pieces (``", ".join(quote_ident(c) for c in cols)``).  A tainted
value reaching the first argument of ``.execute()`` /
``.executemany()`` / ``.execute_batch()`` / ``.executescript()`` is a
finding; values with unknown provenance (parameters, attribute reads)
are *neutral* — they pass, keeping the rule quiet on the common
"driver executes a prebuilt statement" shape.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..diagnostics import Diagnostic
from ..flow import CFG, CFGNode, forward, node_calls
from ..project import Project, SourceFile
from ..registry import register

SCOPE = ("src/repro/db",)

SINKS = frozenset({"execute", "executemany", "execute_batch", "executescript"})

#: The one sanctioned splice: identifier quoting.  Any spelling —
#: ``quote_ident(...)``, ``dialect.quote_ident(...)`` — qualifies.
SANCTIONED = frozenset({"quote_ident"})

CLEAN = "clean"
TAINTED = "tainted"

#: name -> CLEAN | TAINTED; names not in the env are *neutral*.
TaintEnv = dict[str, str]

FuncDef = ast.FunctionDef | ast.AsyncFunctionDef


def _call_tail(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _is_const_str(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Constant) and isinstance(expr.value, str)


def _stringish(expr: ast.expr, env: TaintEnv) -> bool:
    """Is this operand evidence that a BinOp builds a *string*?  ``+``
    and ``%`` on numbers are not SQL construction."""
    if _is_const_str(expr) or isinstance(expr, ast.JoinedStr):
        return True
    if isinstance(expr, ast.Name) and expr.id in env:
        return True
    if isinstance(expr, ast.Call):
        tail = _call_tail(expr)
        return tail in ("join", "format", "str") or tail in SANCTIONED
    return False


def classify(expr: ast.expr, env: TaintEnv) -> str | None:
    """CLEAN, TAINTED, or None (neutral / unknown provenance)."""
    if isinstance(expr, ast.Constant):
        return CLEAN
    if isinstance(expr, ast.JoinedStr):
        for part in expr.values:
            if isinstance(part, ast.FormattedValue):
                if classify(part.value, env) != CLEAN:
                    return TAINTED
        return CLEAN
    if isinstance(expr, ast.Name):
        if expr.id in env:
            return env[expr.id]
        if expr.id.isupper():
            return CLEAN  # module-level SQL constant
        return None
    if isinstance(expr, ast.Call):
        tail = _call_tail(expr)
        if tail in SANCTIONED:
            return CLEAN
        if tail == "join" and isinstance(expr.func, ast.Attribute):
            if classify(expr.func.value, env) != CLEAN or not expr.args:
                return None
            return _classify_join_arg(expr.args[0], env)
        if tail == "str" and isinstance(expr.func, ast.Name) and expr.args:
            return CLEAN if classify(expr.args[0], env) == CLEAN else None
        if tail == "format" and isinstance(expr.func, ast.Attribute):
            if classify(expr.func.value, env) != CLEAN:
                return None  # formatting an unknown receiver: not ours
            pieces = [*expr.args, *(kw.value for kw in expr.keywords)]
            if all(classify(p, env) == CLEAN for p in pieces):
                return CLEAN
            return TAINTED
        return None
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
        sides = (expr.left, expr.right)
        if not any(_stringish(s, env) for s in sides):
            return None  # arithmetic, not string building
        if all(classify(s, env) == CLEAN for s in sides):
            return CLEAN
        return TAINTED
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Mod):
        if not _stringish(expr.left, env):
            return None
        if classify(expr.left, env) != CLEAN:
            return TAINTED
        right = (
            expr.right.elts
            if isinstance(expr.right, ast.Tuple)
            else [expr.right]
        )
        if all(classify(r, env) == CLEAN for r in right):
            return CLEAN
        return TAINTED
    return None


def _classify_join_arg(arg: ast.expr, env: TaintEnv) -> str | None:
    if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        return CLEAN if classify(arg.elt, env) == CLEAN else None
    if isinstance(arg, (ast.List, ast.Tuple)):
        if all(classify(e, env) == CLEAN for e in arg.elts):
            return CLEAN
        return None
    return classify(arg, env)


def _transfer(node: CFGNode, env: TaintEnv) -> TaintEnv:
    out = env
    stmt = node.stmt
    if isinstance(stmt, ast.Assign) and node.kind == "stmt":
        verdict = classify(stmt.value, env)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                out = dict(out)
                if verdict is None:
                    out.pop(target.id, None)
                else:
                    out[target.id] = verdict
    elif (
        isinstance(stmt, ast.AnnAssign)
        and node.kind == "stmt"
        and stmt.value is not None
        and isinstance(stmt.target, ast.Name)
    ):
        verdict = classify(stmt.value, env)
        out = dict(out)
        if verdict is None:
            out.pop(stmt.target.id, None)
        else:
            out[stmt.target.id] = verdict
    elif (
        isinstance(stmt, ast.AugAssign)
        and node.kind == "stmt"
        and isinstance(stmt.target, ast.Name)
    ):
        verdict = classify(stmt.value, env)
        prior = env.get(stmt.target.id)
        out = dict(out)
        if TAINTED in (prior, verdict):
            out[stmt.target.id] = TAINTED
        elif prior == CLEAN and verdict == CLEAN:
            out[stmt.target.id] = CLEAN
        else:
            out.pop(stmt.target.id, None)
    return out


def _join(a: TaintEnv, b: TaintEnv) -> TaintEnv:
    if a == b:
        return a
    out: TaintEnv = {}
    for name in set(a) | set(b):
        va, vb = a.get(name), b.get(name)
        if TAINTED in (va, vb):
            out[name] = TAINTED
        elif va == CLEAN and vb == CLEAN:
            out[name] = CLEAN
        # disagreement / one-sided clean -> neutral (dropped)
    return out


@register
class SqlTaintChecker:
    code = "RL007"
    name = "sql-taint"
    description = (
        "strings built with f-string/%/+/.format must not flow into "
        "execute()/executemany()/execute_batch() — identifiers go through "
        "quote_ident(), data through driver parameters"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for file in project.files:
            if file.tree is None or not file.in_scope(*SCOPE):
                continue
            for node in ast.walk(file.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_function(file, node)

    def _check_function(
        self, file: SourceFile, fn: FuncDef
    ) -> Iterator[Diagnostic]:
        cfg = CFG(fn)
        states = forward(cfg, {}, _transfer, _join)
        for node in cfg.nodes:
            env = states[node.index]
            if env is None:
                continue
            for call in node_calls(node):
                if (
                    not isinstance(call.func, ast.Attribute)
                    or call.func.attr not in SINKS
                    or not call.args
                ):
                    continue
                sql = call.args[0]
                if classify(sql, env) == TAINTED:
                    yield Diagnostic(
                        path=file.rel,
                        line=sql.lineno,
                        col=sql.col_offset + 1,
                        code=self.code,
                        message=(
                            "string built by interpolation/concatenation "
                            f"flows into .{call.func.attr}() — splice "
                            "identifiers via quote_ident() and pass data "
                            "as driver parameters"
                        ),
                    )
