"""RL006 — interprocedural lock-state flow on the RWLock protocol.

RL001 polices one class at a time through its transitive *self-call*
closure; this rule runs the same discipline over the whole-project call
graph with per-function lock-state dataflow.  Three violation shapes:

* **reentrant / upgrading acquisition** — acquiring the writer-
  preferring :class:`repro.api.locks.RWLock` (either mode) on a token
  that is already held on the current path is a guaranteed
  self-deadlock: the lock is not reentrant, and a read→write upgrade
  parks the writer behind its own read hold forever.  Detected both
  directly (``with self._lock.read_locked(): ... self._lock
  .write_locked()``) and through any resolvable call chain, with
  object identity matched through parameter binding (``helper(self)``
  acquiring ``svc._lock`` is the caller's own lock).
* **reader-path mutation through foreign helpers** — shared-state
  writes reached from a read-locked region through calls that *leave*
  the class (module-level helpers mutating a parameter, base-class
  methods in other modules).  Same-class chains are RL001's
  jurisdiction and are deliberately not re-reported here.
* **fork while holding a lock** — ``os.fork`` /
  ``ProcessPoolExecutor`` construction / ``FleetSupervisor`` /
  ``run_fleet`` / ``.submit`` on a known process pool, reached on any
  path where any lock is held: the child inherits the mutex state but
  not the thread that would release it.

Lock state is tracked per CFG node as a set of ``(token, mode)`` pairs
where the token is the receiver's dotted spine (``self._lock``,
``svc._lock``, a bare ``lock`` local); ``with``-block boundaries and
explicit ``acquire_*``/``release_*`` calls both transfer.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Optional

from ..astutil import dotted_name, rooted_attribute
from ..callgraph import CallGraph, CallSite, FunctionInfo, get_callgraph
from ..diagnostics import Diagnostic
from ..flow import CFG, WITH_ENTER, WITH_EXIT, CFGNode, forward, node_calls
from ..project import Project, SourceFile
from ..registry import register
from .rl001_locks import MUTATOR_METHODS

SCOPE = ("src/repro",)

#: Context-manager / imperative spellings of the RWLock protocol.
ENTER_MODES = {"read_locked": "read", "write_locked": "write"}
ACQUIRE_MODES = {"acquire_read": "read", "acquire_write": "write"}
RELEASE_MODES = {"release_read": "read", "release_write": "write"}

#: Call spellings that fork (or submit work to a forked pool).
FORK_TAILS = frozenset(
    {"fork", "ProcessPoolExecutor", "FleetSupervisor", "run_fleet"}
)

#: ``(token, mode)`` pairs held on some path into a node.
LockState = frozenset[tuple[str, str]]

#: Effect-propagation depth cap — chains deeper than this are noise.
MAX_CHAIN = 8


@dataclass(frozen=True)
class _Effect:
    """One summarized side effect of calling a function, relative to its
    own parameter roots (``self`` included)."""

    kind: str  #: "mutate" | "acquire" | "fork"
    root: str  #: parameter name or "self"; "" for root-independent fork
    detail: str  #: attr path after root / token suffix / fork primitive
    mode: str  #: lock mode for "acquire", "" otherwise
    chain: tuple[str, ...]  #: call chain from the summarized fn downward
    origin_rel: str
    origin_class: Optional[str]

    @property
    def key(self) -> tuple[str, str, str, str]:
        return (self.kind, self.root, self.detail, self.mode)


def _lock_token(expr: ast.expr) -> Optional[str]:
    """Dotted spine of a lock receiver — ``self._lock``, ``svc._lock``,
    or a bare ``lock`` name.  Subscripts are transparent."""
    parts: list[str] = []
    cur: ast.expr = expr
    while True:
        if isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        elif isinstance(cur, ast.Subscript):
            cur = cur.value
        else:
            break
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def _acquisitions(node: CFGNode) -> list[tuple[str, str, ast.expr]]:
    """``(token, mode, anchor)`` acquired at this node."""
    out: list[tuple[str, str, ast.expr]] = []
    if node.kind == WITH_ENTER:
        stmt = node.stmt
        assert isinstance(stmt, (ast.With, ast.AsyncWith))
        for item in stmt.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr in ENTER_MODES
            ):
                token = _lock_token(expr.func.value)
                if token is not None:
                    out.append((token, ENTER_MODES[expr.func.attr], expr))
        return out
    for call in node_calls(node):
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in ACQUIRE_MODES
        ):
            token = _lock_token(call.func.value)
            if token is not None:
                out.append((token, ACQUIRE_MODES[call.func.attr], call))
    return out


def _releases(node: CFGNode) -> list[tuple[str, str]]:
    out: list[tuple[str, str]] = []
    if node.kind == WITH_EXIT:
        stmt = node.stmt
        assert isinstance(stmt, (ast.With, ast.AsyncWith))
        for item in stmt.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr in ENTER_MODES
            ):
                token = _lock_token(expr.func.value)
                if token is not None:
                    out.append((token, ENTER_MODES[expr.func.attr]))
        return out
    for call in node_calls(node):
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in RELEASE_MODES
        ):
            token = _lock_token(call.func.value)
            if token is not None:
                out.append((token, RELEASE_MODES[call.func.attr]))
    return out


def _lock_transfer(node: CFGNode, state: LockState) -> LockState:
    acquired = {(token, mode) for token, mode, _ in _acquisitions(node)}
    released = set(_releases(node))
    return frozenset((state - released) | acquired)


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = fn.args
    return [a.arg for a in (*args.posonlyargs, *args.args)]


def _binding(site: CallSite) -> dict[str, str]:
    """Callee root -> caller root, for effects that track object
    identity.  Only provable bindings: ``self.m(...)`` aliases the
    callee's first parameter to ``self``; plain-name arguments map
    positionally/by keyword to the caller name they carry."""
    target = site.target
    if target is None:
        return {}
    params = _param_names(target.node)
    out: dict[str, str] = {}
    offset = 0
    if target.class_name is not None:
        if not site.same_object:
            return {}  # foreign receiver: effects are another object's
        if params:
            out[params[0]] = "self"
        offset = 1
    for i, arg in enumerate(site.call.args):
        index = i + offset
        if index < len(params) and isinstance(arg, ast.Name):
            out[params[index]] = arg.id
    for kw in site.call.keywords:
        if kw.arg is not None and isinstance(kw.value, ast.Name):
            out[kw.arg] = kw.value.id
    return out


def _mapped_token(root: str, suffix: str) -> str:
    return f"{root}.{suffix}" if suffix else root


@register
class LockFlowChecker:
    code = "RL006"
    name = "lock-flow"
    description = (
        "no reentrant/upgrading RWLock acquisition, reader-path mutation "
        "via foreign helpers, or fork/pool-submit while holding a lock — "
        "tracked through the project call graph"
    )

    def __init__(self) -> None:
        self._summaries: dict[str, tuple[_Effect, ...]] = {}
        self._in_progress: set[str] = set()
        self._flows: dict[str, list[LockState | None]] = {}
        self._cfgs: dict[str, CFG] = {}

    # ------------------------------------------------------------------
    def check(self, project: Project) -> Iterator[Diagnostic]:
        graph = get_callgraph(project)
        self._summaries.clear()
        self._flows.clear()
        self._cfgs.clear()
        for info in graph.functions():
            file = project.file(info.rel)
            if file is None or not file.in_scope(*SCOPE):
                continue
            yield from self._check_function(file, info, graph)

    # ------------------------------------------------------------------
    # per-function flow
    # ------------------------------------------------------------------
    def _flow(self, info: FunctionInfo) -> tuple[CFG, list[LockState | None]]:
        cfg = self._cfgs.get(info.qname)
        if cfg is None:
            cfg = CFG(info.node)
            self._cfgs[info.qname] = cfg
            self._flows[info.qname] = forward(
                cfg, frozenset(), _lock_transfer, lambda a, b: a | b
            )
        return cfg, self._flows[info.qname]

    def _check_function(
        self, file: SourceFile, info: FunctionInfo, graph: CallGraph
    ) -> Iterator[Diagnostic]:
        cfg, states = self._flow(info)
        pools = self._pool_roots(info, graph)
        for node in cfg.nodes:
            state = states[node.index]
            if state is None:
                continue
            held_tokens = {token for token, _ in state}

            # 1. direct reentrant / upgrading acquisition
            for token, mode, anchor in _acquisitions(node):
                held_modes = sorted(m for t, m in state if t == token)
                if not held_modes:
                    continue
                shape = (
                    "upgrading the read lock to the write lock"
                    if mode == "write" and "read" in held_modes
                    else f"re-acquiring the {mode} lock"
                )
                yield Diagnostic(
                    path=file.rel,
                    line=anchor.lineno,
                    col=anchor.col_offset + 1,
                    code=self.code,
                    message=(
                        f"{shape} on {token!r} while it is already held "
                        f"({'/'.join(held_modes)}) — the writer-preferring "
                        "RWLock is not reentrant; this self-deadlocks"
                    ),
                )

            if not state:
                continue

            # 2. call-site effects under a held lock
            for call in node_calls(node):
                site = graph.call_site(call, info)
                primitive = self._fork_primitive(site, pools)
                if primitive is not None:
                    token = sorted(held_tokens)[0]
                    yield Diagnostic(
                        path=file.rel,
                        line=call.lineno,
                        col=call.col_offset + 1,
                        code=self.code,
                        message=(
                            f"{primitive} while holding {token!r} — the "
                            "forked child inherits the lock in an undefined "
                            "state and can never release it"
                        ),
                    )
                    continue
                if site.target is None:
                    continue
                binding = _binding(site)
                for effect in self._summary(site.target, graph, file):
                    yield from self._apply_effect(
                        file, info, call, site, effect, binding, state
                    )

    def _apply_effect(
        self,
        file: SourceFile,
        info: FunctionInfo,
        call: ast.Call,
        site: CallSite,
        effect: _Effect,
        binding: dict[str, str],
        state: LockState,
    ) -> Iterator[Diagnostic]:
        assert site.target is not None
        chain = " -> ".join((site.target.name, *effect.chain[1:]))
        pos = (call.lineno, call.col_offset + 1)
        if effect.kind == "fork":
            token = sorted(token for token, _ in state)[0]
            yield Diagnostic(
                path=file.rel,
                line=pos[0],
                col=pos[1],
                code=self.code,
                message=(
                    f"call chain {chain!r} reaches {effect.detail} while "
                    f"{token!r} is held — the forked child inherits the "
                    "lock in an undefined state"
                ),
            )
            return
        mapped_root = binding.get(effect.root)
        if mapped_root is None:
            return
        if effect.kind == "acquire":
            token = _mapped_token(mapped_root, effect.detail)
            held_modes = sorted(m for t, m in state if t == token)
            if held_modes:
                yield Diagnostic(
                    path=file.rel,
                    line=pos[0],
                    col=pos[1],
                    code=self.code,
                    message=(
                        f"call chain {chain!r} acquires the {effect.mode} "
                        f"lock on {token!r} while this path already holds "
                        f"it ({'/'.join(held_modes)}) — guaranteed "
                        "self-deadlock"
                    ),
                )
            return
        # mutate: only under a read-locked (and not write-locked) region
        # of the same object, and only for chains that leave the class —
        # same-class closures are RL001's jurisdiction.
        if (
            effect.origin_rel == info.rel
            and effect.origin_class is not None
            and effect.origin_class == info.class_name
        ):
            return
        read_roots = {t.split(".")[0] for t, m in state if m == "read"}
        write_roots = {t.split(".")[0] for t, m in state if m == "write"}
        if mapped_root in read_roots and mapped_root not in write_roots:
            target = f"{mapped_root}.{effect.detail}"
            yield Diagnostic(
                path=file.rel,
                line=pos[0],
                col=pos[1],
                code=self.code,
                message=(
                    f"reader-locked call chain {chain!r} mutates shared "
                    f"state {target!r} — concurrent readers race on it; "
                    "move the write under the write lock"
                ),
            )

    # ------------------------------------------------------------------
    # function summaries
    # ------------------------------------------------------------------
    def _summary(
        self, info: FunctionInfo, graph: CallGraph, file: SourceFile
    ) -> tuple[_Effect, ...]:
        cached = self._summaries.get(info.qname)
        if cached is not None:
            return cached
        if info.qname in self._in_progress:
            return ()
        self._in_progress.add(info.qname)
        try:
            effects = self._compute_summary(info, graph)
        finally:
            self._in_progress.discard(info.qname)
        self._summaries[info.qname] = effects
        return effects

    def _compute_summary(
        self, info: FunctionInfo, graph: CallGraph
    ) -> tuple[_Effect, ...]:
        cfg, states = self._flow(info)
        roots = set(_param_names(info.node)) | {"self"}
        pools = self._pool_roots(info, graph)
        out: dict[tuple[str, str, str, str], _Effect] = {}

        def add(effect: _Effect) -> None:
            if len(effect.chain) <= MAX_CHAIN:
                out.setdefault(effect.key, effect)

        for node in cfg.nodes:
            state = states[node.index]
            if state is None:
                continue
            held_tokens = {token for token, _ in state}
            held_roots = {token.split(".")[0] for token in held_tokens}

            for root, detail, _pos in self._direct_mutations(node):
                if root in roots and root not in held_roots:
                    add(
                        _Effect(
                            kind="mutate",
                            root=root,
                            detail=detail,
                            mode="",
                            chain=(info.name,),
                            origin_rel=info.rel,
                            origin_class=info.class_name,
                        )
                    )
            for token, mode, _anchor in _acquisitions(node):
                root = token.split(".")[0]
                if root in roots and token not in held_tokens:
                    suffix = token[len(root) + 1 :] if "." in token else ""
                    add(
                        _Effect(
                            kind="acquire",
                            root=root,
                            detail=suffix,
                            mode=mode,
                            chain=(info.name,),
                            origin_rel=info.rel,
                            origin_class=info.class_name,
                        )
                    )
            for call in node_calls(node):
                site = graph.call_site(call, info)
                primitive = self._fork_primitive(site, pools)
                if primitive is not None and not state:
                    add(
                        _Effect(
                            kind="fork",
                            root="",
                            detail=primitive,
                            mode="",
                            chain=(info.name,),
                            origin_rel=info.rel,
                            origin_class=info.class_name,
                        )
                    )
                if site.target is None:
                    continue
                binding = _binding(site)
                for effect in self._summary(
                    site.target, graph, file=None  # type: ignore[arg-type]
                ):
                    chain = (info.name, site.target.name, *effect.chain[1:])
                    if effect.kind == "fork":
                        if not state:
                            add(
                                _Effect(
                                    kind="fork",
                                    root="",
                                    detail=effect.detail,
                                    mode="",
                                    chain=chain,
                                    origin_rel=effect.origin_rel,
                                    origin_class=effect.origin_class,
                                )
                            )
                        continue
                    mapped = binding.get(effect.root)
                    if mapped is None or mapped not in roots:
                        continue
                    if effect.kind == "acquire":
                        token = _mapped_token(mapped, effect.detail)
                        if token not in held_tokens:
                            add(
                                _Effect(
                                    kind="acquire",
                                    root=mapped,
                                    detail=effect.detail,
                                    mode=effect.mode,
                                    chain=chain,
                                    origin_rel=effect.origin_rel,
                                    origin_class=effect.origin_class,
                                )
                            )
                    elif mapped not in held_roots:
                        add(
                            _Effect(
                                kind="mutate",
                                root=mapped,
                                detail=effect.detail,
                                mode="",
                                chain=chain,
                                origin_rel=effect.origin_rel,
                                origin_class=effect.origin_class,
                            )
                        )
        return tuple(out.values())

    # ------------------------------------------------------------------
    # primitive detection
    # ------------------------------------------------------------------
    @staticmethod
    def _direct_mutations(
        node: CFGNode,
    ) -> Iterator[tuple[str, str, tuple[int, int]]]:
        """(root, detail, position) for each rooted-state write at node."""
        stmt = node.stmt
        if stmt is None or node.kind in (WITH_ENTER, WITH_EXIT):
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is None:
            return
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            leaves = (
                target.elts
                if isinstance(target, (ast.Tuple, ast.List))
                else [target]
            )
            for leaf in leaves:
                rooted = rooted_attribute(leaf)
                if rooted is not None:
                    root, dotted = rooted
                    yield (
                        root,
                        dotted[len(root) + 1 :],
                        (leaf.lineno, leaf.col_offset + 1),
                    )
        for call in node_calls(node):
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in MUTATOR_METHODS
            ):
                rooted = rooted_attribute(call.func.value)
                if rooted is not None:
                    root, dotted = rooted
                    yield (
                        root,
                        f"{dotted[len(root) + 1:]}.{call.func.attr}()",
                        (call.lineno, call.col_offset + 1),
                    )

    def _pool_roots(self, info: FunctionInfo, graph: CallGraph) -> set[str]:
        """Receiver spines provably bound to a ``ProcessPoolExecutor``:
        locals assigned one in this body, ``self.attr`` assigned one in
        the enclosing class's ``__init__``."""
        out: set[str] = set()
        for stmt in ast.walk(info.node):
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and isinstance(
                stmt.value, ast.Call
            ):
                dotted = dotted_name(stmt.value.func)
                if dotted is None:
                    continue
                if dotted.rsplit(".", 1)[-1] != "ProcessPoolExecutor":
                    continue
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
                    else:
                        spine = _lock_token(target)
                        if spine is not None:
                            out.add(spine)
        if info.class_name is not None:
            init = graph.function(info.rel, "__init__", info.class_name)
            if init is not None and init.qname != info.qname:
                out |= self._pool_roots(init, graph)
        return out

    @staticmethod
    def _fork_primitive(site: CallSite, pools: set[str]) -> Optional[str]:
        dotted = site.dotted
        if dotted is None:
            return None
        tail = dotted.rsplit(".", 1)[-1]
        if tail in FORK_TAILS and site.target is None:
            return f"{dotted}()"
        if tail == "submit":
            receiver = dotted.rsplit(".", 1)[0]
            if receiver in pools:
                return f"{dotted}() (a ProcessPoolExecutor submit)"
        return None
