"""RL009 — drift between the four wire artifacts.

The ``/v1/`` contract lives in four places that nothing ties together
at runtime: the server's route table, the ``AuditClient`` methods that
call those routes, the envelope kinds the handlers emit (``envelope()``
literals plus the ``WIRE_KINDS`` registry), and the README error-code
table.  Each can drift silently — a route nobody can call from the
typed client, a client method probing a path no route serves, a client
expecting an envelope kind no handler produces, a documented error code
no error class defines.  This rule cross-indexes all four:

* routes are ``("METHOD", "/path", handler, ...)`` tuple literals in
  ``src/repro/server``; a route is *covered* when some client call
  requests a matching path (``{param}`` segments wildcard to the
  client's f-string interpolations) or shares its handler with a
  covered route (aliases like ``/healthz`` vs ``/v1/healthz``);
* client paths come from ``_request``/``_raw_request``/``_query``
  literals, client kind expectations from ``_data(..., "Kind")`` and
  ``from_wire(..., expected=...)``;
* every check is gated on both sides of the comparison being non-empty,
  so partial lint runs (just the client, just the server) stay silent
  rather than reporting everything as drifted.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from dataclasses import dataclass

from ..diagnostics import Diagnostic
from ..project import Project, SourceFile
from ..registry import register
from .rl002_wire import ERRORS_REL, README_REL, _registry_names

SERVER_SCOPE = ("src/repro/server",)
CLIENT_SCOPE = ("src/repro/client",)

HTTP_METHODS = frozenset({"GET", "POST", "PUT", "DELETE", "PATCH", "HEAD"})

#: ``| `code` | 400 | `SomeError` |`` rows of the README error table.
_README_ROW = re.compile(r"^\s*\|\s*`([a-z_]+)`\s*\|\s*\d{3}\s*\|", re.M)


@dataclass(frozen=True)
class _Route:
    method: str
    path: str
    handler: str | None
    rel: str
    line: int
    col: int


@dataclass(frozen=True)
class _ClientCall:
    path: str
    rel: str
    line: int
    col: int


@dataclass(frozen=True)
class _KindExpect:
    kind: str
    rel: str
    line: int
    col: int


def _normalize(path: str) -> str:
    """Route patterns and client f-strings meet in the middle: any
    ``{...}`` segment becomes the wildcard ``{}``."""
    return re.sub(r"\{[^}]*\}", "{}", path)


def _joined_path(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.JoinedStr):
        parts: list[str] = []
        for part in expr.values:
            if isinstance(part, ast.Constant) and isinstance(part.value, str):
                parts.append(part.value)
            else:
                parts.append("{}")
        return "".join(parts)
    return None


def _call_tail(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


@register
class WireDriftChecker:
    code = "RL009"
    name = "wire-drift"
    description = (
        "the /v1/ route table, AuditClient paths, emitted envelope kinds, "
        "and the README error table must agree — no uncallable routes, "
        "phantom client paths, or unproduced kinds"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        routes: list[_Route] = []
        emitted: set[str] = set()
        calls: list[_ClientCall] = []
        expects: list[_KindExpect] = []
        for file in project.files:
            if file.tree is None:
                continue
            if file.in_scope(*SERVER_SCOPE):
                routes.extend(self._routes(file))
                emitted |= self._emitted_kinds(file)
            if file.in_scope(*CLIENT_SCOPE):
                new_calls, new_expects = self._client_artifacts(file)
                calls.extend(new_calls)
                expects.extend(new_expects)
            kinds = _registry_names(file.tree, "WIRE_KINDS")
            if kinds is not None:
                emitted |= kinds

        if routes and calls:
            yield from self._check_paths(routes, calls)
        if emitted and expects:
            for expect in expects:
                if expect.kind not in emitted:
                    yield Diagnostic(
                        path=expect.rel,
                        line=expect.line,
                        col=expect.col,
                        code=self.code,
                        message=(
                            f"client expects envelope kind {expect.kind!r} "
                            "but no handler emits it and WIRE_KINDS does "
                            "not register it"
                        ),
                    )
        yield from self._check_readme(project)

    # ------------------------------------------------------------------
    def _check_paths(
        self, routes: list[_Route], calls: list[_ClientCall]
    ) -> Iterator[Diagnostic]:
        called = {_normalize(c.path) for c in calls}
        covered_handlers = {
            r.handler
            for r in routes
            if r.handler is not None and _normalize(r.path) in called
        }
        served = {_normalize(r.path) for r in routes}
        for route in routes:
            if _normalize(route.path) in called:
                continue
            if route.handler is not None and route.handler in covered_handlers:
                continue  # alias of a covered route
            yield Diagnostic(
                path=route.rel,
                line=route.line,
                col=route.col,
                code=self.code,
                message=(
                    f"route {route.method} {route.path} is unreachable from "
                    "AuditClient — add a client method or retire the route"
                ),
            )
        for call in calls:
            if _normalize(call.path) not in served:
                yield Diagnostic(
                    path=call.rel,
                    line=call.line,
                    col=call.col,
                    code=self.code,
                    message=(
                        f"client requests {call.path} but no route serves "
                        "that path"
                    ),
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _routes(file: SourceFile) -> Iterator[_Route]:
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Tuple) or len(node.elts) < 3:
                continue
            method, path = node.elts[0], node.elts[1]
            if not (
                isinstance(method, ast.Constant)
                and method.value in HTTP_METHODS
                and isinstance(path, ast.Constant)
                and isinstance(path.value, str)
                and path.value.startswith("/")
            ):
                continue
            handler = node.elts[2]
            handler_name: str | None = None
            if isinstance(handler, ast.Name):
                handler_name = handler.id
            elif isinstance(handler, ast.Attribute):
                handler_name = handler.attr
            yield _Route(
                method=method.value,
                path=path.value,
                handler=handler_name,
                rel=file.rel,
                line=path.lineno,
                col=path.col_offset + 1,
            )

    @staticmethod
    def _emitted_kinds(file: SourceFile) -> set[str]:
        assert file.tree is not None
        out: set[str] = set()
        for node in ast.walk(file.tree):
            if (
                isinstance(node, ast.Call)
                and _call_tail(node) == "envelope"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                out.add(node.args[0].value)
        return out

    @staticmethod
    def _client_artifacts(
        file: SourceFile,
    ) -> tuple[list[_ClientCall], list[_KindExpect]]:
        assert file.tree is not None
        calls: list[_ClientCall] = []
        expects: list[_KindExpect] = []
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            tail = _call_tail(node)
            path_arg: ast.expr | None = None
            if tail in ("_request", "_raw_request") and len(node.args) >= 2:
                path_arg = node.args[1]
            elif tail == "_query" and node.args:
                path_arg = node.args[0]
            if path_arg is not None:
                path = _joined_path(path_arg)
                if path is not None and path.startswith("/"):
                    calls.append(
                        _ClientCall(
                            path=path,
                            rel=file.rel,
                            line=path_arg.lineno,
                            col=path_arg.col_offset + 1,
                        )
                    )
                continue
            kind_arg: ast.expr | None = None
            if tail == "_data" and len(node.args) >= 2:
                kind_arg = node.args[1]
            elif tail == "from_wire":
                for kw in node.keywords:
                    if kw.arg == "expected":
                        kind_arg = kw.value
                if kind_arg is None and len(node.args) >= 2:
                    kind_arg = node.args[1]
            if (
                kind_arg is not None
                and isinstance(kind_arg, ast.Constant)
                and isinstance(kind_arg.value, str)
            ):
                expects.append(
                    _KindExpect(
                        kind=kind_arg.value,
                        rel=file.rel,
                        line=kind_arg.lineno,
                        col=kind_arg.col_offset + 1,
                    )
                )
        return calls, expects

    # ------------------------------------------------------------------
    def _check_readme(self, project: Project) -> Iterator[Diagnostic]:
        """README error table rows must name codes some error class
        defines — RL002 checks class → README; this is README → class."""
        errors = project.file(ERRORS_REL)
        if errors is None or errors.tree is None:
            return
        readme = project.read_text(README_REL)
        if readme is None:
            return
        defined: set[str] = set()
        for cls in errors.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            for stmt in cls.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "code"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    defined.add(stmt.value.value)
        if not defined:
            return
        for documented in sorted(set(_README_ROW.findall(readme))):
            if documented not in defined:
                yield Diagnostic(
                    path=errors.rel,
                    line=1,
                    col=1,
                    code=self.code,
                    message=(
                        f"README error table documents code {documented!r} "
                        "but no error class defines it — stale row"
                    ),
                )
