"""RL001 — readers-writer lock discipline on the service facades.

Any class whose methods enter ``self.<lock>.read_locked()`` /
``write_locked()`` context managers (the :class:`repro.api.locks.RWLock`
protocol) is analyzed: public methods are classified reader or writer
from the lock mode they — or any transitively called ``self.`` helper —
enter, and every method reachable from a *reader* is then scanned for
mutations of shared ``self.`` state: attribute assignment/deletion,
augmented assignment, subscript stores, and calls to known mutator
methods (``append``, ``update``, ``invalidate_cache``, ``ingest``, …).

A reader-path mutation is exactly the race the RWLock exists to
prevent: two readers may run concurrently, so anything they write to
shared state is unsynchronized.  Mutations under the write lock (or in
unclassified lifecycle methods like ``__init__``/``close``) are fine.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..astutil import self_attribute, walk_shallow
from ..diagnostics import Diagnostic
from ..project import Project, SourceFile
from ..registry import register

#: Method names that mutate their receiver — calling one of these on a
#: ``self.``-rooted attribute counts as a shared-state write.
MUTATOR_METHODS = frozenset(
    {
        "add",
        "add_template",
        "add_templates",
        "append",
        "clear",
        "discard",
        "extend",
        "ingest",
        "ingest_many",
        "ingest_prepared",
        "insert",
        "invalidate_cache",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "sort",
        "update",
        "write",
    }
)

#: Lifecycle methods exempt from classification: they run before the
#: object is shared or after it stops being shared.
LIFECYCLE = frozenset({"__init__", "__enter__", "__exit__", "open", "close"})

FuncDef = ast.FunctionDef | ast.AsyncFunctionDef


@register
class LockDisciplineChecker:
    code = "RL001"
    name = "lock-discipline"
    description = (
        "public facade methods classified reader via read_locked() must not "
        "reach mutations of shared self.* state"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for file in project.files:
            if file.tree is None:
                continue
            for node in ast.walk(file.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(file, node)

    # ------------------------------------------------------------------
    def _check_class(
        self, file: SourceFile, cls: ast.ClassDef
    ) -> Iterator[Diagnostic]:
        methods: dict[str, FuncDef] = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        modes = {name: self._lock_modes(fn) for name, fn in methods.items()}
        if not any(modes.values()):
            return  # class does not speak the RWLock protocol

        calls = {name: self._self_calls(fn, methods) for name, fn in methods.items()}

        for name in methods:
            if name.startswith("_") or name in LIFECYCLE:
                continue
            reachable = self._closure(name, calls)
            reached_modes = set()
            for callee in reachable:
                reached_modes |= modes[callee]
            if "write" in reached_modes or "read" not in reached_modes:
                continue  # writer, or never touches the lock — out of scope
            for callee in reachable:
                for diag in self._mutations(file, methods[callee]):
                    via = "" if callee == name else f" (via {callee!r})"
                    yield Diagnostic(
                        path=file.rel,
                        line=diag[0],
                        col=diag[1],
                        code=self.code,
                        message=(
                            f"reader-classified method {name!r}{via} mutates "
                            f"shared state {diag[2]!r} under the read lock"
                        ),
                    )

    @staticmethod
    def _lock_modes(fn: FuncDef) -> set[str]:
        out: set[str] = set()
        for node in walk_shallow(fn):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr in ("read_locked", "write_locked")
                    and self_attribute(expr.func.value) is not None
                ):
                    out.add("read" if expr.func.attr == "read_locked" else "write")
        return out

    @staticmethod
    def _self_calls(fn: FuncDef, methods: dict[str, FuncDef]) -> set[str]:
        out: set[str] = set()
        for node in walk_shallow(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and node.func.attr in methods
            ):
                out.add(node.func.attr)
        return out

    @staticmethod
    def _closure(start: str, calls: dict[str, set[str]]) -> set[str]:
        seen = {start}
        frontier = [start]
        while frontier:
            for callee in calls[frontier.pop()]:
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    # ------------------------------------------------------------------
    def _mutations(
        self, file: SourceFile, fn: FuncDef
    ) -> Iterator[tuple[int, int, str]]:
        """(line, col, target) for each shared-state write in ``fn``."""
        for node in walk_shallow(fn):
            if isinstance(node, ast.AnnAssign) and node.value is None:
                continue  # a bare annotation stores nothing
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    for leaf in self._target_leaves(target):
                        attr = self_attribute(leaf)
                        if attr is not None:
                            yield (leaf.lineno, leaf.col_offset + 1, attr)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = self_attribute(target)
                    if attr is not None:
                        yield (target.lineno, target.col_offset + 1, attr)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS
            ):
                attr = self_attribute(node.func.value)
                if attr is not None:
                    yield (
                        node.lineno,
                        node.col_offset + 1,
                        f"{attr}.{node.func.attr}()",
                    )

    @staticmethod
    def _target_leaves(target: ast.expr) -> Iterator[ast.expr]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from LockDisciplineChecker._target_leaves(elt)
        else:
            yield target
