"""RL004 — fork safety.

Two sub-checks, both aimed at state that must never cross a ``fork()``:

* **import-time resources** — a lock, socket, executor pool, or live
  service constructed at module level is inherited by every forked
  worker in an undefined state (a held lock stays held forever in the
  child).  Scope: all of ``src/repro``.
* **closure captures** — a factory passed to ``FleetSupervisor`` /
  ``run_fleet`` / ``ProcessPoolExecutor`` must construct its resources
  *inside* the child; a lambda that captures a service/lock/socket
  built in the parent ships parent-process state through ``fork``.

Blocking calls inside ``async def`` bodies were RL004's third check
until the call graph existed; RL008 now finds them *transitively*
(``src/repro/analysis/checkers/rl008_asyncflow.py``) and owns the
direct case too.  The blocking-primitive tables below are shared with
it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..astutil import dotted_name, free_names, walk_shallow
from ..diagnostics import Diagnostic
from ..project import Project, SourceFile
from ..registry import register

SCOPE = ("src/repro",)

#: Constructors whose product must not exist before ``fork()``.
FORBIDDEN_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "Lock",
        "RLock",
        "RWLock",
        "socket.socket",
        "socket.create_connection",
        "ProcessPoolExecutor",
        "ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
        "AuditService",
        "AuditService.open",
        "ShardedAuditService",
        "ShardedAuditService.open",
        "open_service",
    }
)

#: Call targets a factory closure must not hand to — these ship the
#: closure (and everything it captures) into another process.
FACTORY_SINKS = frozenset(
    {"FleetSupervisor", "run_fleet", "ProcessPoolExecutor", "ThreadPoolExecutor"}
)

#: ``dotted.name`` call patterns that block the event loop (consumed by
#: RL008's transitive reachability check).
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "urllib.request.urlopen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "input",
        "open",
    }
)

#: http.client connection classes — sync HTTP inside an async body.
BLOCKING_ATTRS = frozenset({"HTTPConnection", "HTTPSConnection"})


def _call_target(node: ast.Call) -> str | None:
    return dotted_name(node.func)


@register
class ForkSafetyChecker:
    code = "RL004"
    name = "fork-asyncio-safety"
    description = (
        "no locks/sockets/services at import time or captured by worker "
        "factories"
    )

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for file in project.files:
            if file.tree is None:
                continue
            if file.in_scope(*SCOPE):
                yield from self._check_module_level(file)
                yield from self._check_factory_closures(file)

    # ------------------------------------------------------------------
    def _check_module_level(self, file: SourceFile) -> Iterator[Diagnostic]:
        assert file.tree is not None
        stack: list[ast.stmt] = list(file.tree.body)
        while stack:
            stmt = stack.pop()
            if isinstance(stmt, (ast.If, ast.Try)):
                stack.extend(ast.iter_child_nodes(stmt))  # type: ignore[arg-type]
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            value = stmt.value
            if not isinstance(value, ast.Call):
                continue
            target = _call_target(value)
            if target in FORBIDDEN_FACTORIES:
                yield Diagnostic(
                    path=file.rel,
                    line=value.lineno,
                    col=value.col_offset + 1,
                    code=self.code,
                    message=(
                        f"{target}() at module level is inherited by forked "
                        "workers in an undefined state — construct it in "
                        "__init__ or inside the worker"
                    ),
                )

    # ------------------------------------------------------------------
    def _check_factory_closures(self, file: SourceFile) -> Iterator[Diagnostic]:
        assert file.tree is not None
        for fn in ast.walk(file.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            # names bound in this scope to a forbidden construction
            tainted: dict[str, str] = {}
            for node in walk_shallow(fn):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                target = _call_target(node.value)
                if target is None or target not in FORBIDDEN_FACTORIES:
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for t in targets:
                    if isinstance(t, ast.Name):
                        tainted[t.id] = target
            # also: `with AuditService.open(...) as service:`
            for node in walk_shallow(fn):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        if (
                            isinstance(item.context_expr, ast.Call)
                            and _call_target(item.context_expr)
                            in FORBIDDEN_FACTORIES
                            and isinstance(item.optional_vars, ast.Name)
                        ):
                            tainted[item.optional_vars.id] = _call_target(
                                item.context_expr
                            ) or ""
            if not tainted:
                continue
            local_defs = {
                node.name: node
                for node in walk_shallow(fn)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for node in walk_shallow(fn):
                if not isinstance(node, ast.Call):
                    continue
                sink = _call_target(node)
                if sink is None or sink.rsplit(".", 1)[-1] not in FACTORY_SINKS:
                    continue
                closures: list[ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef]
                closures = []
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    if isinstance(arg, ast.Lambda):
                        closures.append(arg)
                    elif isinstance(arg, ast.Name) and arg.id in local_defs:
                        closures.append(local_defs[arg.id])
                for closure in closures:
                    for captured in sorted(free_names(closure) & set(tainted)):
                        yield Diagnostic(
                            path=file.rel,
                            line=closure.lineno,
                            col=closure.col_offset + 1,
                            code=self.code,
                            message=(
                                f"factory passed to {sink} captures "
                                f"{captured!r} (a {tainted[captured]}) from the "
                                "parent process — construct it inside the "
                                "factory instead"
                            ),
                        )
