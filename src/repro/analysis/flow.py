"""Per-function control-flow graphs and a forward dataflow solver.

The flow rules (RL006-RL009) need more than a statement walk: whether a
lock is held *at* a call site, or whether a tainted string *reaches* an
``execute()`` sink, depends on the path taken through the function.
This module gives checkers the two pieces that question needs:

* :class:`CFG` — a statement-level control-flow graph for one function.
  ``with`` blocks get synthetic ``with-enter``/``with-exit`` nodes so a
  context manager's effect (acquiring a lock) can be modeled exactly at
  the boundary it takes effect; ``try`` bodies conservatively edge into
  their handlers from every statement.
* :func:`forward` — a classic worklist fixpoint over any join
  semilattice: supply a ``transfer`` (node effect) and a ``join`` (path
  merge) and get back the state *entering* every node.

Both are deliberately approximate in the safe direction for may-
analyses (union joins): loops iterate to fixpoint, exceptional edges
are included, and ``break``/``continue``/``return`` never fall through.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import TypeVar

FuncDef = ast.FunctionDef | ast.AsyncFunctionDef

#: Node kinds.  ``stmt`` carries an ordinary statement; ``with-enter``
#: and ``with-exit`` bracket a ``with`` body (their ``stmt`` is the
#: ``ast.With`` itself); ``entry``/``exit`` are the synthetic endpoints.
STMT = "stmt"
WITH_ENTER = "with-enter"
WITH_EXIT = "with-exit"
ENTRY = "entry"
EXIT = "exit"


@dataclass
class CFGNode:
    """One CFG node: a statement (or synthetic marker) plus successors."""

    index: int
    kind: str
    stmt: ast.stmt | None
    succs: list[int] = field(default_factory=list)


class CFG:
    """Control-flow graph of one function body.

    ``nodes[entry]`` / ``nodes[exit]`` are synthetic; every other node
    wraps exactly one statement.  Compound statements (``if``/``while``/
    ``for``/``try``) appear as their *header* node — the node where the
    test/iterable is evaluated — while their bodies become separate
    nodes reachable from the header.
    """

    def __init__(self, fn: FuncDef) -> None:
        self.fn = fn
        self.nodes: list[CFGNode] = []
        self.entry = self._new(ENTRY, None).index
        self.exit = self._new(EXIT, None).index
        frontier = _Builder(self).seq(fn.body, [self.entry])
        self.link(frontier, self.exit)

    def _new(self, kind: str, stmt: ast.stmt | None) -> CFGNode:
        node = CFGNode(index=len(self.nodes), kind=kind, stmt=stmt)
        self.nodes.append(node)
        return node

    def add(self, kind: str, stmt: ast.stmt | None) -> CFGNode:
        return self._new(kind, stmt)

    def link(self, preds: list[int], succ: int) -> None:
        for pred in preds:
            succs = self.nodes[pred].succs
            if succ not in succs:
                succs.append(succ)


class _Builder:
    """Recursive-descent CFG construction with loop target stacks."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        #: (header index, break frontier) per enclosing loop.
        self._loops: list[tuple[int, list[int]]] = []

    # ------------------------------------------------------------------
    def seq(self, stmts: list[ast.stmt], preds: list[int]) -> list[int]:
        """Wire a statement sequence after ``preds``; return the open
        frontier (nodes whose successor is whatever comes next)."""
        frontier = preds
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt, preds: list[int]) -> list[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            header = cfg.add(STMT, stmt)
            cfg.link(preds, header.index)
            then = self.seq(stmt.body, [header.index])
            other = (
                self.seq(stmt.orelse, [header.index])
                if stmt.orelse
                else [header.index]
            )
            return then + other
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = cfg.add(STMT, stmt)
            cfg.link(preds, header.index)
            breaks: list[int] = []
            self._loops.append((header.index, breaks))
            body = self.seq(stmt.body, [header.index])
            cfg.link(body, header.index)
            self._loops.pop()
            after = self.seq(stmt.orelse, [header.index])
            return after + breaks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            enter = cfg.add(WITH_ENTER, stmt)
            cfg.link(preds, enter.index)
            body = self.seq(stmt.body, [enter.index])
            leave = cfg.add(WITH_EXIT, stmt)
            cfg.link(body, leave.index)
            return [leave.index]
        if isinstance(stmt, (ast.Try, ast.TryStar)):
            return self._try(stmt, preds)
        if isinstance(stmt, ast.Match):
            header = cfg.add(STMT, stmt)
            cfg.link(preds, header.index)
            frontier = [header.index]  # no case may match
            for case in stmt.cases:
                frontier += self.seq(case.body, [header.index])
            return frontier
        if isinstance(stmt, (ast.Return, ast.Raise)):
            node = cfg.add(STMT, stmt)
            cfg.link(preds, node.index)
            cfg.link([node.index], cfg.exit)
            return []
        if isinstance(stmt, ast.Break):
            node = cfg.add(STMT, stmt)
            cfg.link(preds, node.index)
            if self._loops:
                self._loops[-1][1].append(node.index)
            return []
        if isinstance(stmt, ast.Continue):
            node = cfg.add(STMT, stmt)
            cfg.link(preds, node.index)
            if self._loops:
                cfg.link([node.index], self._loops[-1][0])
            return []
        node = cfg.add(STMT, stmt)
        cfg.link(preds, node.index)
        return [node.index]

    def _try(self, stmt: ast.Try | ast.TryStar, preds: list[int]) -> list[int]:
        """An exception may surface at any statement of the body, so the
        handlers are reachable from every body node (and from the entry
        predecessors — the first statement may raise before running)."""
        cfg = self.cfg
        first = len(cfg.nodes)
        body = self.seq(stmt.body, preds)
        body_nodes = list(range(first, len(cfg.nodes)))
        after_else = self.seq(stmt.orelse, body) if stmt.orelse else body
        frontier = list(after_else)
        for handler in stmt.handlers:
            sources = list(preds) + body_nodes
            frontier += self.seq(handler.body, sources)
        if stmt.finalbody:
            return self.seq(stmt.finalbody, frontier)
        return frontier


# ----------------------------------------------------------------------
# node -> evaluated expressions
# ----------------------------------------------------------------------

def node_expressions(node: CFGNode) -> Iterator[ast.expr]:
    """The expressions evaluated *at* this node (bodies of compound
    statements are their own nodes and are not included)."""
    stmt = node.stmt
    if stmt is None or node.kind == WITH_EXIT:
        return
    if node.kind == WITH_ENTER:
        assert isinstance(stmt, (ast.With, ast.AsyncWith))
        for item in stmt.items:
            yield item.context_expr
        return
    if isinstance(stmt, ast.Expr):
        yield stmt.value
    elif isinstance(stmt, ast.Assign):
        yield stmt.value
        yield from stmt.targets
    elif isinstance(stmt, ast.AugAssign):
        yield stmt.value
        yield stmt.target
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, (ast.If, ast.While)):
        yield stmt.test
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.iter
    elif isinstance(stmt, ast.Raise):
        if stmt.exc is not None:
            yield stmt.exc
        if stmt.cause is not None:
            yield stmt.cause
    elif isinstance(stmt, ast.Assert):
        yield stmt.test
        if stmt.msg is not None:
            yield stmt.msg
    elif isinstance(stmt, ast.Delete):
        yield from stmt.targets
    elif isinstance(stmt, ast.Match):
        yield stmt.subject


def walk_expressions(expr: ast.expr) -> Iterator[ast.AST]:
    """All sub-expressions of ``expr`` except lambda bodies (which run in
    a later, different activation) — comprehension bodies are included,
    matching how the checkers treat them as evaluated in place."""
    stack: list[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.Lambda):
            continue
        stack.extend(ast.iter_child_nodes(node))


def node_calls(node: CFGNode) -> Iterator[ast.Call]:
    """Every call evaluated at this node, outermost first per expression."""
    for expr in node_expressions(node):
        for sub in walk_expressions(expr):
            if isinstance(sub, ast.Call):
                yield sub


# ----------------------------------------------------------------------
# forward dataflow
# ----------------------------------------------------------------------

S = TypeVar("S")


def forward(
    cfg: CFG,
    initial: S,
    transfer: Callable[[CFGNode, S], S],
    join: Callable[[S, S], S],
) -> list[S | None]:
    """Worklist fixpoint: the state *entering* each node, by index.

    ``initial`` enters the entry node; unreachable nodes keep ``None``.
    ``join`` must be monotone and idempotent; states are compared with
    ``==`` for convergence.
    """
    in_states: list[S | None] = [None] * len(cfg.nodes)
    in_states[cfg.entry] = initial
    worklist = [cfg.entry]
    while worklist:
        index = worklist.pop()
        state = in_states[index]
        assert state is not None
        out = transfer(cfg.nodes[index], state)
        for succ in cfg.nodes[index].succs:
            current = in_states[succ]
            merged = out if current is None else join(current, out)
            if merged != current:
                in_states[succ] = merged
                worklist.append(succ)
    return in_states
