"""Diagnostics: what a checker reports and how it is rendered.

A :class:`Diagnostic` is one finding anchored to a source position; the
module also owns the ``# repro-lint: ignore[...]`` suppression syntax
and the three output renderers (ruff-style text, machine-readable JSON,
GitHub workflow annotations).
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from dataclasses import dataclass

#: Same-line suppression comment, ruff ``noqa`` style::
#:
#:     risky_line()  # repro-lint: ignore[RL003]
#:     risky_line()  # repro-lint: ignore[RL001, RL003]
#:     risky_line()  # repro-lint: ignore
#:
#: A bare ``ignore`` (no bracket list) silences every rule on the line.
#: The directive must *open* a real comment token — mentions inside
#: docstrings or embedded in a larger comment are documentation, not
#: suppressions (and therefore never show up as unused).
SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]*)\])?"
)


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: ``path:line:col CODE message``.

    ``path`` is repo-root-relative with ``/`` separators so output is
    stable across platforms; ``line`` is 1-based and ``col`` 1-based
    (``ast`` columns are 0-based — checkers add 1 at construction).
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    def render_github(self) -> str:
        """One ``::error`` workflow command — GitHub turns these into
        inline annotations on the PR diff."""
        # Workflow-command property values need their own escaping.
        message = (
            self.message.replace("%", "%25")
            .replace("\r", "%0D")
            .replace("\n", "%0A")
        )
        return (
            f"::error file={self.path},line={self.line},col={self.col},"
            f"title={self.code}::{message}"
        )


def parse_suppressions(text: str) -> dict[int, frozenset[str] | None]:
    """Map 1-based line number -> suppressed codes (``None`` = all).

    Tokenizes so only genuine comments count; on a syntax error the
    suppressions seen before the break are kept (the file will carry an
    RL000 finding anyway)."""
    out: dict[int, frozenset[str] | None] = {}
    if "repro-lint" not in text:
        return out
    tokens = tokenize.generate_tokens(io.StringIO(text).readline)
    while True:
        try:
            tok = next(tokens)
        except StopIteration:
            break
        except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
            break
        if tok.type != tokenize.COMMENT:
            continue
        match = SUPPRESSION_RE.match(tok.string)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            out[tok.start[0]] = None
        else:
            out[tok.start[0]] = frozenset(
                code.strip() for code in codes.split(",") if code.strip()
            )
    return out


def is_suppressed(
    diag: Diagnostic, suppressions: dict[int, frozenset[str] | None]
) -> bool:
    codes = suppressions.get(diag.line, frozenset())
    return codes is None or diag.code in codes


def render_text(diagnostics: tuple[Diagnostic, ...]) -> str:
    return "\n".join(diag.render() for diag in diagnostics)


def render_json(
    diagnostics: tuple[Diagnostic, ...], stats: dict[str, object]
) -> str:
    payload = {
        "version": 1,
        "findings": [diag.to_dict() for diag in diagnostics],
        "stats": stats,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_github(diagnostics: tuple[Diagnostic, ...]) -> str:
    return "\n".join(diag.render_github() for diag in diagnostics)
