"""Synthetic CareWeb-like EHR substrate (substitute for the paper's data).

The University of Michigan Health System data used in Section 5 is not
available, so this package generates a miniature hospital whose log has
the same structural properties the paper's evaluation relies on; see
:mod:`.config` for the property-by-property correspondence and DESIGN.md
for the substitution rationale.
"""

from .config import SimulationConfig
from .fakelog import (
    FAKE_LID_BASE,
    combined_log_db,
    generate_fake_accesses,
    is_fake_lid,
)
from .hospital import SPECIALTIES, build_hospital
from .models import CareTeam, Hospital, PatientRecord, Role, UserRecord
from .schema import (
    DATASET_A,
    DATASET_B,
    EVENT_TABLES,
    PATIENT_COLUMNS,
    USER_COLUMNS,
    build_careweb_graph,
    build_empty_careweb_db,
    careweb_schemas,
)
from .simulator import EPOCH, SimulationResult, simulate

__all__ = [
    "DATASET_A",
    "DATASET_B",
    "EPOCH",
    "EVENT_TABLES",
    "FAKE_LID_BASE",
    "PATIENT_COLUMNS",
    "Role",
    "SPECIALTIES",
    "SimulationConfig",
    "SimulationResult",
    "USER_COLUMNS",
    "UserRecord",
    "PatientRecord",
    "CareTeam",
    "Hospital",
    "build_careweb_graph",
    "build_empty_careweb_db",
    "build_hospital",
    "careweb_schemas",
    "combined_log_db",
    "generate_fake_accesses",
    "is_fake_lid",
    "simulate",
]
