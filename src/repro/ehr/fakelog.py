"""Fake-log construction for precision experiments (paper Section 5.3.2).

"We constructed a fake log that contains the same number of accesses as
the real log.  We generated each access in the fake log by selecting a
user and a patient uniformly at random from the set of users and patients
in the database. ... We then combined the real and fake logs, and
evaluated the explanation templates on the combined log."

Fake entries receive lids starting at :data:`FAKE_LID_BASE` so the
evaluation can separate real from fake without side tables.
"""

from __future__ import annotations



import numpy as np

from ..db.database import Database
from ..db.table import Table

#: Fake log ids start here; anything >= this is synthetic.
FAKE_LID_BASE = 10_000_000


def is_fake_lid(lid: int) -> bool:
    """Whether a log id belongs to the synthetic fake log."""
    return lid >= FAKE_LID_BASE


def generate_fake_accesses(
    db: Database,
    n: int | None = None,
    seed: int = 0,
    log_table: str = "Log",
) -> list[tuple]:
    """``n`` uniformly random ``(lid, date, user, patient)`` rows.

    Users and patients are drawn from the sets present in the database
    (users from the Users table when available, else from the log); dates
    are drawn uniformly from the real log's date range.  ``n`` defaults to
    the size of the real log, per the paper's protocol.
    """
    rng = np.random.default_rng(seed)
    log = db.table(log_table)
    if n is None:
        n = len(log)
    if db.has_table("Users"):
        users = sorted(db.table("Users").distinct_values("User"))
    else:
        users = sorted(log.distinct_values("User"))
    patients = sorted(log.distinct_values("Patient"))
    dates = sorted(d for d in log.distinct_values("Date"))
    if not users or not patients or not dates:
        return []
    rows = []
    for i in range(n):
        user = users[int(rng.integers(0, len(users)))]
        patient = patients[int(rng.integers(0, len(patients)))]
        date = dates[int(rng.integers(0, len(dates)))]
        rows.append((FAKE_LID_BASE + i, date, user, patient))
    return rows


def combined_log_db(
    db: Database,
    n_fake: int | None = None,
    seed: int = 0,
    log_table: str = "Log",
) -> tuple[Database, set, set]:
    """A derived database whose log is real + fake, sharing every other
    table with ``db``.  Returns ``(combined_db, real_lids, fake_lids)``."""
    combined = Database(f"{db.name}+fake")
    log = db.table(log_table)
    new_log = Table(log.schema)
    new_log.insert_many(log.rows())
    fake_rows = generate_fake_accesses(db, n=n_fake, seed=seed, log_table=log_table)
    new_log.insert_many(fake_rows)
    for table in db.tables():
        if table.schema.name == log_table:
            combined.add_table(new_log)
        else:
            combined.add_table(table)
    lid_idx = log.schema.column_index("Lid")
    real_lids = {row[lid_idx] for row in log.rows()}
    fake_lids = {row[0] for row in fake_rows}
    return combined, real_lids, fake_lids
